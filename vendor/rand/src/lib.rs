//! Offline stand-in for `rand` 0.9.
//!
//! Implements exactly the surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random_range` over integer and f64
//! ranges, and `Rng::random_bool` — on top of a SplitMix64 generator. The
//! workspace only relies on *determinism* (same seed ⇒ same stream), never
//! on matching the real crate's stream, so the statistical simplifications
//! here (modulo-based integer ranges) are fine.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring rand 0.9's method names.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open; integer or f64).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u32> = (0..8).map(|_| a.random_range(0..u32::MAX)).collect();
        let sb: Vec<u32> = (0..8).map(|_| b.random_range(0..u32::MAX)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = rng.random_range(5u32..9);
            assert!((5..9).contains(&v));
            let f = rng.random_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_degenerate_at_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..50).any(|_| rng.random_bool(0.0)));
        assert!((0..50).all(|_| rng.random_bool(1.0)));
    }
}
