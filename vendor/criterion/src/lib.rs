//! Offline stand-in for `criterion`.
//!
//! Keeps the `crates/bench` harness compiling and runnable without the real
//! (network-fetched) crate: each benchmark body runs a handful of timed
//! iterations and prints a mean, with none of criterion's statistics. The
//! API mirrors the subset the benches use — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark body (the stub has no adaptive sampling).
const ITERS: u32 = 3;

/// Units processed per iteration, used only for labeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark label of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Times closures; the argument passed to every benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Runs `body` a few times, recording wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..ITERS {
            let start = Instant::now();
            let out = body();
            self.elapsed_ns += start.elapsed().as_nanos();
            drop(out);
            self.iters += 1;
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput label (ignored by the stub).
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Records the sample count (ignored by the stub).
    pub fn sample_size(&mut self, _samples: usize) {}

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

fn report(label: &str, b: &Bencher) {
    let mean = if b.iters == 0 {
        0
    } else {
        b.elapsed_ns / u128::from(b.iters)
    };
    println!("bench {label}: ~{mean} ns/iter ({} iters)", b.iters);
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.id, &b);
        self
    }
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's own `black_box` location.
pub use std::hint::black_box;
