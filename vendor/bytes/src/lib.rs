//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] trait
//! surface used by the trace codec (`fgnvm-cpu/src/trace.rs`): cursor-style
//! little-endian reads, slicing, and append-style writes. Backed by an
//! `Arc<Vec<u8>>` so `clone` and `slice` stay cheap like the real crate.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Bytes remaining (equals [`Buf::remaining`]).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-slice view sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// Cursor-style reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian u32.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Splits off the next `len` bytes as an owned [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Append-style writes into a growable byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with `capacity` reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u64_le(42);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 13);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u64_le(), 42);
        assert!(bytes.is_empty());
    }

    #[test]
    fn slices_share_storage_and_compare_by_content() {
        let a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let b = a.slice(1..4);
        assert_eq!(b.as_slice(), &[2, 3, 4]);
        assert_eq!(b, Bytes::from(vec![2, 3, 4]));
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut a = Bytes::from(vec![9, 8, 7, 6]);
        let head = a.copy_to_bytes(2);
        assert_eq!(head.to_vec(), vec![9, 8]);
        assert_eq!(a.to_vec(), vec![7, 6]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut a = Bytes::from(vec![1]);
        let _ = a.get_u32_le();
    }
}
