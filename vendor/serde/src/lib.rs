//! Offline stand-in for `serde`.
//!
//! The workspace imports `serde::{Deserialize, Serialize}` purely so that
//! `#[derive(Serialize, Deserialize)]` resolves; no code serializes
//! anything (there is no serde_json and no `T: Serialize` bound anywhere).
//! The trait names exist so the `use` statements compile, and the derive
//! macros are re-exported from the no-op [`serde_derive`] stand-in.

/// Marker trait mirroring serde's `Serialize`; never used as a bound here.
pub trait Serialize {}

/// Marker trait mirroring serde's `Deserialize`; never used as a bound here.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
