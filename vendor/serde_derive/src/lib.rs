//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as an
//! annotation — nothing consumes the generated trait impls (no serde_json,
//! no bounds). These derives therefore expand to nothing, which keeps every
//! annotated type compiling without the real (network-fetched) crate.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
