//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the `proptest!` macro, `ProptestConfig::with_cases`, the [`Strategy`]
//! trait with `prop_map`/`prop_filter_map`, `any::<T>()`, integer and
//! float range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, string strategies from a small regex subset,
//! and `prop_assert!`/`prop_assert_eq!`/`TestCaseError`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence
//! (`.proptest-regressions` files are ignored); each test runs its
//! configured number of cases from a seed derived deterministically from
//! the test name, so failures reproduce run-to-run.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod collection;
mod regex_lite;
pub mod sample;

/// Convenience imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors `proptest::prelude::prop`, the path-style module alias.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Per-block configuration; only `cases` is honored by the stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias for [`fail`](Self::fail); the stub does not track rejections
    /// separately.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for case `case` of the test named `name` — deterministic
    /// across runs, decorrelated across tests and cases.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + self.next_u64() % (hi - lo)
    }
}

/// A generator of test values; the stub samples without shrinking.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values `f` maps to `Some`, resampling otherwise.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            whence: whence.into(),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: String,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "strategy rejected 10000 consecutive samples: {}",
            self.whence
        );
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                ((self.start as u128) + u128::from(rng.next_u64()) % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                ((lo as u128) + u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// A strategy for "any value" of a primitive type; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Produces the `any::<T>()` strategy for supported primitives.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        regex_lite::sample(self, rng)
    }
}

/// Runs `cases` cases of a `proptest!`-generated body; used by the macro.
///
/// Like upstream proptest, the `PROPTEST_CASES` environment variable
/// overrides the per-test case count (CI uses `PROPTEST_CASES=1` for a
/// fast deterministic replay pass over every property).
#[doc(hidden)]
pub fn run_cases<F: FnMut(&mut TestRng) -> Result<(), TestCaseError>>(
    name: &str,
    cases: u32,
    mut body: F,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(cases);
    for case in 0..cases {
        let mut rng = TestRng::for_case(name, case);
        if let Err(e) = body(&mut rng) {
            panic!("proptest `{name}` failed at case {case}/{cases}: {e}");
        }
    }
}

/// Declares property tests. Mirrors proptest's macro for the forms used in
/// this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, flip in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), config.cases, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Asserts within a proptest body, failing the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    };
}

/// Asserts inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let strat = (0u32..100, any::<bool>()).prop_map(|(n, b)| (n * 2, b));
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    #[test]
    fn filter_map_resamples() {
        let strat = (0u32..100).prop_filter_map("even", |n| (n % 2 == 0).then_some(n));
        let mut rng = crate::TestRng::for_case("even", 1);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn macro_generates_working_tests(
            xs in prop::collection::vec(1u64..50, 1..10),
            pick in prop::sample::select(vec![2u64, 3, 5]),
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| (1..50).contains(&x)));
            prop_assert!(pick == 2 || pick == 3 || pick == 5);
            prop_assert_eq!(pick, pick);
        }

        #[test]
        fn string_strategies_match_their_class(
            key in "[A-Za-z]{1,12}",
            value in "[-A-Za-z0-9.]{0,12}",
            free in "\\PC{0,40}",
        ) {
            prop_assert!((1..=12).contains(&key.chars().count()));
            prop_assert!(key.chars().all(|c| c.is_ascii_alphabetic()));
            prop_assert!(value.chars().count() <= 12);
            prop_assert!(value
                .chars()
                .all(|c| c == '-' || c == '.' || c.is_ascii_alphanumeric()));
            prop_assert!(free.chars().count() <= 40);
        }
    }
}
