//! String sampling from a small regex subset.
//!
//! Real proptest interprets `&str` strategies as full regexes. This stub
//! supports the pattern shapes used in the workspace's property tests:
//! a sequence of atoms, each optionally followed by `{min,max}`, where an
//! atom is `\PC` (any printable character), a `[...]` character class
//! (literal characters and `a-z` ranges), or a literal character.

use crate::TestRng;

enum Atom {
    /// `\PC`: printable characters (sampled from printable ASCII).
    Printable,
    /// `[...]`: explicit characters.
    Class(Vec<char>),
    /// A single literal character.
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Samples a string matching `pattern`.
///
/// # Panics
///
/// Panics on pattern constructs outside the supported subset.
pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            rng.range_u64(piece.min as u64, piece.max as u64 + 1) as usize
        };
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        // Printable ASCII (space through tilde) is a sufficient sample of
        // `\PC` for exercising a parser.
        Atom::Printable => char::from(rng.range_u64(0x20, 0x7F) as u8),
        Atom::Class(chars) => chars[rng.range_u64(0, chars.len() as u64) as usize],
        Atom::Literal(c) => *c,
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    assert_eq!(chars.next(), Some('C'), "unsupported escape class");
                    Atom::Printable
                }
                Some(escaped) => Atom::Literal(escaped),
                None => panic!("dangling backslash in pattern {pattern:?}"),
            },
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') => {
                            // `-` is literal at the start or before `]`;
                            // otherwise it denotes a range.
                            match (prev, chars.peek()) {
                                (Some(lo), Some(&hi)) if hi != ']' => {
                                    chars.next();
                                    assert!(lo <= hi, "inverted class range");
                                    for ch in (lo as u32 + 1)..=(hi as u32) {
                                        class.push(char::from_u32(ch).expect("valid range char"));
                                    }
                                    prev = None;
                                }
                                _ => {
                                    class.push('-');
                                    prev = Some('-');
                                }
                            }
                        }
                        Some(member) => {
                            class.push(member);
                            prev = Some(member);
                        }
                        None => panic!("unterminated class in pattern {pattern:?}"),
                    }
                }
                assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(class)
            }
            literal => Atom::Literal(literal),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let (lo, hi) = spec
                .split_once(',')
                .unwrap_or_else(|| panic!("unsupported repetition {{{spec}}}"));
            (
                lo.trim().parse().expect("repetition lower bound"),
                hi.trim().parse().expect("repetition upper bound"),
            )
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_and_literals() {
        let mut rng = TestRng::for_case("class", 0);
        for _ in 0..100 {
            let s = sample("[-A-Za-z0-9.]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s
                .chars()
                .all(|c| c == '-' || c == '.' || c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn printable_any() {
        let mut rng = TestRng::for_case("pc", 0);
        let s = sample("\\PC{0,400}", &mut rng);
        assert!(s.chars().count() <= 400);
        assert!(s.chars().all(|c| !c.is_control()));
    }

    #[test]
    fn fixed_literals() {
        let mut rng = TestRng::for_case("lit", 0);
        assert_eq!(sample("abc", &mut rng), "abc");
    }
}
