//! `prop::collection` subset: the `vec` strategy.

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy producing vectors of `element` samples with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`](crate::collection::vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty size range");
        let len = rng.range_u64(self.size.start as u64, self.size.end as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
