//! `prop::sample` subset: the `select` strategy.

use crate::{Strategy, TestRng};

/// Strategy drawing uniformly from `choices`.
///
/// # Panics
///
/// Sampling panics if `choices` is empty.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    Select { choices }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.choices.is_empty(), "select from empty set");
        let idx = rng.range_u64(0, self.choices.len() as u64) as usize;
        self.choices[idx].clone()
    }
}
