//! Soft-error / ECC implications of FgNVM's bit grouping (§3.2).
//!
//! To keep the column-select signal count manageable, FgNVM *groups* the
//! bits of a cache line into one tile instead of interleaving them across
//! every tile of the row ("we propose to group bits of the same cache line
//! into a single tile"). The paper notes this "may raise concern for
//! increased soft error rates due to high correlation of errors in nearby
//! cells" and assumes resistive storage is radiation-hard enough to permit
//! it. This module makes the concern quantitative:
//!
//! * under the classic **interleaved** layout, a physically clustered
//!   multi-cell upset of span `k` touches `k` *different* cache lines, one
//!   bit each — per-line SECDED corrects everything;
//! * under FgNVM's **grouped** layout, the same upset lands `k` bits in
//!   *one* line, requiring a `t ≥ k` multi-bit-correcting code (e.g. BCH).
//!
//! The [`EccRequirement`] calculator gives the check-bit overhead either
//! layout needs to survive a given cluster span, so the area cost of the
//! paper's assumption can be compared against its CSL-count savings.

use serde::{Deserialize, Serialize};

/// Physical data layout of a cache line across a row's tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitLayout {
    /// Baseline: consecutive bits of a line interleave across all tiles of
    /// the row (bit *i* of the line lives in tile `i mod tiles`).
    Interleaved {
        /// Tiles (cache lines) sharing the row.
        tiles: u32,
    },
    /// FgNVM: a line's bits sit adjacently within one tile.
    Grouped,
}

/// How many bits of a *single cache line* a physically clustered upset of
/// `cluster_span` adjacent cells can corrupt under `layout`.
pub fn worst_case_bits_per_line(layout: BitLayout, cluster_span: u32) -> u32 {
    match layout {
        // The cluster spreads round-robin: a line is hit once per full
        // sweep of the tiles, rounded up.
        BitLayout::Interleaved { tiles } => cluster_span.div_ceil(tiles.max(1)),
        // All clustered cells belong to the same line (until the cluster
        // exceeds the line itself, which the caller bounds).
        BitLayout::Grouped => cluster_span,
    }
}

/// ECC parameters required to correct `t` bit errors in a `data_bits`
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EccRequirement {
    /// Errors the code must correct per line.
    pub correctable: u32,
    /// Check bits required per line.
    pub check_bits: u32,
    /// Storage overhead as a fraction of the payload.
    pub overhead: f64,
}

/// Computes the ECC a layout needs to ride out clustered upsets of
/// `cluster_span` cells on a `line_bits` cache line.
///
/// ```
/// use fgnvm_model::reliability::{ecc_for, BitLayout};
///
/// // A 4-cell upset: interleaving keeps it to 1 bit/line (SECDED is
/// // enough); FgNVM's grouping needs a 4-error BCH code.
/// let interleaved = ecc_for(BitLayout::Interleaved { tiles: 16 }, 512, 4);
/// let grouped = ecc_for(BitLayout::Grouped, 512, 4);
/// assert_eq!(interleaved.correctable, 1);
/// assert_eq!(grouped.correctable, 4);
/// assert!(grouped.check_bits > interleaved.check_bits);
/// ```
///
/// Uses the BCH bound: correcting `t` errors over `k` data bits needs
/// about `t × ⌈log2(k + t·m)⌉` check bits (`m` = Galois-field order);
/// `t = 1` specializes to SECDED (`⌈log2 k⌉ + 2`).
///
/// # Panics
///
/// Panics if `line_bits` is zero or the cluster exceeds the line.
pub fn ecc_for(layout: BitLayout, line_bits: u32, cluster_span: u32) -> EccRequirement {
    assert!(line_bits > 0, "line must hold data");
    assert!(cluster_span <= line_bits, "cluster larger than a line");
    let t = worst_case_bits_per_line(layout, cluster_span).max(1);
    let m = 32 - (line_bits - 1).leading_zeros(); // ⌈log2 line_bits⌉
    let check_bits = if t == 1 {
        m + 2 // SECDED
    } else {
        t * (m + 1) // BCH t-error-correcting over GF(2^(m+1))
    };
    EccRequirement {
        correctable: t,
        check_bits,
        overhead: f64::from(check_bits) / f64::from(line_bits),
    }
}

/// Side-by-side ECC comparison for the paper's layouts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayoutComparison {
    /// Upset span analyzed (adjacent cells).
    pub cluster_span: u32,
    /// Baseline interleaved layout requirement.
    pub interleaved: EccRequirement,
    /// FgNVM grouped layout requirement.
    pub grouped: EccRequirement,
}

impl LayoutComparison {
    /// Extra check bits the grouped layout pays per line.
    pub fn extra_check_bits(&self) -> u32 {
        self.grouped
            .check_bits
            .saturating_sub(self.interleaved.check_bits)
    }
}

/// Compares both layouts for a 512-bit line in a row of `tiles` tiles,
/// sweeping the cluster span.
pub fn compare_layouts(tiles: u32, line_bits: u32, cluster_span: u32) -> LayoutComparison {
    LayoutComparison {
        cluster_span,
        interleaved: ecc_for(BitLayout::Interleaved { tiles }, line_bits, cluster_span),
        grouped: ecc_for(BitLayout::Grouped, line_bits, cluster_span),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_spreads_clusters() {
        // 16 tiles: a 4-cell upset touches 4 lines, 1 bit each.
        let layout = BitLayout::Interleaved { tiles: 16 };
        assert_eq!(worst_case_bits_per_line(layout, 4), 1);
        // A 17-cell upset wraps: 2 bits in one line.
        assert_eq!(worst_case_bits_per_line(layout, 17), 2);
    }

    #[test]
    fn grouping_concentrates_clusters() {
        assert_eq!(worst_case_bits_per_line(BitLayout::Grouped, 4), 4);
    }

    #[test]
    fn secded_suffices_for_interleaved_small_clusters() {
        let ecc = ecc_for(BitLayout::Interleaved { tiles: 16 }, 512, 8);
        assert_eq!(ecc.correctable, 1);
        assert_eq!(ecc.check_bits, 11); // ⌈log2 512⌉ + 2
        assert!(ecc.overhead < 0.025);
    }

    #[test]
    fn grouped_needs_multibit_codes() {
        let ecc = ecc_for(BitLayout::Grouped, 512, 4);
        assert_eq!(ecc.correctable, 4);
        assert_eq!(ecc.check_bits, 4 * 10); // BCH t=4 over GF(2^10)
        assert!(ecc.overhead > 0.05);
    }

    #[test]
    fn comparison_quantifies_the_papers_concern() {
        let cmp = compare_layouts(16, 512, 4);
        assert!(cmp.grouped.check_bits > cmp.interleaved.check_bits);
        assert_eq!(cmp.extra_check_bits(), 40 - 11);
        // Still under 8 % of the line: grouping is affordable if (as the
        // paper assumes) resistive cells rarely see such clusters at all.
        assert!(cmp.grouped.overhead < 0.08);
    }

    #[test]
    fn single_bit_cluster_is_layout_independent() {
        let a = ecc_for(BitLayout::Interleaved { tiles: 16 }, 512, 1);
        let b = ecc_for(BitLayout::Grouped, 512, 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cluster larger")]
    fn oversized_cluster_rejected() {
        let _ = ecc_for(BitLayout::Grouped, 64, 65);
    }
}
