//! Analytical area and energy models for FgNVM bank subdivision.
//!
//! * [`area`] reproduces the paper's Table 1 — the added hardware of
//!   two-dimensional bank subdivision (per-SAG row decoders and latches,
//!   CSL latches, Y-select enable routing) — calibrated to the paper's
//!   published synthesis numbers.
//! * [`energy`] provides closed-form energy expectations, including the
//!   "Perfect" series of Figure 5 (exactly one cache line sensed per read).
//! * [`reliability`] quantifies §3.2's soft-error concern: the ECC cost of
//!   grouping a cache line's bits in one tile versus interleaving them.
//!
//! # Example
//!
//! ```
//! use fgnvm_model::area::AreaModel;
//!
//! let (avg, max) = AreaModel::paper_calibrated().table1();
//! assert!(avg.percent_of_chip < 0.1);   // "<0.1 %" in Table 1
//! assert!(max.percent_of_chip < 0.45);  // "0.36 %" in Table 1
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod energy;
pub mod reliability;

pub use area::{AreaModel, AreaReport};
pub use energy::{array_energy_pj, expected_relative_energy, perfect_energy_pj, AccessCounts};
pub use reliability::{compare_layouts, ecc_for, BitLayout, EccRequirement, LayoutComparison};
