//! Analytical area-overhead model reproducing Table 1 of the paper.
//!
//! FgNVM adds four kinds of hardware to a bank (§5):
//!
//! 1. **Row decoders** — the global two-stage decoder is split into one
//!    decoder per subarray group. A decoder for `N` rows grows as
//!    `Ω(N log N)` (Rabaey-style transistor count), so `S` decoders of
//!    `N/S` rows are never *larger* than one of `N`: the paper reports the
//!    overhead as "N/A" and we model it as zero (clamped).
//! 2. **Row-address latches** — one per subarray group, to hold the open
//!    row (enables Multi-Activation). Synthesized at TSMC 45 nm in the
//!    paper; we use an affine fit through the paper's two data points
//!    (8×8 → 2325 µm², 32×32 → 9333 µm²), i.e. ≈ 292 µm² per SAG with a
//!    small negative intercept from synthesis amortization.
//! 3. **CSL latches** — persistently drive each tile's local Y-select; one
//!    one-hot latch bit per (SAG, CD). Affine fit through the paper's
//!    points (8×8 = 64 bits → 636.3 µm², 32×32 = 1024 bits → 4242 µm²):
//!    ≈ 3.76 µm² per latch bit plus ≈ 396 µm² of shared control.
//! 4. **Local Y-select enable wires** — one enable per SAG per CD, routed
//!    at a 6F metal-3 pitch along the 4 mm bank. Up to
//!    [`over_tile_tracks`](AreaModel::over_tile_tracks) of them ride over
//!    the tiles with the global I/O lines for free (the paper's best
//!    case); only the overflow needs dedicated tracks. The track capacity
//!    is calibrated so the 32×32 worst case lands at the paper's 0.1 mm².

use serde::{Deserialize, Serialize};

/// Area of one component and the total, in µm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Subarray groups of the evaluated design.
    pub sags: u32,
    /// Column divisions of the evaluated design.
    pub cds: u32,
    /// Extra row-decoder area (clamped at zero; splitting shrinks it).
    pub row_decoder_um2: f64,
    /// Per-SAG row-address latches.
    pub row_latches_um2: f64,
    /// Per-(SAG, CD) column-select latches.
    pub csl_latches_um2: f64,
    /// Local Y-select enable routing (worst case).
    pub yselect_lines_um2: f64,
    /// Fraction of the chip this represents.
    pub percent_of_chip: f64,
}

impl AreaReport {
    /// Total added area in µm².
    pub fn total_um2(&self) -> f64 {
        self.row_decoder_um2 + self.row_latches_um2 + self.csl_latches_um2 + self.yselect_lines_um2
    }
}

/// Area model parameters; defaults are calibrated to the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Technology feature size in nm (paper: 45 nm synthesis).
    pub feature_nm: f64,
    /// Bank length the enable bus must traverse, in mm (paper: 4 mm).
    pub bank_length_mm: f64,
    /// Rows per bank (decoder sizing).
    pub rows_per_bank: u32,
    /// Metal-3 tracks available over the tiles (shared with the global
    /// I/O lines); enables beyond this count need dedicated routing area.
    pub over_tile_tracks: u32,
    /// Die area used for the percentage column, in mm².
    pub chip_area_mm2: f64,
}

/// Affine fit through the paper's row-latch points (area = a + b × sags).
const ROW_LATCH_PER_SAG_UM2: f64 = (9333.0 - 2325.0) / (32.0 - 8.0);
const ROW_LATCH_BASE_UM2: f64 = 2325.0 - ROW_LATCH_PER_SAG_UM2 * 8.0;
/// Affine fit through the paper's CSL-latch points (area = a + b × sags×cds).
const CSL_PER_BIT_UM2: f64 = (4242.0 - 636.3) / (1024.0 - 64.0);
const CSL_BASE_UM2: f64 = 636.3 - CSL_PER_BIT_UM2 * 64.0;

impl AreaModel {
    /// The paper's calibration: 45 nm latches, a 4 mm bank, 32 Ki rows,
    /// 930 over-tile routing tracks (so the 8×8 design routes its enables
    /// for free and the 32×32 overflow costs the paper's 0.1 mm²), and a
    /// die sized so the 32×32 total lands at Table 1's 0.36 %.
    pub fn paper_calibrated() -> Self {
        AreaModel {
            feature_nm: 45.0,
            bank_length_mm: 4.0,
            rows_per_bank: 32_768,
            over_tile_tracks: 930,
            chip_area_mm2: 30.6,
        }
    }

    /// Transistor count of a two-stage decoder for `n` rows
    /// (Rabaey-style: ~`n (log2 n + 2)` with predecoding).
    fn decoder_transistors(n: u32) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let n = f64::from(n);
        n * (n.log2() + 2.0)
    }

    /// Extra decoder area from splitting one `rows` decoder into `sags`
    /// decoders of `rows/sags`, in transistors (clamped at zero: the split
    /// decoders are smaller because each decodes fewer address bits).
    pub fn decoder_delta_transistors(&self, sags: u32) -> f64 {
        let whole = Self::decoder_transistors(self.rows_per_bank);
        let split = f64::from(sags) * Self::decoder_transistors(self.rows_per_bank / sags.max(1));
        (split - whole).max(0.0)
    }

    /// Width of the Y-select enable bus in µm: one enable per (SAG, CD) at
    /// a 6F wire-plus-space pitch.
    pub fn enable_bus_width_um(&self, sags: u32, cds: u32) -> f64 {
        let pitch_um = 6.0 * self.feature_nm / 1000.0;
        f64::from(sags) * f64::from(cds) * pitch_um
    }

    /// Full area report for an `sags × cds` FgNVM bank.
    pub fn report(&self, sags: u32, cds: u32) -> AreaReport {
        let units = f64::from(sags) * f64::from(cds);
        // No subdivision → no added hardware at all.
        if sags <= 1 && cds <= 1 {
            return AreaReport {
                sags,
                cds,
                row_decoder_um2: 0.0,
                row_latches_um2: 0.0,
                csl_latches_um2: 0.0,
                yselect_lines_um2: 0.0,
                percent_of_chip: 0.0,
            };
        }
        let row_latches = (ROW_LATCH_BASE_UM2 + ROW_LATCH_PER_SAG_UM2 * f64::from(sags)).max(0.0);
        let csl_latches = (CSL_BASE_UM2 + CSL_PER_BIT_UM2 * units).max(0.0);
        // Decoder delta is zero or negative; Table 1 reports "N/A".
        let row_decoder = self.decoder_delta_transistors(sags); // 0.0 by construction
        let overflow_wires =
            (f64::from(sags) * f64::from(cds) - f64::from(self.over_tile_tracks)).max(0.0);
        let pitch_um = 6.0 * self.feature_nm / 1000.0;
        let yselect = overflow_wires * pitch_um * (self.bank_length_mm * 1000.0);
        let total = row_decoder + row_latches + csl_latches + yselect;
        AreaReport {
            sags,
            cds,
            row_decoder_um2: row_decoder,
            row_latches_um2: row_latches,
            csl_latches_um2: csl_latches,
            yselect_lines_um2: yselect,
            percent_of_chip: total / (self.chip_area_mm2 * 1_000_000.0) * 100.0,
        }
    }

    /// The paper's Table 1: (average = 8×8, maximum = 32×32).
    pub fn table1(&self) -> (AreaReport, AreaReport) {
        (self.report(8, 8), self.report(32, 32))
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn row_latches_match_table1() {
        let m = AreaModel::paper_calibrated();
        let (avg, max) = m.table1();
        assert!(
            close(avg.row_latches_um2, 2325.0, 0.01),
            "avg {}",
            avg.row_latches_um2
        );
        assert!(
            close(max.row_latches_um2, 9333.0, 0.01),
            "max {}",
            max.row_latches_um2
        );
    }

    #[test]
    fn csl_latches_match_table1() {
        let m = AreaModel::paper_calibrated();
        let (avg, max) = m.table1();
        assert!(
            close(avg.csl_latches_um2, 636.3, 0.01),
            "avg {}",
            avg.csl_latches_um2
        );
        assert!(
            close(max.csl_latches_um2, 4242.0, 0.01),
            "max {}",
            max.csl_latches_um2
        );
    }

    #[test]
    fn yselect_worst_case_near_tenth_mm2() {
        let m = AreaModel::paper_calibrated();
        let (avg, max) = m.table1();
        // 8×8 fits entirely over the tiles (paper's best case: zero).
        assert_eq!(avg.yselect_lines_um2, 0.0);
        // Paper: 0.1 mm² = 100_000 µm² for 32×32.
        assert!(
            close(max.yselect_lines_um2, 100_000.0, 0.15),
            "{}",
            max.yselect_lines_um2
        );
    }

    #[test]
    fn table1_average_total_matches_paper() {
        let m = AreaModel::paper_calibrated();
        let (avg, _) = m.table1();
        // Paper: 2961 µm² average total.
        assert!(close(avg.total_um2(), 2961.0, 0.01), "{}", avg.total_um2());
    }

    #[test]
    fn totals_match_table1_bounds() {
        let m = AreaModel::paper_calibrated();
        let (avg, max) = m.table1();
        // Average: < 0.1 % of the chip (paper's "<0.1%").
        assert!(avg.percent_of_chip < 0.1, "avg {}%", avg.percent_of_chip);
        // Maximum: ≈ 0.36 % (paper's stated maximum).
        assert!(
            close(max.percent_of_chip, 0.36, 0.15),
            "max {}%",
            max.percent_of_chip
        );
        // Max total ≈ 0.11 mm².
        assert!(
            close(max.total_um2(), 110_000.0, 0.15),
            "max total {}",
            max.total_um2()
        );
    }

    #[test]
    fn decoder_split_never_adds_area() {
        let m = AreaModel::paper_calibrated();
        for sags in [1, 2, 4, 8, 16, 32] {
            assert_eq!(m.decoder_delta_transistors(sags), 0.0, "sags={sags}");
        }
    }

    #[test]
    fn enable_bus_width_matches_paper_estimate() {
        let m = AreaModel::paper_calibrated();
        // Paper: 32×32 at 6F/45 nm gives a ~246 µm bus; our pitch math
        // yields 276 µm (the paper evidently deducts some shared tracks).
        let w = m.enable_bus_width_um(32, 32);
        assert!((246.0..300.0).contains(&w), "width {w}");
    }

    #[test]
    fn unsubdivided_bank_has_no_overhead() {
        let m = AreaModel::paper_calibrated();
        let r = m.report(1, 1);
        assert_eq!(r.total_um2(), 0.0);
        assert_eq!(r.percent_of_chip, 0.0);
    }

    #[test]
    fn overhead_grows_with_subdivision() {
        let m = AreaModel::paper_calibrated();
        let small = m.report(4, 4).total_um2();
        let medium = m.report(8, 8).total_um2();
        let large = m.report(32, 32).total_um2();
        assert!(small < medium && medium < large);
    }
}
