//! Closed-form energy expectations (the analytic side of Fig. 5).
//!
//! The simulator measures energy; this module predicts it. Both share the
//! paper's constants (2 pJ/bit sense, 16 pJ/bit write). The closed forms
//! are used for the "8×32 Perfect" series of Figure 5 — exactly one cache
//! line sensed per read, no background power — and for sanity-checking the
//! measured results against expectation.

use serde::{Deserialize, Serialize};

use fgnvm_types::config::EnergyConfig;
use fgnvm_types::geometry::Geometry;

/// Inputs of the closed-form model: what a workload did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Demand reads served by the array.
    pub reads: u64,
    /// Row-buffer hit reads among them (sense nothing).
    pub read_hits: u64,
    /// Writes driven into the array.
    pub writes: u64,
}

impl AccessCounts {
    /// Reads that required sensing.
    pub fn read_misses(&self) -> u64 {
        self.reads.saturating_sub(self.read_hits)
    }
}

/// Closed-form energy for the *Perfect* design: every read senses exactly
/// one cache line, writes drive one line, no background power. This is the
/// asymptote the paper's 8×32 configuration approaches.
pub fn perfect_energy_pj(counts: &AccessCounts, geometry: &Geometry, energy: &EnergyConfig) -> f64 {
    let line_bits = f64::from(geometry.line_bytes()) * 8.0;
    counts.read_misses() as f64 * line_bits * energy.read_pj_per_bit
        + counts.writes as f64 * line_bits * energy.write_pj_per_bit
}

/// Closed-form energy for an `S×C` FgNVM (or the baseline with `cds = 1`):
/// each read miss senses one CD slice (never less than a line), each write
/// drives one line, background ignored (the simulator adds it).
pub fn array_energy_pj(counts: &AccessCounts, geometry: &Geometry, energy: &EnergyConfig) -> f64 {
    let sensed_bits = f64::from(geometry.sensed_bytes_per_line_access()) * 8.0;
    let line_bits = f64::from(geometry.line_bytes()) * 8.0;
    counts.read_misses() as f64 * sensed_bits * energy.read_pj_per_bit
        + counts.writes as f64 * line_bits * energy.write_pj_per_bit
}

/// Expected Fig. 5 ratio for a subdivision, from first principles: with
/// miss ratio `m = 1 - hit_rate` and write fraction `w`, the array energy
/// relative to the baseline is
///
/// ```text
///           (1-w)·m·sensed(C) · e_r + w·line · e_w
/// ratio = ------------------------------------------
///           (1-w)·m·row · e_r     + w·line · e_w
/// ```
///
/// (background energy, being design-independent, shifts both numerator and
/// denominator equally and is omitted here).
///
/// # Panics
///
/// Panics if `hit_rate` or `write_fraction` is outside `[0, 1]`.
pub fn expected_relative_energy(
    geometry: &Geometry,
    energy: &EnergyConfig,
    hit_rate: f64,
    write_fraction: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&hit_rate), "hit_rate out of range");
    assert!(
        (0.0..=1.0).contains(&write_fraction),
        "write_fraction out of range"
    );
    let miss = 1.0 - hit_rate;
    let read_share = 1.0 - write_fraction;
    let line_bits = f64::from(geometry.line_bytes()) * 8.0;
    let row_bits = f64::from(geometry.row_bytes()) * 8.0;
    let sensed_bits = f64::from(geometry.sensed_bytes_per_line_access()) * 8.0;
    let write_term = write_fraction * line_bits * energy.write_pj_per_bit;
    let numer = read_share * miss * sensed_bits * energy.read_pj_per_bit + write_term;
    let denom = read_share * miss * row_bits * energy.read_pj_per_bit + write_term;
    numer / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(cds: u32) -> Geometry {
        Geometry::builder().sags(8).cds(cds).build().unwrap()
    }

    #[test]
    fn perfect_counts_one_line_per_miss() {
        let counts = AccessCounts {
            reads: 100,
            read_hits: 40,
            writes: 30,
        };
        let e = perfect_energy_pj(&counts, &geom(2), &EnergyConfig::paper_pcm());
        // 60 misses × 512 bits × 2 pJ + 30 writes × 512 bits × 16 pJ.
        let expected = 60.0 * 512.0 * 2.0 + 30.0 * 512.0 * 16.0;
        assert!((e - expected).abs() < 1e-6);
    }

    #[test]
    fn array_energy_shrinks_with_cds() {
        let counts = AccessCounts {
            reads: 100,
            read_hits: 0,
            writes: 0,
        };
        let energy = EnergyConfig::paper_pcm();
        let base = array_energy_pj(
            &counts,
            &Geometry::builder().sags(1).cds(1).build().unwrap(),
            &energy,
        );
        let e2 = array_energy_pj(&counts, &geom(2), &energy);
        let e8 = array_energy_pj(&counts, &geom(8), &energy);
        let e32 = array_energy_pj(&counts, &geom(32), &energy);
        assert!(base > e2 && e2 > e8 && e8 > e32);
        // Pure-read ratio halves per CD doubling until the line floor.
        assert!((e2 / base - 0.5).abs() < 1e-9);
        assert!((e8 / base - 0.125).abs() < 1e-9);
        // 8×32 senses one full line (two 32 B slices): 64 B of 1024 B.
        assert!((e32 / base - 0.0625).abs() < 1e-9);
    }

    #[test]
    fn expected_ratios_reproduce_figure5_averages() {
        // With the workload mix implied by the paper (~40 % row hits,
        // ~30 % writes), the model lands near Fig. 5's 0.63 / 0.35 / 0.27.
        let energy = EnergyConfig::paper_pcm();
        let r2 = expected_relative_energy(&geom(2), &energy, 0.4, 0.3);
        let r8 = expected_relative_energy(&geom(8), &energy, 0.4, 0.3);
        let r32 = expected_relative_energy(&geom(32), &energy, 0.4, 0.3);
        assert!((r2 - 0.63).abs() < 0.05, "8x2 ratio {r2}");
        assert!((r8 - 0.35).abs() < 0.05, "8x8 ratio {r8}");
        assert!((r32 - 0.31).abs() < 0.06, "8x32 ratio {r32}");
        assert!(r32 < r8 && r8 < r2 && r2 < 1.0);
    }

    #[test]
    fn write_energy_does_not_scale() {
        // A pure-write workload sees no benefit from subdivision.
        let energy = EnergyConfig::paper_pcm();
        let r = expected_relative_energy(&geom(32), &energy, 0.0, 1.0);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hit_rate")]
    fn bad_hit_rate_rejected() {
        let _ = expected_relative_energy(&geom(2), &EnergyConfig::paper_pcm(), 1.5, 0.0);
    }
}
