//! Regenerates **Figure 4** (relative IPC of FgNVM, 128 banks, and
//! Multi-Issue over the baseline) and benchmarks one workload × design
//! simulation, the kernel behind every bar of the figure.
//!
//! ```text
//! cargo bench -p fgnvm-bench --bench fig4_speedup
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fgnvm_sim::experiment;
use fgnvm_sim::runner::{run_one, ExperimentParams};
use fgnvm_types::config::SystemConfig;
use fgnvm_types::geometry::Geometry;
use fgnvm_workloads::profile;

fn bench(c: &mut Criterion) {
    // Regenerate the figure once with moderate trace lengths.
    let params = ExperimentParams {
        ops: 2500,
        ..ExperimentParams::full()
    };
    let fig4 = experiment::fig4(&params).expect("figure 4 runs");
    println!("{}", fig4.to_table().render());

    // Benchmark the per-bar kernel.
    let bench_params = ExperimentParams {
        ops: 800,
        ..ExperimentParams::quick()
    };
    let trace = profile("milc_like")
        .unwrap()
        .generate(Geometry::default(), 7, 800);
    let mut group = c.benchmark_group("fig4_kernel");
    group.sample_size(20);
    for (name, config) in [
        ("baseline", SystemConfig::baseline()),
        ("fgnvm_8x2", SystemConfig::fgnvm(8, 2).unwrap()),
        (
            "many_banks",
            SystemConfig::many_banks_matching(8, 2).unwrap(),
        ),
        (
            "multi_issue",
            SystemConfig::fgnvm_multi_issue(8, 2, 2).unwrap(),
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("run", name), &config, |b, cfg| {
            b.iter(|| black_box(run_one(&trace, cfg, &bench_params).expect("run succeeds")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
