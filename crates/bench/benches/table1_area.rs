//! Regenerates **Table 1** (area overheads) and benchmarks the analytical
//! area model across subdivisions.
//!
//! ```text
//! cargo bench -p fgnvm-bench --bench table1_area
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fgnvm_model::area::AreaModel;
use fgnvm_sim::experiment;

fn bench(c: &mut Criterion) {
    // Print the regenerated artifact once.
    println!("{}", experiment::table1().render());

    let model = AreaModel::paper_calibrated();
    let mut group = c.benchmark_group("table1_area");
    for (sags, cds) in [(8u32, 8u32), (32, 32)] {
        group.bench_with_input(
            BenchmarkId::new("report", format!("{sags}x{cds}")),
            &(sags, cds),
            |b, &(s, cd)| b.iter(|| black_box(model.report(black_box(s), black_box(cd)))),
        );
    }
    group.bench_function("full_table1", |b| b.iter(|| black_box(model.table1())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
