//! Microbenchmarks of the substrate extensions: DRAM bank, Start-Gap wear
//! leveling, write pausing, and the prefetching core.
//!
//! ```text
//! cargo bench -p fgnvm-bench --bench substrate_micro
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fgnvm_cpu::{Core, CoreConfig, MultiCore, RobCore};
use fgnvm_mem::{MemorySystem, StartGap};
use fgnvm_types::config::SystemConfig;
use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::Op;
use fgnvm_types::PhysAddr;
use fgnvm_workloads::profile;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_micro");

    group.throughput(Throughput::Elements(500));
    group.bench_function("dram_500_random_reads", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::new(SystemConfig::dram()).unwrap();
            for i in 0..500u64 {
                while mem
                    .enqueue(Op::Read, PhysAddr::new((i * 0x9E37_79B9) & 0xFFF_FFC0))
                    .is_none()
                {
                    mem.tick();
                }
            }
            black_box(mem.run_until_idle(10_000_000).len())
        })
    });

    group.throughput(Throughput::Elements(1000));
    group.bench_function("start_gap_map_1k", |b| {
        let sg = StartGap::new(32_767, 100).unwrap();
        b.iter(|| {
            let mut acc = 0u64;
            for row in 0..1000u32 {
                acc += u64::from(sg.map(black_box(row)));
            }
            black_box(acc)
        })
    });

    group.throughput(Throughput::Elements(200));
    group.bench_function("leveled_200_writes", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
            mem.enable_wear_tracking();
            mem.enable_start_gap(16).unwrap();
            for i in 0..200u64 {
                while mem.enqueue(Op::Write, PhysAddr::new(i * 8192)).is_none() {
                    mem.tick();
                }
            }
            mem.run_until_idle(10_000_000);
            black_box(mem.wear().unwrap().total_writes())
        })
    });

    group.throughput(Throughput::Elements(200));
    group.bench_function("pausing_mixed_200", |b| {
        b.iter(|| {
            let mut mem =
                MemorySystem::new(SystemConfig::fgnvm_with_pausing(8, 8).unwrap()).unwrap();
            for i in 0..200u64 {
                let op = if i % 3 == 0 { Op::Write } else { Op::Read };
                while mem
                    .enqueue(op, PhysAddr::new((i * 0x9E37_79B9) & 0xFFF_FFC0))
                    .is_none()
                {
                    mem.tick();
                }
            }
            black_box(mem.run_until_idle(10_000_000).len())
        })
    });

    group.sample_size(20);
    group.bench_function("prefetching_core_run", |b| {
        let trace = profile("libquantum_like")
            .unwrap()
            .generate(Geometry::default(), 7, 800);
        let core = Core::new(CoreConfig::nehalem_like()).unwrap();
        b.iter(|| {
            let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 8).unwrap()).unwrap();
            black_box(core.run(&trace, &mut mem))
        })
    });

    // The windowed model vs the structural ROB model: simulation-speed cost
    // of structural fidelity.
    group.bench_function("windowed_core_800ops", |b| {
        let trace = profile("milc_like")
            .unwrap()
            .generate(Geometry::default(), 7, 800);
        let core = Core::new(CoreConfig::no_prefetch()).unwrap();
        b.iter(|| {
            let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 8).unwrap()).unwrap();
            black_box(core.run(&trace, &mut mem))
        })
    });
    group.bench_function("rob_core_800ops", |b| {
        let trace = profile("milc_like")
            .unwrap()
            .generate(Geometry::default(), 7, 800);
        let core = RobCore::new(CoreConfig::no_prefetch()).unwrap();
        b.iter(|| {
            let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 8).unwrap()).unwrap();
            black_box(core.run(&trace, &mut mem))
        })
    });
    group.bench_function("multicore_4x400ops", |b| {
        let traces: Vec<_> = ["mcf_like", "lbm_like", "milc_like", "omnetpp_like"]
            .iter()
            .map(|n| profile(n).unwrap().generate(Geometry::default(), 7, 400))
            .collect();
        let multi = MultiCore::new(CoreConfig::no_prefetch(), 4).unwrap();
        b.iter(|| {
            let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 8).unwrap()).unwrap();
            black_box(multi.run(&traces, &mut mem).throughput())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
