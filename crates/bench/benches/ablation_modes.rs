//! Regenerates the **access-mode ablation** (the design-choice study of
//! DESIGN.md E6: each of Partial-Activation, Multi-Activation, and
//! Backgrounded Writes enabled alone) and benchmarks the mode-gating
//! bank-model kernels.
//!
//! ```text
//! cargo bench -p fgnvm-bench --bench ablation_modes
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fgnvm_bank::{Access, Bank, FgnvmBank, Modes};
use fgnvm_sim::experiment;
use fgnvm_sim::runner::ExperimentParams;
use fgnvm_types::address::TileCoord;
use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::Op;
use fgnvm_types::time::Cycle;
use fgnvm_types::TimingConfig;

fn bench(c: &mut Criterion) {
    // Regenerate the ablation table once.
    let params = ExperimentParams {
        ops: 2000,
        ..ExperimentParams::full()
    };
    let ablation = experiment::ablation(&params).expect("ablation runs");
    println!("{}", ablation.to_table().render());
    // And the subdivision sweep, which shares this bench target.
    let sweep = experiment::sweep(&params).expect("sweep runs");
    println!("{}", sweep.to_table().render());

    // Benchmark the plan/commit kernel under each mode set.
    let geom = Geometry::builder().sags(8).cds(8).build().unwrap();
    let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
    let mut group = c.benchmark_group("bank_kernel");
    for (name, modes) in [("all_modes", Modes::all()), ("no_modes", Modes::none())] {
        group.bench_with_input(BenchmarkId::new("plan_commit_1k", name), &modes, |b, &m| {
            b.iter(|| {
                let mut bank = FgnvmBank::new(&geom, timing, m, true).unwrap();
                let mut now = Cycle::ZERO;
                for i in 0..1000u32 {
                    let row = (i * 37) % geom.rows_per_bank();
                    let line = i % geom.lines_per_row();
                    let (cd_first, cd_count) = geom.cds_of_line(line);
                    let access = Access {
                        op: if i % 4 == 0 { Op::Write } else { Op::Read },
                        row,
                        line,
                        coord: TileCoord {
                            sag: geom.sag_of_row(row),
                            cd_first,
                            cd_count,
                        },
                    };
                    loop {
                        match bank.plan(&access, now) {
                            Ok(plan) => {
                                bank.commit(&access, &plan, now, plan.earliest_data);
                                break;
                            }
                            Err(blocked) => now = blocked.retry_at,
                        }
                    }
                }
                black_box(bank.stats().reads)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
