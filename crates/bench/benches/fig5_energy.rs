//! Regenerates **Figure 5** (energy relative to the baseline for 8×2, 8×8,
//! 8×32, and the Perfect bound) and benchmarks the energy-accounting path.
//!
//! ```text
//! cargo bench -p fgnvm-bench --bench fig5_energy
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fgnvm_mem::{EnergyModel, MemorySystem};
use fgnvm_sim::experiment;
use fgnvm_sim::runner::ExperimentParams;
use fgnvm_types::config::SystemConfig;
use fgnvm_types::request::Op;
use fgnvm_types::time::CycleCount;
use fgnvm_types::PhysAddr;

fn bench(c: &mut Criterion) {
    // Regenerate the figure once with moderate trace lengths.
    let params = ExperimentParams {
        ops: 2500,
        ..ExperimentParams::full()
    };
    let fig5 = experiment::fig5(&params).expect("figure 5 runs");
    println!("{}", fig5.to_table().render());

    // Benchmark energy accounting on a live memory system.
    let mut group = c.benchmark_group("fig5_kernel");
    for cds in [2u32, 8, 32] {
        let config = SystemConfig::fgnvm(8, cds).unwrap();
        group.bench_with_input(BenchmarkId::new("sim_1k_reads", cds), &config, |b, cfg| {
            b.iter(|| {
                let mut mem = MemorySystem::new(*cfg).expect("config valid");
                for i in 0..1000u64 {
                    while mem.enqueue(Op::Read, PhysAddr::new(i * 131_072)).is_none() {
                        mem.tick();
                    }
                }
                mem.run_until_idle(10_000_000);
                black_box(mem.energy())
            })
        });
    }
    let model = EnergyModel::new(&SystemConfig::baseline());
    let stats = fgnvm_bank::BankStats {
        sensed_bits: 1 << 30,
        written_bits: 1 << 24,
        ..fgnvm_bank::BankStats::new()
    };
    group.bench_function("breakdown", |b| {
        b.iter(|| black_box(model.breakdown(black_box(&stats), CycleCount::new(1_000_000))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
