//! Microbenchmarks of the simulator's hot paths: address decode, bank
//! planning, controller ticks, and trace generation. These guard the
//! simulator's own performance (a slow simulator caps experiment sizes).
//!
//! ```text
//! cargo bench -p fgnvm-bench --bench sim_micro
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fgnvm_mem::MemorySystem;
use fgnvm_types::address::{AddressMapper, MappingScheme};
use fgnvm_types::config::SystemConfig;
use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::Op;
use fgnvm_types::PhysAddr;
use fgnvm_workloads::profile;

fn bench(c: &mut Criterion) {
    let geom = Geometry::default();
    let mapper = AddressMapper::new(geom, MappingScheme::default());

    let mut group = c.benchmark_group("sim_micro");
    group.throughput(Throughput::Elements(1));
    group.bench_function("address_decode", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x9E37_79B9_7F4A_7C15);
            black_box(mapper.decode(PhysAddr::new(a & 0xFFF_FFC0)))
        })
    });

    group.throughput(Throughput::Elements(1000));
    group.bench_function("memory_tick_1k_idle", |b| {
        let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 8).unwrap()).unwrap();
        let mut out = Vec::new();
        b.iter(|| {
            for _ in 0..1000 {
                mem.tick_into(&mut out);
            }
            black_box(out.len())
        })
    });

    group.throughput(Throughput::Elements(500));
    group.bench_function("memory_500_random_reads", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 8).unwrap()).unwrap();
            for i in 0..500u64 {
                while mem
                    .enqueue(Op::Read, PhysAddr::new((i * 0x9E37_79B9) & 0xFFF_FFC0))
                    .is_none()
                {
                    mem.tick();
                }
            }
            black_box(mem.run_until_idle(10_000_000).len())
        })
    });

    group.throughput(Throughput::Elements(1000));
    group.bench_function("trace_generation_1k", |b| {
        let p = profile("milc_like").unwrap();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(p.generate(geom, seed, 1000).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
