//! Microbenchmarks of the simulator's hot paths: address decode, bank
//! planning, controller ticks, and trace generation. These guard the
//! simulator's own performance (a slow simulator caps experiment sizes).
//!
//! ```text
//! cargo bench -p fgnvm-bench --bench sim_micro
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fgnvm_mem::MemorySystem;
use fgnvm_types::address::{AddressMapper, MappingScheme};
use fgnvm_types::config::SystemConfig;
use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::Op;
use fgnvm_types::PhysAddr;
use fgnvm_workloads::profile;

/// Drains a write-heavy burst (the workload where event-driven
/// fast-forwarding pays most: long programming windows with nothing
/// issuable) and returns the simulated cycle count.
fn write_drain(fast_forward: bool) -> u64 {
    write_drain_with(fast_forward, false, false)
}

/// [`write_drain`] with the observability layer (and optionally the
/// windowed telemetry engine at the serve default of 10k-cycle windows)
/// enabled, so the benchmark can quantify both overheads and prove the
/// default (observer off) path is untouched.
fn write_drain_with(fast_forward: bool, observed: bool, telemetry: bool) -> u64 {
    let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
    mem.set_fast_forward(fast_forward);
    if observed {
        mem.enable_observer();
    }
    if telemetry {
        mem.enable_telemetry(10_000, 128, 256);
    }
    let mut id = 0u64;
    for _wave in 0..12 {
        for _ in 0..32 {
            // Distinct lines of a few rows in one bank: writes serialize on
            // the long program pulse, so each drain is mostly dead cycles.
            let addr = PhysAddr::new(((id % 8) << 13) | (((id / 8) % 16) << 6));
            id += 1;
            while mem.enqueue(Op::Write, addr).is_none() {
                mem.tick();
            }
        }
        mem.run_until_idle(10_000_000);
    }
    mem.now().raw()
}

/// Measures simulated cycles per wall-clock second for one mode
/// (best of `reps` to shed scheduler noise).
fn cycles_per_sec(fast_forward: bool, reps: u32) -> (u64, f64) {
    let mut best = 0.0f64;
    let mut cycles = 0;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        cycles = black_box(write_drain(fast_forward));
        let rate = cycles as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    (cycles, best)
}

/// One sweep-executor job: several fast-forwarded drains, large enough
/// (a few ms) that worker spawn/steal overhead is measurement noise.
/// Returns simulated cycles.
fn sweep_job() -> u64 {
    (0..8).map(|_| write_drain(true)).sum()
}

/// Aggregate simulated cycles per second of a 16-job sweep through the
/// work-stealing executor at the given `--jobs` cap.
fn sweep_rate(jobs_cap: usize) -> f64 {
    fgnvm_sim::runner::set_jobs(jobs_cap);
    let items = [(); 16];
    let start = std::time::Instant::now();
    let total: u64 = fgnvm_sim::run_jobs(&items, |_, ()| sweep_job())
        .into_iter()
        .sum();
    let rate = total as f64 / start.elapsed().as_secs_f64();
    fgnvm_sim::runner::set_jobs(0);
    rate
}

/// Measures the stepped-vs-fast-forward throughput ratio plus the sweep
/// executor's core scaling, and records both in `BENCH_sim.json` at the
/// workspace root. The stepped and fast-forwarded runs must simulate the
/// *same* number of cycles (they are bit-identical by construction), and
/// the skip machinery has to buy at least the 5x the design is sized for.
fn emit_bench_sim_json() {
    // More reps on the fast side: each rep is ~100 µs, so the best-of is
    // far noisier than the multi-ms stepped reps without them.
    let (stepped_cycles, stepped_rate) = cycles_per_sec(false, 3);
    let (ff_cycles, ff_rate) = cycles_per_sec(true, 9);
    assert_eq!(
        stepped_cycles, ff_cycles,
        "fast-forward diverged from stepping on the benchmark workload"
    );
    // The observability layer must be strictly passive: with the observer
    // (and the telemetry engine) enabled the run simulates the exact same
    // number of cycles.
    let observed_cycles = write_drain_with(true, true, false);
    assert_eq!(
        stepped_cycles, observed_cycles,
        "enabling the observer perturbed the benchmark workload"
    );
    let telemetry_cycles = write_drain_with(true, true, true);
    assert_eq!(
        stepped_cycles, telemetry_cycles,
        "enabling telemetry perturbed the benchmark workload"
    );
    let speedup = ff_rate / stepped_rate;
    // Telemetry overhead on top of the observer, best-of to shed noise.
    let best_rate = |telemetry: bool| {
        let mut best = 0.0f64;
        for _ in 0..9 {
            let start = std::time::Instant::now();
            let cycles = black_box(write_drain_with(true, true, telemetry));
            best = best.max(cycles as f64 / start.elapsed().as_secs_f64());
        }
        best
    };
    let observed_rate = best_rate(false);
    let telemetry_rate = best_rate(true);
    // Best-of-N rates still jitter a percent or so, so the raw fraction
    // can land slightly negative. That means "unmeasurably small", not
    // that telemetry sped the simulator up: the headline clamps at zero
    // and the raw value is recorded alongside it so the CI guard can
    // distinguish noise-floor readings from real regressions.
    let telemetry_overhead_raw = 1.0 - telemetry_rate / observed_rate;
    let telemetry_overhead = telemetry_overhead_raw.max(0.0);
    // Sweep-executor core scaling: the same 16-job sweep at one worker,
    // two workers, and the host's full parallelism. Efficiency is the
    // per-worker fraction of linear scaling retained at full width.
    let workers_max = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let sweep_rate_1 = sweep_rate(1);
    let sweep_rate_2 = sweep_rate(2);
    let sweep_rate_max = sweep_rate(workers_max);
    // A single-worker host cannot measure multi-core scaling: every rate
    // above is the same serial executor, and an "efficiency" derived from
    // them is noise dressed up as signal. Record null so downstream
    // consumers (the CI provenance guard) know the field was unmeasurable
    // rather than silently archiving a fiction.
    let scaling_efficiency = if workers_max > 1 {
        format!(
            "{:.2}",
            sweep_rate_max / (sweep_rate_1 * workers_max as f64)
        )
    } else {
        "null".to_string()
    };
    // Provenance block shared with the run ledger (see fgnvm_sim::profile):
    // schema version, wall timestamp, commit hash, and configuration hash,
    // so archived BENCH_sim.json artifacts are attributable to a build.
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let git_sha = fgnvm_sim::profile::git_sha();
    let config_hash = fgnvm_sim::profile::fnv1a_hex(
        format!("{:?}", SystemConfig::fgnvm(8, 2).unwrap()).as_bytes(),
    );
    let json = format!(
        "{{\n  \"schema_version\": {},\n  \
         \"timestamp\": {timestamp},\n  \
         \"git_sha\": \"{git_sha}\",\n  \
         \"config_hash\": \"{config_hash}\",\n  \
         \"benchmark\": \"sim_micro.write_drain\",\n  \
         \"workload\": \"write-heavy burst, fgnvm 8x2, 12 waves x 32 writes\",\n  \
         \"simulated_cycles\": {stepped_cycles},\n  \
         \"stepped_cycles_per_sec\": {stepped_rate:.0},\n  \
         \"fast_forward_cycles_per_sec\": {ff_rate:.0},\n  \
         \"speedup\": {speedup:.1},\n  \
         \"observed_cycles_per_sec\": {observed_rate:.0},\n  \
         \"telemetry_cycles_per_sec\": {telemetry_rate:.0},\n  \
         \"telemetry_overhead_frac\": {telemetry_overhead:.3},\n  \
         \"telemetry_overhead_frac_raw\": {telemetry_overhead_raw:.3},\n  \
         \"sweep_jobs1_cycles_per_sec\": {sweep_rate_1:.0},\n  \
         \"sweep_jobs2_cycles_per_sec\": {sweep_rate_2:.0},\n  \
         \"sweep_jobs_max_cycles_per_sec\": {sweep_rate_max:.0},\n  \
         \"host_parallelism\": {workers_max},\n  \
         \"sweep_workers_max\": {workers_max},\n  \
         \"sweep_scaling_efficiency\": {scaling_efficiency}\n}}\n",
        fgnvm_sim::SCHEMA_VERSION
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("BENCH_sim.json: {json}");
    assert!(
        speedup >= 5.0,
        "fast-forward speedup {speedup:.1}x fell below the 5x floor"
    );
    // Loose backstop: the telemetry engine folds into existing hooks, so
    // anything beyond a few percent of wall rate is a hot-path regression.
    // (Typical measured overhead is ≤2%; 10% keeps shared-runner noise
    // from flaking CI while still catching real regressions.)
    assert!(
        telemetry_overhead <= 0.10,
        "telemetry overhead {telemetry_overhead:.3} of wall rate exceeds the 10% backstop"
    );
}

fn bench(c: &mut Criterion) {
    emit_bench_sim_json();
    let geom = Geometry::default();
    let mapper = AddressMapper::new(geom, MappingScheme::default());

    let mut group = c.benchmark_group("sim_micro");
    group.throughput(Throughput::Elements(1));
    group.bench_function("address_decode", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x9E37_79B9_7F4A_7C15);
            black_box(mapper.decode(PhysAddr::new(a & 0xFFF_FFC0)))
        })
    });

    group.throughput(Throughput::Elements(1000));
    group.bench_function("memory_tick_1k_idle", |b| {
        let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 8).unwrap()).unwrap();
        let mut out = Vec::new();
        b.iter(|| {
            for _ in 0..1000 {
                mem.tick_into(&mut out);
            }
            black_box(out.len())
        })
    });

    group.throughput(Throughput::Elements(500));
    group.bench_function("memory_500_random_reads", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 8).unwrap()).unwrap();
            for i in 0..500u64 {
                while mem
                    .enqueue(Op::Read, PhysAddr::new((i * 0x9E37_79B9) & 0xFFF_FFC0))
                    .is_none()
                {
                    mem.tick();
                }
            }
            black_box(mem.run_until_idle(10_000_000).len())
        })
    });

    group.throughput(Throughput::Elements(400));
    group.bench_function("write_drain_stepped", |b| b.iter(|| write_drain(false)));
    group.bench_function("write_drain_fast_forward", |b| b.iter(|| write_drain(true)));
    group.bench_function("write_drain_observed", |b| {
        b.iter(|| write_drain_with(true, true, false))
    });
    group.bench_function("write_drain_telemetry", |b| {
        b.iter(|| write_drain_with(true, true, true))
    });

    group.throughput(Throughput::Elements(1000));
    group.bench_function("trace_generation_1k", |b| {
        let p = profile("milc_like").unwrap();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(p.generate(geom, seed, 1000).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
