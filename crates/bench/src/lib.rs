//! Benchmark-only crate: see the `benches/` directory. Each bench target
//! regenerates one table or figure of the paper and then measures the
//! simulator kernels behind it with Criterion.
