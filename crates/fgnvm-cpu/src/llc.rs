//! A set-associative last-level cache with LRU replacement.
//!
//! The paper selects SPEC2006 workloads by their LLC miss rate (MPKI ≥ 10)
//! and feeds only misses to the memory simulator. Our synthetic generators
//! emit miss streams directly, but this filter lets users replay *raw*
//! access streams through a cache first, producing the same kind of trace
//! plus dirty-eviction writebacks.

use fgnvm_types::address::PhysAddr;
use fgnvm_types::error::ConfigError;
use fgnvm_types::request::Op;

/// What a cache access produced at the memory side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served by the cache; no memory traffic.
    Hit,
    /// Missed; a fill read goes to memory, and optionally a dirty
    /// writeback of the evicted line.
    Miss {
        /// Address of a dirty line evicted to make room, if any.
        writeback: Option<PhysAddr>,
    },
}

/// Set-associative, write-back, write-allocate cache with LRU replacement.
///
/// ```
/// use fgnvm_cpu::{CacheOutcome, LastLevelCache};
/// use fgnvm_types::request::Op;
/// use fgnvm_types::PhysAddr;
///
/// let mut llc = LastLevelCache::nehalem_like();
/// assert!(matches!(llc.access(PhysAddr::new(0), Op::Read), CacheOutcome::Miss { .. }));
/// assert_eq!(llc.access(PhysAddr::new(0), Op::Read), CacheOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct LastLevelCache {
    sets: u32,
    ways: u32,
    line_bytes: u32,
    /// `sets × ways` tags; `None` = invalid. Per-entry (tag, dirty, lru).
    entries: Vec<Option<Line>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    lru: u64,
}

impl LastLevelCache {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity
    /// and `line_bytes` lines.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is zero, not a power of
    /// two, or inconsistent.
    pub fn new(capacity_bytes: u64, ways: u32, line_bytes: u32) -> Result<Self, ConfigError> {
        if ways == 0 || !ways.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "ways",
                value: ways,
            });
        }
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "line_bytes",
                value: line_bytes,
            });
        }
        let lines = capacity_bytes / u64::from(line_bytes);
        if lines == 0 || !lines.is_multiple_of(u64::from(ways)) {
            return Err(ConfigError::Invalid {
                field: "capacity_bytes",
                reason: "capacity must be a multiple of ways × line size",
            });
        }
        let sets = (lines / u64::from(ways)) as u32;
        if !sets.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "sets",
                value: sets,
            });
        }
        Ok(LastLevelCache {
            sets,
            ways,
            line_bytes,
            entries: vec![None; (sets * ways) as usize],
            tick: 0,
            hits: 0,
            misses: 0,
        })
    }

    /// An 8 MB, 16-way, 64 B-line LLC (Nehalem-class).
    pub fn nehalem_like() -> Self {
        LastLevelCache::new(8 * 1024 * 1024, 16, 64).expect("preset is valid")
    }

    /// Performs one access, returning what reaches memory.
    pub fn access(&mut self, addr: PhysAddr, op: Op) -> CacheOutcome {
        self.tick += 1;
        let line_addr = addr.raw() / u64::from(self.line_bytes);
        let set = (line_addr % u64::from(self.sets)) as u32;
        let tag = line_addr / u64::from(self.sets);
        let base = (set * self.ways) as usize;
        let set_entries = &mut self.entries[base..base + self.ways as usize];

        // Hit?
        for line in set_entries.iter_mut().flatten() {
            if line.tag == tag {
                line.lru = self.tick;
                line.dirty |= op.is_write();
                self.hits += 1;
                return CacheOutcome::Hit;
            }
        }
        self.misses += 1;
        // Choose a victim: an invalid way, else the LRU line.
        let victim = set_entries
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                set_entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.map(|l| l.lru).unwrap_or(0))
                    .map(|(i, _)| i)
                    .expect("set has ways")
            });
        let writeback = set_entries[victim].and_then(|line| {
            line.dirty.then(|| {
                let victim_line = line.tag * u64::from(self.sets) + u64::from(set);
                PhysAddr::new(victim_line * u64::from(self.line_bytes))
            })
        });
        set_entries[victim] = Some(Line {
            tag,
            dirty: op.is_write(),
            lru: self.tick,
        });
        CacheOutcome::Miss { writeback }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio in `[0, 1]`; zero before any access.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LastLevelCache {
        // 4 sets × 2 ways × 64 B = 512 B.
        LastLevelCache::new(512, 2, 64).unwrap()
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(matches!(
            c.access(PhysAddr::new(0), Op::Read),
            CacheOutcome::Miss { .. }
        ));
        assert_eq!(c.access(PhysAddr::new(0), Op::Read), CacheOutcome::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets × line = 256 B).
        c.access(PhysAddr::new(0), Op::Read);
        c.access(PhysAddr::new(256), Op::Read);
        c.access(PhysAddr::new(0), Op::Read); // refresh line 0
        c.access(PhysAddr::new(512), Op::Read); // evicts line 256
        assert_eq!(c.access(PhysAddr::new(0), Op::Read), CacheOutcome::Hit);
        assert!(matches!(
            c.access(PhysAddr::new(256), Op::Read),
            CacheOutcome::Miss { .. }
        ));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = tiny();
        c.access(PhysAddr::new(0), Op::Write);
        c.access(PhysAddr::new(256), Op::Read);
        // Evict the dirty line 0.
        let outcome = c.access(PhysAddr::new(512), Op::Read);
        let CacheOutcome::Miss { writeback } = outcome else {
            panic!("expected miss");
        };
        // One of the two victims is LRU line 0 (dirty).
        assert_eq!(writeback, Some(PhysAddr::new(0)));
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = tiny();
        c.access(PhysAddr::new(0), Op::Read);
        c.access(PhysAddr::new(256), Op::Read);
        let outcome = c.access(PhysAddr::new(512), Op::Read);
        assert_eq!(outcome, CacheOutcome::Miss { writeback: None });
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(PhysAddr::new(0), Op::Read);
        c.access(PhysAddr::new(0), Op::Write); // hit, now dirty
        c.access(PhysAddr::new(256), Op::Read);
        let outcome = c.access(PhysAddr::new(512), Op::Read);
        assert!(matches!(outcome, CacheOutcome::Miss { writeback: Some(_) }));
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        c.access(PhysAddr::new(0), Op::Read);
        c.access(PhysAddr::new(0), Op::Read);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(LastLevelCache::new(512, 3, 64).is_err());
        assert!(LastLevelCache::new(512, 2, 48).is_err());
        assert!(LastLevelCache::new(100, 2, 64).is_err());
    }

    #[test]
    fn preset_is_reasonable() {
        let c = LastLevelCache::nehalem_like();
        assert_eq!(c.miss_ratio(), 0.0);
    }
}
