//! Results of a core run.

use serde::{Deserialize, Serialize};

/// Outcome of running one trace on one memory configuration.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreResult {
    /// Instructions retired.
    pub instructions: u64,
    /// CPU cycles elapsed.
    pub cpu_cycles: u64,
    /// Memory-controller cycles consumed (including the final drain).
    pub mem_cycles: u64,
    /// CPU cycles in which not a single instruction issued (full stalls —
    /// ROB window full, MSHRs exhausted, or queue backpressure).
    pub stall_cycles: u64,
}

impl CoreResult {
    /// Instructions per CPU cycle.
    pub fn ipc(&self) -> f64 {
        if self.cpu_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cpu_cycles as f64
        }
    }

    /// Fraction of CPU cycles fully stalled, in `[0, 1]`.
    pub fn stall_fraction(&self) -> f64 {
        if self.cpu_cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.cpu_cycles as f64
        }
    }

    /// Speedup of this run over `baseline` (ratio of IPCs).
    ///
    /// # Panics
    ///
    /// Panics if the baseline IPC is zero.
    pub fn speedup_over(&self, baseline: &CoreResult) -> f64 {
        let base = baseline.ipc();
        assert!(base > 0.0, "baseline ipc must be positive");
        self.ipc() / base
    }

    /// Exports the run's counters into `reg` as `<prefix>.<field>`, plus
    /// the derived `ipc` and `stall_fraction` gauges.
    pub fn export_metrics(&self, reg: &mut fgnvm_obs::Registry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.instructions"), self.instructions);
        reg.set_counter(&format!("{prefix}.cpu_cycles"), self.cpu_cycles);
        reg.set_counter(&format!("{prefix}.mem_cycles"), self.mem_cycles);
        reg.set_counter(&format!("{prefix}.stall_cycles"), self.stall_cycles);
        reg.set_gauge(&format!("{prefix}.ipc"), self.ipc());
        reg.set_gauge(&format!("{prefix}.stall_fraction"), self.stall_fraction());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_speedup() {
        let base = CoreResult {
            instructions: 1000,
            cpu_cycles: 1000,
            mem_cycles: 125,
            stall_cycles: 600,
        };
        let fast = CoreResult {
            instructions: 1000,
            cpu_cycles: 500,
            mem_cycles: 63,
            stall_cycles: 100,
        };
        assert!((base.stall_fraction() - 0.6).abs() < 1e-12);
        assert!((base.ipc() - 1.0).abs() < 1e-12);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_gives_zero_ipc() {
        assert_eq!(CoreResult::default().ipc(), 0.0);
    }
}
