//! A windowed, trace-driven out-of-order core model.
//!
//! This is the gem5 substitute of the reproduction. For the paper's
//! workloads (SPEC2006 slices with ≥ 10 LLC misses per kilo-instruction)
//! relative IPC is dominated by memory stalls, which a windowed model
//! captures:
//!
//! * the core retires up to `width` instructions per CPU cycle;
//! * demand reads go to memory and may overlap (memory-level parallelism)
//!   up to the MSHR count, with same-line misses merged;
//! * execution may run ahead of the *oldest* outstanding load by at most
//!   `rob_entries` instructions — beyond that the window is full and the
//!   core stalls, exactly the behaviour that bank conflicts and slow PCM
//!   writes amplify;
//! * writes are posted; they stall the core only through write-queue
//!   backpressure.
//!
//! The memory system ticks once every `cpu_mem_ratio` CPU cycles
//! (3.2 GHz core vs 400 MHz memory controller by default).

use std::collections::{HashMap, HashSet, VecDeque};

use fgnvm_mem::MemoryBackend;
use fgnvm_types::error::ConfigError;
use fgnvm_types::request::{Op, RequestId};

use crate::metrics::CoreResult;
use crate::trace::Trace;

/// Core parameters (defaults model the paper's Nehalem-like setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions retired per CPU cycle when nothing stalls.
    pub width: u32,
    /// Reorder-buffer entries: how far execution may run ahead of the
    /// oldest outstanding load.
    pub rob_entries: u32,
    /// Maximum distinct outstanding cache-line reads (MSHRs).
    pub mshrs: u32,
    /// CPU cycles per memory-controller cycle.
    pub cpu_mem_ratio: u32,
    /// Next-line prefetch degree (0 disables the prefetcher). On every
    /// demand miss the prefetcher requests the next `prefetch_degree`
    /// lines; completed prefetches fill a small buffer that later demand
    /// reads hit for free. Models the L2 stream prefetcher of the paper's
    /// Nehalem-like gem5 configuration.
    pub prefetch_degree: u32,
}

impl CoreConfig {
    /// The paper's CPU: a 4-wide Nehalem-like core with the CRIB-style
    /// consolidated window of its reference \[16\] (large effective
    /// instruction window), an LLC with 32 outstanding misses, a stream
    /// prefetcher, and a 3.2 GHz clock over the 400 MHz controller.
    pub fn nehalem_like() -> Self {
        CoreConfig {
            width: 4,
            rob_entries: 256,
            mshrs: 32,
            cpu_mem_ratio: 8,
            prefetch_degree: 8,
        }
    }

    /// Same core without the stream prefetcher.
    pub fn no_prefetch() -> Self {
        CoreConfig {
            prefetch_degree: 0,
            ..CoreConfig::nehalem_like()
        }
    }

    /// A simple in-order core: dual-issue, blocking loads (no run-ahead
    /// past an outstanding miss), no prefetcher. Useful as the conservative
    /// end of the front-end spectrum when studying memory sensitivity.
    pub fn in_order() -> Self {
        CoreConfig {
            width: 2,
            rob_entries: 1,
            mshrs: 1,
            cpu_mem_ratio: 8,
            prefetch_degree: 0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        // prefetch_degree may legitimately be zero (prefetcher off).
        for (field, v) in [
            ("width", self.width),
            ("rob_entries", self.rob_entries),
            ("mshrs", self.mshrs),
            ("cpu_mem_ratio", self.cpu_mem_ratio),
        ] {
            if v == 0 {
                return Err(ConfigError::OutOfRange {
                    field,
                    expected: "at least 1",
                });
            }
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::nehalem_like()
    }
}

/// Trace-driven core simulator.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use fgnvm_cpu::{Core, CoreConfig, Trace, TraceRecord};
/// use fgnvm_mem::MemorySystem;
/// use fgnvm_types::config::SystemConfig;
/// use fgnvm_types::PhysAddr;
///
/// let trace = Trace::new(
///     "two-rows",
///     vec![
///         TraceRecord::read(100, PhysAddr::new(0)),
///         TraceRecord::read(100, PhysAddr::new(1 << 20)),
///     ],
/// );
/// let core = Core::new(CoreConfig::nehalem_like())?;
/// let mut memory = MemorySystem::new(SystemConfig::fgnvm(8, 2)?)?;
/// let result = core.run(&trace, &mut memory);
/// assert_eq!(result.instructions, trace.instruction_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Core {
    config: CoreConfig,
}

impl Core {
    /// Creates a core with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(config: CoreConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Core { config })
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Runs `trace` to completion against any [`MemoryBackend`] (the flat
    /// `MemorySystem` or a DRAM-buffered hybrid), returning IPC and
    /// related metrics. The memory is driven in lock-step and left fully
    /// drained afterwards (so its energy totals cover the run).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds an internal safety bound (which
    /// would indicate a deadlock in the memory system).
    pub fn run<M: MemoryBackend>(&self, trace: &Trace, memory: &mut M) -> CoreResult {
        let mut engine = CoreEngine::new(self.config, trace);
        let start_mem_cycle = memory.now();
        let mut cpu_cycle: u64 = 0;
        let mut completions = Vec::new();
        // Safety bound: a trace instruction should never take more than
        // ~10^5 CPU cycles even under pathological conflicts.
        let cycle_limit = 200_000 + trace.instruction_count() * 100_000;
        let ratio = u64::from(self.config.cpu_mem_ratio);
        while !engine.is_done() {
            assert!(cpu_cycle < cycle_limit, "core deadlocked against memory");
            // Memory ticks once per `cpu_mem_ratio` CPU cycles.
            if cpu_cycle.is_multiple_of(ratio) {
                completions.clear();
                memory.tick_into(&mut completions);
                engine.absorb_completions(&completions);
                engine.issue_prefetches(memory);
            }
            let outcome = engine.step(memory);
            cpu_cycle += 1;
            // Event-driven leap: a pure stall repeats verbatim (memory is
            // only ticked at boundaries, and a no-progress step leaves the
            // engine untouched), so both clocks can jump to the boundary
            // that pre-dates the memory's next event. `prefetch_idle`
            // guarantees the skipped boundaries' prefetch pass was a no-op.
            if outcome.pure_stall() && !engine.is_done() && engine.prefetch_idle() {
                if let Some(event) = memory.next_event_at() {
                    let event_boundary = (event - start_mem_cycle).raw().saturating_mul(ratio);
                    // Never leap past the deadlock bound: a stepped run
                    // would panic there, and so must we.
                    let target = event_boundary.min(cycle_limit);
                    if target > cpu_cycle {
                        engine.note_stalled(target - cpu_cycle);
                        cpu_cycle = target;
                        if target == event_boundary {
                            completions.clear();
                            memory.tick_to(event, &mut completions);
                            debug_assert!(
                                completions.is_empty(),
                                "fast-forward leap skipped a completion"
                            );
                        }
                    }
                }
            }
        }
        // Drain remaining write traffic so energy covers the whole run.
        memory.run_until_idle(10_000_000);
        engine.result(cpu_cycle, (memory.now() - start_mem_cycle).raw())
    }
}

/// Prefetcher sizing shared by all engines.
const PREFETCH_INFLIGHT_MAX: usize = 32;
const PREFETCH_BUFFER_LINES: usize = 128;
const STREAM_TABLE: usize = 16;

/// What one [`CoreEngine::step`] call did, used by the drivers to decide
/// whether the machine is provably frozen until the memory's next event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StepOutcome {
    /// At least one instruction was issued (any state advanced).
    pub issued_any: bool,
    /// The step called into the memory backend (even a rejected enqueue
    /// mutates backend statistics, so such a stall cannot be skipped).
    pub touched_memory: bool,
}

impl StepOutcome {
    /// True when the step changed nothing but the stall counter: the same
    /// step will repeat verbatim until the memory system's state moves.
    pub fn pure_stall(self) -> bool {
        !self.issued_any && !self.touched_memory
    }
}

/// The per-cycle state machine of one windowed core: dispatch/issue
/// bookkeeping, MSHR merging, dependence stalls, and the stream
/// prefetcher. [`Core::run`] drives one engine; [`MultiCore`] drives
/// several against a shared memory.
///
/// [`MultiCore`]: crate::multicore::MultiCore
#[derive(Debug)]
pub(crate) struct CoreEngine<'t> {
    cfg: CoreConfig,
    records: &'t [crate::trace::TraceRecord],
    record_index: usize,
    gap_left: u32,
    issued_instructions: u64,
    load_positions: HashMap<RequestId, u64>,
    line_waiters: HashMap<u64, RequestId>,
    oldest_load: Option<u64>,
    stall_cycles: u64,
    prefetch_inflight: HashMap<RequestId, u64>,
    prefetch_buffer: HashSet<u64>,
    prefetch_fifo: VecDeque<u64>,
    prefetch_queue: VecDeque<u64>,
    streams: VecDeque<(u64, u64, i32)>,
}

impl<'t> CoreEngine<'t> {
    pub(crate) fn new(cfg: CoreConfig, trace: &'t Trace) -> Self {
        let records = trace.records();
        CoreEngine {
            cfg,
            records,
            record_index: 0,
            gap_left: records.first().map_or(0, |r| r.gap),
            issued_instructions: 0,
            load_positions: HashMap::new(),
            line_waiters: HashMap::new(),
            oldest_load: None,
            stall_cycles: 0,
            prefetch_inflight: HashMap::new(),
            prefetch_buffer: HashSet::new(),
            prefetch_fifo: VecDeque::new(),
            prefetch_queue: VecDeque::new(),
            streams: VecDeque::new(),
        }
    }

    /// True once the trace is fully issued and no loads are outstanding.
    pub(crate) fn is_done(&self) -> bool {
        self.record_index >= self.records.len() && self.load_positions.is_empty()
    }

    /// Notes completed memory requests (other cores' ids are ignored).
    pub(crate) fn absorb_completions(&mut self, completions: &[fgnvm_types::Completion]) {
        for c in completions {
            if c.op.is_read() {
                if self.load_positions.remove(&c.id).is_some() {
                    self.line_waiters.retain(|_, id| *id != c.id);
                    self.oldest_load = self.load_positions.values().copied().min();
                } else if let Some(line) = self.prefetch_inflight.remove(&c.id) {
                    self.line_waiters.retain(|_, id| *id != c.id);
                    if self.prefetch_buffer.insert(line) {
                        self.prefetch_fifo.push_back(line);
                        if self.prefetch_fifo.len() > PREFETCH_BUFFER_LINES {
                            if let Some(evicted) = self.prefetch_fifo.pop_front() {
                                self.prefetch_buffer.remove(&evicted);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Issues queued prefetches with whatever bandwidth is left.
    pub(crate) fn issue_prefetches<M: MemoryBackend>(&mut self, memory: &mut M) {
        while self.prefetch_inflight.len() < PREFETCH_INFLIGHT_MAX {
            let Some(line) = self.prefetch_queue.pop_front() else {
                break;
            };
            if self.prefetch_buffer.contains(&line) || self.line_waiters.contains_key(&line) {
                continue;
            }
            let addr = fgnvm_types::PhysAddr::new(line << 6);
            match memory.enqueue_prefetch(addr) {
                Some(id) => {
                    self.prefetch_inflight.insert(id, line);
                    self.line_waiters.insert(line, id);
                }
                None => {
                    // Throttled or queue full: drop (best effort).
                    break;
                }
            }
        }
    }

    /// True when the prefetcher cannot interact with memory right now
    /// (nothing queued, or the in-flight window is full): calling
    /// [`issue_prefetches`](Self::issue_prefetches) would be a no-op.
    pub(crate) fn prefetch_idle(&self) -> bool {
        self.prefetch_queue.is_empty() || self.prefetch_inflight.len() >= PREFETCH_INFLIGHT_MAX
    }

    /// Accounts `n` skipped pure-stall cycles exactly as `n` individual
    /// [`step`](Self::step) calls would have.
    pub(crate) fn note_stalled(&mut self, n: u64) {
        if self.record_index < self.records.len() {
            self.stall_cycles += n;
        }
    }

    /// Executes one CPU cycle: dispatches up to `width` instructions.
    pub(crate) fn step<M: MemoryBackend>(&mut self, memory: &mut M) -> StepOutcome {
        let cfg = self.cfg;
        let issued_before = self.issued_instructions;
        let mut touched_memory = false;
        let mut slots = cfg.width;
        while slots > 0 && self.record_index < self.records.len() {
            // ROB window check against the oldest outstanding load.
            if let Some(oldest) = self.oldest_load {
                if self.issued_instructions - oldest >= u64::from(cfg.rob_entries) {
                    break; // window full: stall
                }
            }
            if self.gap_left > 0 {
                self.gap_left -= 1;
                self.issued_instructions += 1;
                slots -= 1;
                continue;
            }
            // The memory operation of the current record.
            let record = self.records[self.record_index];
            match record.op {
                Op::Read => {
                    // Pointer-chase dependence: wait for all loads.
                    if record.dependent && !self.load_positions.is_empty() {
                        break;
                    }
                    let line = record.addr.raw() >> 6;
                    if self.prefetch_buffer.contains(&line) {
                        // Prefetch hit: the line is already on chip.
                        self.issued_instructions += 1;
                        slots -= 1;
                    } else if let std::collections::hash_map::Entry::Vacant(e) =
                        self.line_waiters.entry(line)
                    {
                        if self.load_positions.len() >= cfg.mshrs as usize {
                            break; // no MSHR: stall
                        }
                        touched_memory = true;
                        match memory.enqueue(Op::Read, record.addr) {
                            Some(id) => {
                                self.load_positions.insert(id, self.issued_instructions);
                                e.insert(id);
                                if self.oldest_load.is_none() {
                                    self.oldest_load = Some(self.issued_instructions);
                                }
                                // Train the stream prefetcher.
                                if cfg.prefetch_degree > 0 {
                                    let page = line >> 6; // 64 lines = 4 KB
                                    let entry =
                                        self.streams.iter_mut().find(|(p, _, _)| *p == page);
                                    match entry {
                                        Some((_, last, conf)) => {
                                            if line == *last + 1 {
                                                *conf = (*conf + 1).min(4);
                                            } else {
                                                *conf -= 1;
                                            }
                                            *last = line;
                                            if *conf >= 2 {
                                                for d in 1..=u64::from(cfg.prefetch_degree) {
                                                    self.prefetch_queue.push_back(line + d);
                                                }
                                            }
                                        }
                                        None => {
                                            self.streams.push_back((page, line, 0));
                                            if self.streams.len() > STREAM_TABLE {
                                                self.streams.pop_front();
                                            }
                                        }
                                    }
                                    if self.prefetch_queue.len() > 4 * PREFETCH_INFLIGHT_MAX {
                                        self.prefetch_queue.drain(..PREFETCH_INFLIGHT_MAX);
                                    }
                                }
                                self.issued_instructions += 1;
                                slots -= 1;
                            }
                            None => break, // queue full: stall
                        }
                    } else {
                        // MSHR merge: piggyback on the in-flight miss
                        // (demand or prefetch).
                        self.issued_instructions += 1;
                        slots -= 1;
                    }
                }
                Op::Write => {
                    touched_memory = true;
                    match memory.enqueue(Op::Write, record.addr) {
                        Some(_) => {
                            self.issued_instructions += 1;
                            slots -= 1;
                        }
                        None => break, // write queue full: stall
                    }
                }
            }
            self.record_index += 1;
            self.gap_left = self.records.get(self.record_index).map_or(0, |r| r.gap);
        }
        if slots == cfg.width && self.record_index < self.records.len() {
            self.stall_cycles += 1;
        }
        StepOutcome {
            issued_any: self.issued_instructions > issued_before,
            touched_memory,
        }
    }

    /// Packages the result after the driver finishes.
    pub(crate) fn result(&self, cpu_cycles: u64, mem_cycles: u64) -> CoreResult {
        CoreResult {
            instructions: self.issued_instructions,
            cpu_cycles: cpu_cycles.max(1),
            mem_cycles,
            stall_cycles: self.stall_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;
    use fgnvm_mem::MemorySystem;
    use fgnvm_types::address::PhysAddr;
    use fgnvm_types::config::SystemConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(SystemConfig::baseline()).unwrap()
    }

    fn read_at(gap: u32, addr: u64) -> TraceRecord {
        TraceRecord::read(gap, PhysAddr::new(addr))
    }

    #[test]
    fn compute_bound_trace_hits_full_width() {
        // Huge gaps: IPC should approach the core width.
        let trace = Trace::new("compute", vec![read_at(100_000, 0)]);
        let core = Core::new(CoreConfig::nehalem_like()).unwrap();
        let result = core.run(&trace, &mut mem());
        assert!(result.ipc() > 3.5, "ipc {} should be near 4", result.ipc());
    }

    #[test]
    fn stall_accounting_tracks_memory_boundedness() {
        let compute = Trace::new("compute", vec![read_at(100_000, 0)]);
        let mem_bound: Vec<TraceRecord> = (0..50u64)
            .map(|i| TraceRecord::dependent_read(0, PhysAddr::new(i * 32 * 1024 * 1024)))
            .collect();
        let mem_bound = Trace::new("membound", mem_bound);
        let core = Core::new(CoreConfig::no_prefetch()).unwrap();
        let light = core.run(&compute, &mut mem());
        let heavy = core.run(&mem_bound, &mut mem());
        assert!(
            light.stall_fraction() < 0.05,
            "compute stalls {}",
            light.stall_fraction()
        );
        assert!(
            heavy.stall_fraction() > 0.8,
            "membound stalls {}",
            heavy.stall_fraction()
        );
    }

    #[test]
    fn memory_bound_trace_is_slow() {
        // Dependent-miss behaviour: serial row misses dominate.
        let records: Vec<TraceRecord> = (0..50u64)
            .map(|i| read_at(0, i * 32 * 1024 * 1024))
            .collect();
        let trace = Trace::new("membound", records);
        let core = Core::new(CoreConfig {
            mshrs: 1,
            ..CoreConfig::nehalem_like()
        })
        .unwrap();
        let result = core.run(&trace, &mut mem());
        assert!(result.ipc() < 0.1, "ipc {} should be tiny", result.ipc());
    }

    #[test]
    fn mlp_improves_ipc() {
        // Same misses, but 16 MSHRs overlap them across banks.
        let records: Vec<TraceRecord> = (0..64u64).map(|i| read_at(8, i * 1024)).collect();
        let trace = Trace::new("mlp", records);
        let narrow = Core::new(CoreConfig {
            mshrs: 1,
            ..CoreConfig::nehalem_like()
        })
        .unwrap();
        let wide = Core::new(CoreConfig {
            mshrs: 16,
            ..CoreConfig::nehalem_like()
        })
        .unwrap();
        let slow = narrow.run(&trace, &mut mem());
        let fast = wide.run(&trace, &mut mem());
        assert!(
            fast.ipc() > slow.ipc() * 1.5,
            "mlp ipc {} vs serial {}",
            fast.ipc(),
            slow.ipc()
        );
    }

    #[test]
    fn same_line_misses_merge() {
        let records: Vec<TraceRecord> = (0..8).map(|_| read_at(0, 0x40)).collect();
        let trace = Trace::new("merge", records);
        let core = Core::new(CoreConfig::no_prefetch()).unwrap();
        let mut memory = mem();
        core.run(&trace, &mut memory);
        // Only one actual memory read was issued.
        assert_eq!(memory.stats().enqueued_reads, 1);
    }

    #[test]
    fn dependent_reads_serialize() {
        let records: Vec<TraceRecord> = (0..32u64)
            .map(|i| TraceRecord::dependent_read(0, PhysAddr::new(i * 1024)))
            .collect();
        let independent: Vec<TraceRecord> = (0..32u64).map(|i| read_at(0, i * 1024)).collect();
        let core = Core::new(CoreConfig::nehalem_like()).unwrap();
        let chained = core.run(&Trace::new("chase", records), &mut mem());
        let parallel = core.run(&Trace::new("par", independent), &mut mem());
        assert!(
            chained.cpu_cycles > parallel.cpu_cycles * 2,
            "dependence should serialize: {} vs {}",
            chained.cpu_cycles,
            parallel.cpu_cycles
        );
    }

    #[test]
    fn writes_are_posted() {
        let records: Vec<TraceRecord> = (0..8u64)
            .map(|i| TraceRecord::write(0, PhysAddr::new(i * 4096)))
            .collect();
        let trace = Trace::new("writes", records);
        let core = Core::new(CoreConfig::nehalem_like()).unwrap();
        let result = core.run(&trace, &mut mem());
        // Posted writes retire at core speed: 8 writes in a handful of
        // cycles, not 8 × tWP.
        assert!(
            result.cpu_cycles < 100,
            "writes stalled: {} cycles",
            result.cpu_cycles
        );
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = Trace::new("empty", vec![]);
        let core = Core::new(CoreConfig::nehalem_like()).unwrap();
        let result = core.run(&trace, &mut mem());
        assert_eq!(result.instructions, 0);
        assert_eq!(result.ipc(), 0.0);
    }

    #[test]
    fn in_order_core_is_slower_than_ooo() {
        let records: Vec<TraceRecord> = (0..32u64).map(|i| read_at(10, i * 1024)).collect();
        let trace = Trace::new("cmp", records);
        let ooo = Core::new(CoreConfig::nehalem_like()).unwrap();
        let ino = Core::new(CoreConfig::in_order()).unwrap();
        let fast = ooo.run(&trace, &mut mem());
        let slow = ino.run(&trace, &mut mem());
        assert!(
            fast.ipc() > slow.ipc() * 2.0,
            "ooo {} should dwarf in-order {}",
            fast.ipc(),
            slow.ipc()
        );
    }

    #[test]
    fn zero_config_rejected() {
        let bad = CoreConfig {
            width: 0,
            ..CoreConfig::nehalem_like()
        };
        assert!(Core::new(bad).is_err());
    }
}
