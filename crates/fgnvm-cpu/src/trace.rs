//! Memory-access traces.
//!
//! A trace is the stream of last-level-cache misses of a program slice (the
//! role Simpoint slices of SPEC2006 play in the paper): each record is a
//! count of non-memory instructions followed by one memory operation.
//! Traces can be held in memory or serialized to a compact binary format.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use fgnvm_types::address::PhysAddr;
use fgnvm_types::request::Op;

/// One trace record: `gap` non-memory instructions, then one memory op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Non-memory instructions executed before this access.
    pub gap: u32,
    /// The access type.
    pub op: Op,
    /// Line-aligned physical address.
    pub addr: PhysAddr,
    /// True if this access depends on the previous load's data (pointer
    /// chasing): it may not issue while any load is outstanding. Lets
    /// traces control memory-level parallelism the way dependence chains
    /// do on a real core.
    pub dependent: bool,
}

impl TraceRecord {
    /// An independent read after `gap` instructions.
    pub fn read(gap: u32, addr: PhysAddr) -> Self {
        TraceRecord {
            gap,
            op: Op::Read,
            addr,
            dependent: false,
        }
    }

    /// A posted write after `gap` instructions.
    pub fn write(gap: u32, addr: PhysAddr) -> Self {
        TraceRecord {
            gap,
            op: Op::Write,
            addr,
            dependent: false,
        }
    }

    /// A dependent (pointer-chase) read after `gap` instructions.
    pub fn dependent_read(gap: u32, addr: PhysAddr) -> Self {
        TraceRecord {
            gap,
            op: Op::Read,
            addr,
            dependent: true,
        }
    }
}

/// An ordered memory-access trace with a human-readable name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    records: Vec<TraceRecord>,
}

/// Error decoding a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// The magic header did not match.
    BadMagic,
    /// The buffer ended before the declared record count.
    Truncated,
    /// An op byte was neither read nor write.
    BadOp(u8),
    /// The name was not valid UTF-8.
    BadName,
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::BadMagic => f.write_str("not a trace: bad magic"),
            DecodeTraceError::Truncated => f.write_str("trace truncated"),
            DecodeTraceError::BadOp(b) => write!(f, "invalid op byte {b:#x}"),
            DecodeTraceError::BadName => f.write_str("trace name is not utf-8"),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

const MAGIC: &[u8; 8] = b"FGNVMTR1";

impl Trace {
    /// Creates a trace from records.
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        Trace {
            name: name.into(),
            records,
        }
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The records in program order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of memory operations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total instructions represented (gaps + one per memory op).
    pub fn instruction_count(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.gap) + 1).sum()
    }

    /// Fraction of memory operations that are writes.
    pub fn write_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let writes = self.records.iter().filter(|r| r.op.is_write()).count();
        writes as f64 / self.records.len() as f64
    }

    /// Misses per kilo-instruction, the paper's workload-selection metric.
    pub fn mpki(&self) -> f64 {
        let instructions = self.instruction_count();
        if instructions == 0 {
            return 0.0;
        }
        self.records.len() as f64 * 1000.0 / instructions as f64
    }

    /// Serializes to the compact binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(24 + self.name.len() + self.records.len() * 13);
        buf.put_slice(MAGIC);
        buf.put_u32_le(self.name.len() as u32);
        buf.put_slice(self.name.as_bytes());
        buf.put_u64_le(self.records.len() as u64);
        for r in &self.records {
            buf.put_u32_le(r.gap);
            let op_byte = match (r.op, r.dependent) {
                (Op::Read, false) => 0,
                (Op::Write, _) => 1,
                (Op::Read, true) => 2,
            };
            buf.put_u8(op_byte);
            buf.put_u64_le(r.addr.raw());
        }
        buf.freeze()
    }

    /// Decodes a trace previously produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeTraceError`] on malformed input.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, DecodeTraceError> {
        if data.remaining() < MAGIC.len() + 4 {
            return Err(DecodeTraceError::Truncated);
        }
        let mut magic = [0u8; 8];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeTraceError::BadMagic);
        }
        let name_len = data.get_u32_le() as usize;
        if data.remaining() < name_len + 8 {
            return Err(DecodeTraceError::Truncated);
        }
        let name_bytes = data.copy_to_bytes(name_len);
        let name = String::from_utf8(name_bytes.to_vec()).map_err(|_| DecodeTraceError::BadName)?;
        let count = data.get_u64_le() as usize;
        if data.remaining() < count * 13 {
            return Err(DecodeTraceError::Truncated);
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let gap = data.get_u32_le();
            let (op, dependent) = match data.get_u8() {
                0 => (Op::Read, false),
                1 => (Op::Write, false),
                2 => (Op::Read, true),
                b => return Err(DecodeTraceError::BadOp(b)),
            };
            let addr = PhysAddr::new(data.get_u64_le());
            records.push(TraceRecord {
                gap,
                op,
                addr,
                dependent,
            });
        }
        Ok(Trace { name, records })
    }
}

impl Trace {
    /// Writes the trace to `path` in the binary format.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a trace previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns an I/O error for filesystem problems, or
    /// [`std::io::ErrorKind::InvalidData`] wrapping a
    /// [`DecodeTraceError`] for malformed contents.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Trace::from_bytes(Bytes::from(data))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Trace::new("anonymous", iter.into_iter().collect())
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "sample",
            vec![
                TraceRecord::read(99, PhysAddr::new(0x40)),
                TraceRecord::write(50, PhysAddr::new(0x80)),
                TraceRecord::dependent_read(0, PhysAddr::new(0xc0)),
            ],
        )
    }

    #[test]
    fn metrics() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.instruction_count(), (99 + 50) + 3);
        assert!((t.write_fraction() - 1.0 / 3.0).abs() < 1e-12);
        // 3 misses over 152 instructions ≈ 19.7 MPKI.
        assert!((t.mpki() - 3000.0 / 152.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let decoded = Trace::from_bytes(t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = sample().to_bytes().to_vec();
        data[0] = b'X';
        assert_eq!(
            Trace::from_bytes(Bytes::from(data)),
            Err(DecodeTraceError::BadMagic)
        );
    }

    #[test]
    fn truncation_rejected() {
        let data = sample().to_bytes();
        let cut = data.slice(0..data.len() - 5);
        assert_eq!(Trace::from_bytes(cut), Err(DecodeTraceError::Truncated));
    }

    #[test]
    fn bad_op_rejected() {
        let mut data = sample().to_bytes().to_vec();
        // First record's op byte sits after magic(8)+len(4)+name(6)+count(8)+gap(4).
        let op_at = 8 + 4 + 6 + 8 + 4;
        data[op_at] = 7;
        assert_eq!(
            Trace::from_bytes(Bytes::from(data)),
            Err(DecodeTraceError::BadOp(7))
        );
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::new("empty", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.mpki(), 0.0);
        assert_eq!(t.write_fraction(), 0.0);
        let rt = Trace::from_bytes(t.to_bytes()).unwrap();
        assert_eq!(rt, t);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("fgnvm_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.trace");
        let t = sample();
        t.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(loaded, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage_file() {
        let dir = std::env::temp_dir().join("fgnvm_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.trace");
        std::fs::write(&path, b"not a trace at all").unwrap();
        let err = Trace::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = sample().records().iter().copied().collect();
        assert_eq!(t.len(), 3);
        t.extend(sample().records().iter().copied());
        assert_eq!(t.len(), 6);
    }
}
