//! Multi-core simulation: several windowed cores, each replaying its own
//! trace, sharing one memory system.
//!
//! Unlike interleaving traces onto one core (see
//! `fgnvm_workloads::mix::interleave`), each core here has its *own*
//! reorder window, MSHRs, and prefetcher — contention happens where it
//! physically does, in the shared memory controller and banks. Standard
//! multiprogramming metrics ([`weighted_speedup`], [`fairness`]) compare
//! the shared run against solo baselines.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fgnvm_cpu::{CoreConfig, MultiCore, Trace, TraceRecord};
//! use fgnvm_mem::MemorySystem;
//! use fgnvm_types::config::SystemConfig;
//! use fgnvm_types::PhysAddr;
//!
//! // Two cores, each with its own miss stream.
//! let traces: Vec<Trace> = (0..2u64)
//!     .map(|core| {
//!         Trace::new(
//!             format!("core{core}"),
//!             (0..200u64)
//!                 .map(|i| TraceRecord::read(30, PhysAddr::new((core * 977 + i) * 8192)))
//!                 .collect(),
//!         )
//!     })
//!     .collect();
//! let mut memory = MemorySystem::new(SystemConfig::fgnvm(8, 8)?)?;
//! let multi = MultiCore::new(CoreConfig::nehalem_like(), 2)?;
//! let results = multi.run(&traces, &mut memory);
//! assert_eq!(results.per_core.len(), 2);
//! assert!(results.throughput() > 0.0);
//! # Ok(())
//! # }
//! ```

use fgnvm_mem::MemoryBackend;
use fgnvm_types::error::ConfigError;

use crate::core::{CoreConfig, CoreEngine};
use crate::metrics::CoreResult;
use crate::trace::Trace;

/// Outcome of a multi-core run.
#[derive(Debug, Clone)]
pub struct MultiCoreResult {
    /// Per-core results; `cpu_cycles` is each core's own finish time on
    /// the shared clock.
    pub per_core: Vec<CoreResult>,
    /// Cycles until the *last* core finished.
    pub total_cycles: u64,
}

impl MultiCoreResult {
    /// Sum of per-core IPCs (system throughput).
    pub fn throughput(&self) -> f64 {
        self.per_core.iter().map(CoreResult::ipc).sum()
    }
}

/// Weighted speedup: `Σ shared_ipc[i] / solo_ipc[i]` (Snavely & Tullsen).
/// Equals the core count when sharing costs nothing.
///
/// # Panics
///
/// Panics if the slices differ in length or a solo IPC is zero.
pub fn weighted_speedup(shared: &[CoreResult], solo: &[CoreResult]) -> f64 {
    assert_eq!(shared.len(), solo.len(), "core count mismatch");
    shared
        .iter()
        .zip(solo)
        .map(|(s, alone)| {
            let base = alone.ipc();
            assert!(base > 0.0, "solo ipc must be positive");
            s.ipc() / base
        })
        .sum()
}

/// Fairness: `min(slowdown) / max(slowdown)` over cores, in `(0, 1]`
/// (1 = every core suffers equally from sharing).
///
/// # Panics
///
/// Panics if the slices differ in length or an IPC is zero.
pub fn fairness(shared: &[CoreResult], solo: &[CoreResult]) -> f64 {
    assert_eq!(shared.len(), solo.len(), "core count mismatch");
    let slowdowns: Vec<f64> = shared
        .iter()
        .zip(solo)
        .map(|(s, alone)| {
            assert!(s.ipc() > 0.0 && alone.ipc() > 0.0, "ipcs must be positive");
            alone.ipc() / s.ipc()
        })
        .collect();
    let max = slowdowns.iter().cloned().fold(f64::MIN, f64::max);
    let min = slowdowns.iter().cloned().fold(f64::MAX, f64::min);
    min / max
}

/// Driver for `cores` identical windowed cores over one memory system.
#[derive(Debug, Clone)]
pub struct MultiCore {
    config: CoreConfig,
    cores: usize,
}

impl MultiCore {
    /// Creates a driver for `cores` cores with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid or `cores`
    /// is zero.
    pub fn new(config: CoreConfig, cores: usize) -> Result<Self, ConfigError> {
        config.validate()?;
        if cores == 0 {
            return Err(ConfigError::OutOfRange {
                field: "cores",
                expected: "at least 1",
            });
        }
        Ok(MultiCore { config, cores })
    }

    /// Runs one trace per core to completion on the shared `memory`.
    /// Cores beyond `traces.len()` idle; traces beyond the core count are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds an internal safety bound.
    pub fn run<M: MemoryBackend>(&self, traces: &[Trace], memory: &mut M) -> MultiCoreResult {
        let active = self.cores.min(traces.len());
        let mut engines: Vec<CoreEngine<'_>> = traces[..active]
            .iter()
            .map(|t| CoreEngine::new(self.config, t))
            .collect();
        let mut finish_cycle: Vec<Option<u64>> = vec![None; active];
        let start_mem_cycle = memory.now();
        let mut completions = Vec::new();
        let mut cpu_cycle: u64 = 0;
        let total_instructions: u64 = traces[..active].iter().map(Trace::instruction_count).sum();
        let cycle_limit = 400_000 + total_instructions * 100_000;

        let ratio = u64::from(self.config.cpu_mem_ratio);
        while engines.iter().any(|e| !e.is_done()) {
            assert!(
                cpu_cycle < cycle_limit,
                "multi-core deadlocked against memory"
            );
            if cpu_cycle.is_multiple_of(ratio) {
                completions.clear();
                memory.tick_into(&mut completions);
                // Ids are globally unique, so every engine can safely scan
                // the full completion list.
                for engine in &mut engines {
                    engine.absorb_completions(&completions);
                }
                // Rotate prefetch priority so core 0 doesn't monopolize the
                // queue headroom.
                let n = engines.len();
                let first = (cpu_cycle / ratio) as usize % n;
                for k in 0..n {
                    engines[(first + k) % n].issue_prefetches(memory);
                }
            }
            let mut pure_stall = true;
            for (i, engine) in engines.iter_mut().enumerate() {
                if !engine.is_done() {
                    pure_stall &= engine.step(memory).pure_stall();
                    if engine.is_done() && finish_cycle[i].is_none() {
                        finish_cycle[i] = Some(cpu_cycle + 1);
                    }
                }
            }
            cpu_cycle += 1;
            // Event-driven leap (see `Core::run`): when every live engine
            // pure-stalled and no engine's prefetcher can touch memory
            // (done engines still get a prefetch pass each boundary, so
            // they are included), nothing changes until the memory's next
            // event — jump both clocks to the boundary before it.
            if pure_stall
                && engines.iter().any(|e| !e.is_done())
                && engines.iter().all(CoreEngine::prefetch_idle)
            {
                if let Some(event) = memory.next_event_at() {
                    let event_boundary = (event - start_mem_cycle).raw().saturating_mul(ratio);
                    let target = event_boundary.min(cycle_limit);
                    if target > cpu_cycle {
                        for engine in &mut engines {
                            if !engine.is_done() {
                                engine.note_stalled(target - cpu_cycle);
                            }
                        }
                        cpu_cycle = target;
                        if target == event_boundary {
                            completions.clear();
                            memory.tick_to(event, &mut completions);
                            debug_assert!(
                                completions.is_empty(),
                                "fast-forward leap skipped a completion"
                            );
                        }
                    }
                }
            }
        }

        memory.run_until_idle(10_000_000);
        let mem_cycles = (memory.now() - start_mem_cycle).raw();
        let per_core = engines
            .iter()
            .zip(&finish_cycle)
            .map(|(engine, finish)| engine.result(finish.unwrap_or(cpu_cycle).max(1), mem_cycles))
            .collect();
        MultiCoreResult {
            per_core,
            total_cycles: cpu_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Core;
    use fgnvm_mem::MemorySystem;
    use fgnvm_types::config::SystemConfig;

    /// Builds `n` distinct synthetic mixed read/write miss streams
    /// (fgnvm-workloads cannot be used here — it depends on this crate).
    fn traces(n: usize, ops: usize) -> Vec<Trace> {
        use crate::trace::TraceRecord;
        use fgnvm_types::PhysAddr;
        (0..n as u64)
            .map(|seed| {
                let records = (0..ops as u64)
                    .map(|i| {
                        let addr =
                            (i.wrapping_mul(0x9E37_79B9).wrapping_add(seed * 977)) & 0xFFF_FFC0;
                        if i % 4 == 0 {
                            TraceRecord::write(20, PhysAddr::new(addr))
                        } else {
                            TraceRecord::read(20, PhysAddr::new(addr))
                        }
                    })
                    .collect();
                Trace::new(format!("core{seed}"), records)
            })
            .collect()
    }

    #[test]
    fn shared_memory_slows_each_core() {
        let ts = traces(2, 400);
        let cfg = CoreConfig::no_prefetch();
        // Solo runs.
        let core = Core::new(cfg).unwrap();
        let solo: Vec<CoreResult> = ts
            .iter()
            .map(|t| {
                let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
                core.run(t, &mut mem)
            })
            .collect();
        // Shared run.
        let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        let shared = MultiCore::new(cfg, 2).unwrap().run(&ts, &mut mem);
        assert_eq!(shared.per_core.len(), 2);
        for (s, alone) in shared.per_core.iter().zip(&solo) {
            assert_eq!(s.instructions, alone.instructions);
            assert!(
                s.ipc() <= alone.ipc() * 1.01,
                "sharing cannot speed a core up"
            );
        }
        let ws = weighted_speedup(&shared.per_core, &solo);
        assert!(ws > 1.0 && ws <= 2.0, "weighted speedup {ws}");
        let f = fairness(&shared.per_core, &solo);
        assert!((0.0..=1.0 + 1e-9).contains(&f), "fairness {f}");
    }

    #[test]
    fn subdivision_helps_consolidation() {
        let ts = traces(4, 300);
        let cfg = CoreConfig::no_prefetch();
        let mut base = MemorySystem::new(SystemConfig::baseline()).unwrap();
        let mut fg = MemorySystem::new(SystemConfig::fgnvm(8, 8).unwrap()).unwrap();
        let multi = MultiCore::new(cfg, 4).unwrap();
        let on_base = multi.run(&ts, &mut base);
        let on_fg = multi.run(&ts, &mut fg);
        assert!(
            on_fg.throughput() > on_base.throughput(),
            "fgnvm throughput {} should beat baseline {}",
            on_fg.throughput(),
            on_base.throughput()
        );
    }

    #[test]
    fn single_core_multicore_matches_core() {
        let ts = traces(1, 300);
        let cfg = CoreConfig::no_prefetch();
        let mut mem_a = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        let mut mem_b = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        let solo = Core::new(cfg).unwrap().run(&ts[0], &mut mem_a);
        let multi = MultiCore::new(cfg, 1).unwrap().run(&ts, &mut mem_b);
        assert_eq!(multi.per_core[0].instructions, solo.instructions);
        assert_eq!(multi.per_core[0].cpu_cycles, solo.cpu_cycles);
    }

    #[test]
    fn zero_cores_rejected() {
        assert!(MultiCore::new(CoreConfig::no_prefetch(), 0).is_err());
    }
}
