//! Trace-driven CPU model driving the FgNVM memory simulator.
//!
//! The gem5 substitute of the reproduction: a windowed out-of-order core
//! ([`Core`]) replays memory traces ([`Trace`]) against a
//! [`MemorySystem`](fgnvm_mem::MemorySystem), producing the IPC numbers
//! behind the paper's Figure 4. A set-associative [`LastLevelCache`] is
//! provided for users who want to filter raw access streams into miss
//! traces the way the paper filters SPEC2006 through its cache hierarchy.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fgnvm_cpu::{Core, CoreConfig, Trace, TraceRecord};
//! use fgnvm_mem::MemorySystem;
//! use fgnvm_types::config::SystemConfig;
//! use fgnvm_types::PhysAddr;
//!
//! let trace = Trace::new(
//!     "two-misses",
//!     vec![
//!         TraceRecord::read(100, PhysAddr::new(0)),
//!         TraceRecord::read(100, PhysAddr::new(1 << 25)),
//!     ],
//! );
//! let core = Core::new(CoreConfig::nehalem_like())?;
//! let mut memory = MemorySystem::new(SystemConfig::fgnvm(8, 2)?)?;
//! let result = core.run(&trace, &mut memory);
//! assert!(result.ipc() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod core;
pub mod llc;
pub mod metrics;
pub mod multicore;
pub mod rob_core;
pub mod trace;

pub use crate::core::{Core, CoreConfig};
pub use analysis::{analyze, TraceProfile};
pub use llc::{CacheOutcome, LastLevelCache};
pub use metrics::CoreResult;
pub use multicore::{fairness, weighted_speedup, MultiCore, MultiCoreResult};
pub use rob_core::RobCore;
pub use trace::{DecodeTraceError, Trace, TraceRecord};
