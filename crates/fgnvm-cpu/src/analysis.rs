//! Trace characterization: the workload-side metrics (footprint, locality,
//! spread) that explain why a trace behaves the way it does on a given
//! memory design. Used by `fgnvm-trace info` and by tests that want to
//! assert generator properties.

use std::collections::{HashMap, HashSet};

use fgnvm_types::address::{AddressMapper, MappingScheme};
use fgnvm_types::geometry::Geometry;

use crate::trace::Trace;

/// Characterization of one trace against a memory geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Memory operations analyzed.
    pub ops: usize,
    /// Misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Fraction of reads that are dependent (pointer chasing).
    pub dependent_fraction: f64,
    /// Distinct cache lines touched (line working set).
    pub distinct_lines: usize,
    /// Distinct rows touched (row working set).
    pub distinct_rows: usize,
    /// Distinct (bank, subarray group) pairs touched — the tile-level
    /// parallelism the trace can possibly exploit.
    pub distinct_bank_sags: usize,
    /// Fraction of accesses whose (bank, row) equals the previous access to
    /// the same bank — an upper bound on the open-row hit rate.
    pub row_adjacency: f64,
    /// Coefficient of variation of per-bank access counts (0 = balanced).
    pub bank_imbalance: f64,
}

/// Analyzes `trace` as it would decode on `geometry` (default mapping).
///
/// ```
/// use fgnvm_cpu::{analyze, Trace, TraceRecord};
/// use fgnvm_types::{Geometry, PhysAddr};
///
/// // A short strided trace: two rows of one bank.
/// let trace = Trace::new(
///     "demo",
///     (0..32u64).map(|i| TraceRecord::read(30, PhysAddr::new(i * 64))).collect(),
/// );
/// let profile = analyze(&trace, Geometry::default());
/// assert_eq!(profile.distinct_rows, 2);
/// assert!(profile.row_adjacency > 0.9); // streaming stays in-row
/// ```
pub fn analyze(trace: &Trace, geometry: Geometry) -> TraceProfile {
    let mapper = AddressMapper::new(geometry, MappingScheme::default());
    let mut lines = HashSet::new();
    let mut rows = HashSet::new();
    let mut bank_sags = HashSet::new();
    let mut last_row_per_bank: HashMap<(u32, u32, u32), u32> = HashMap::new();
    let mut per_bank: HashMap<(u32, u32, u32), u64> = HashMap::new();
    let mut adjacent = 0usize;
    let mut dependents = 0usize;
    let mut reads = 0usize;
    for r in trace.records() {
        let d = mapper.decode(r.addr);
        let bank_key = (d.channel, d.rank, d.bank);
        lines.insert(r.addr.raw() >> geometry.line_bytes().trailing_zeros());
        rows.insert((bank_key, d.row));
        bank_sags.insert((bank_key, geometry.sag_of_row(d.row)));
        if last_row_per_bank.insert(bank_key, d.row) == Some(d.row) {
            adjacent += 1;
        }
        *per_bank.entry(bank_key).or_default() += 1;
        if r.op.is_read() {
            reads += 1;
            if r.dependent {
                dependents += 1;
            }
        }
    }
    // Imbalance over ALL banks of the geometry (untouched banks count as
    // zero load; a single-bank hammer is maximally imbalanced).
    let bank_imbalance = if per_bank.is_empty() {
        0.0
    } else {
        let total_banks = geometry.total_banks() as usize;
        let mut loads = vec![0.0f64; total_banks];
        for (i, &c) in per_bank.values().enumerate() {
            loads[i] = c as f64;
        }
        let mean = loads.iter().sum::<f64>() / total_banks as f64;
        let var = loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / total_banks as f64;
        if mean > 0.0 {
            var.sqrt() / mean
        } else {
            0.0
        }
    };
    TraceProfile {
        ops: trace.len(),
        mpki: trace.mpki(),
        write_fraction: trace.write_fraction(),
        dependent_fraction: if reads == 0 {
            0.0
        } else {
            dependents as f64 / reads as f64
        },
        distinct_lines: lines.len(),
        distinct_rows: rows.len(),
        distinct_bank_sags: bank_sags.len(),
        row_adjacency: if trace.is_empty() {
            0.0
        } else {
            adjacent as f64 / trace.len() as f64
        },
        bank_imbalance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;
    use fgnvm_types::PhysAddr;

    fn geom() -> Geometry {
        Geometry::default()
    }

    #[test]
    fn empty_trace_profile_is_zeroed() {
        let p = analyze(&Trace::new("empty", vec![]), geom());
        assert_eq!(p.ops, 0);
        assert_eq!(p.distinct_lines, 0);
        assert_eq!(p.row_adjacency, 0.0);
        assert_eq!(p.bank_imbalance, 0.0);
    }

    #[test]
    fn streaming_trace_has_high_adjacency() {
        // 32 sequential lines of one row pair in one bank.
        let records: Vec<TraceRecord> = (0..32u64)
            .map(|i| TraceRecord::read(0, PhysAddr::new(i % 16 * 64)))
            .collect();
        let p = analyze(&Trace::new("stream", records), geom());
        assert_eq!(p.distinct_lines, 16);
        assert_eq!(p.distinct_rows, 1);
        assert_eq!(p.distinct_bank_sags, 1);
        // Every access after the first stays in the same row.
        assert!(p.row_adjacency > 0.9, "adjacency {}", p.row_adjacency);
    }

    #[test]
    fn scattered_trace_covers_sags_and_banks() {
        // One access per SAG (rows_per_sag = 8192 with 4 SAGs) in each of
        // the default geometry's 8 banks.
        let mut records = Vec::new();
        for bank in 0..8u64 {
            for sag in 0..4u64 {
                let row = sag * 8192;
                records.push(TraceRecord::read(
                    0,
                    PhysAddr::new((row << 13) | (bank << 10)),
                ));
            }
        }
        let p = analyze(&Trace::new("scatter", records), geom());
        assert_eq!(p.distinct_bank_sags, 32);
        assert_eq!(p.row_adjacency, 0.0);
        assert!(p.bank_imbalance < 1e-9, "balanced by construction");
    }

    #[test]
    fn single_bank_hammer_is_imbalanced() {
        let records: Vec<TraceRecord> = (0..64u64)
            .map(|i| TraceRecord::read(0, PhysAddr::new(i << 13)))
            .collect();
        let p = analyze(&Trace::new("hammer", records), geom());
        assert!(p.bank_imbalance > 1.0, "imbalance {}", p.bank_imbalance);
    }

    #[test]
    fn dependent_fraction_counts_reads_only() {
        let records = vec![
            TraceRecord::dependent_read(0, PhysAddr::new(0)),
            TraceRecord::read(0, PhysAddr::new(64)),
            TraceRecord::write(0, PhysAddr::new(128)),
        ];
        let p = analyze(&Trace::new("mix", records), geom());
        assert!((p.dependent_fraction - 0.5).abs() < 1e-12);
    }
}
