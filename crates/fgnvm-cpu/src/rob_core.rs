//! A structural reorder-buffer core model.
//!
//! Where [`Core`](crate::Core) tracks only the *window distance* to the
//! oldest outstanding load, `RobCore` models the reorder buffer as an
//! actual queue of instructions with dispatch, issue, completion, and
//! in-order retirement. It is slower to simulate but structurally faithful:
//!
//! * **dispatch** — up to `width` instructions per cycle enter the ROB
//!   while space remains;
//! * **issue** — loads issue to memory in program order as MSHRs and queue
//!   slots allow (dependent loads wait for all older loads, modeling a
//!   data-dependence chain); stores are posted at dispatch through the
//!   write queue's backpressure;
//! * **retire** — up to `width` instructions per cycle leave from the head;
//!   a load must have its data, everything else retires freely.
//!
//! The two models cross-validate each other (see the `model_agreement`
//! tests and `tests/cross_crate_props.rs`): absolute IPCs differ by small
//! factors, but design-ordering conclusions must agree. `RobCore` has no
//! prefetcher; compare against [`CoreConfig::no_prefetch`].

use std::collections::{HashMap, VecDeque};

use fgnvm_mem::MemoryBackend;
use fgnvm_types::error::ConfigError;
use fgnvm_types::request::{Op, RequestId};

use crate::metrics::CoreResult;
use crate::trace::Trace;

use crate::core::CoreConfig;

/// One reorder-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RobEntry {
    /// A non-memory instruction; retires freely.
    Compute,
    /// A load: `done` once its data is back.
    Load { done: bool, dependent: bool },
    /// A store: posted to the write queue at dispatch; retires freely.
    Store,
}

/// Structural ROB core; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct RobCore {
    config: CoreConfig,
}

impl RobCore {
    /// Creates a ROB core with the given configuration (the
    /// `prefetch_degree` field is ignored — this model has no prefetcher).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(config: CoreConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(RobCore { config })
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Runs `trace` to completion against `memory`; see
    /// [`Core::run`](crate::Core::run) for the contract.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds an internal safety bound (which
    /// would indicate a deadlock in the memory system).
    pub fn run<M: MemoryBackend>(&self, trace: &Trace, memory: &mut M) -> CoreResult {
        let cfg = &self.config;
        let records = trace.records();
        let mut record_index = 0usize;
        let mut gap_left = records.first().map_or(0, |r| r.gap);
        // ROB entries keyed by monotonically increasing sequence numbers.
        let mut rob: VecDeque<(u64, RobEntry)> = VecDeque::new();
        let mut next_seq: u64 = 0;
        // Loads waiting to issue, in program order, with their line
        // addresses carried alongside.
        let mut unissued: VecDeque<u64> = VecDeque::new();
        let mut unissued_addr: VecDeque<(u64, u64)> = VecDeque::new();
        // In-flight loads: memory id → ROB sequence(s) awaiting that line.
        let mut inflight: HashMap<RequestId, Vec<u64>> = HashMap::new();
        // Line → in-flight request id, for MSHR merging.
        let mut line_waiters: HashMap<u64, RequestId> = HashMap::new();
        let mut outstanding_loads: usize = 0;
        let mut retired: u64 = 0;
        let mut stall_cycles: u64 = 0;
        let mut cpu_cycle: u64 = 0;
        let mut completions = Vec::new();
        let start_mem_cycle = memory.now();
        let cycle_limit = 200_000 + trace.instruction_count() * 100_000;

        let set_done = |rob: &mut VecDeque<(u64, RobEntry)>, seq: u64| {
            let head_seq = rob.front().map(|(s, _)| *s).unwrap_or(0);
            if let Some((_, RobEntry::Load { done, .. })) = rob.get_mut((seq - head_seq) as usize) {
                *done = true;
            }
        };

        while record_index < records.len() || !rob.is_empty() {
            assert!(
                cpu_cycle < cycle_limit,
                "rob core deadlocked against memory"
            );
            // Memory ticks once per cpu_mem_ratio CPU cycles.
            if cpu_cycle.is_multiple_of(u64::from(cfg.cpu_mem_ratio)) {
                completions.clear();
                memory.tick_into(&mut completions);
                for c in &completions {
                    if c.op.is_read() {
                        if let Some(seqs) = inflight.remove(&c.id) {
                            for seq in seqs {
                                set_done(&mut rob, seq);
                            }
                            line_waiters.retain(|_, id| *id != c.id);
                            outstanding_loads = outstanding_loads.saturating_sub(1);
                        }
                    }
                }
            }

            // Issue pending loads in program order.
            while let Some(&seq) = unissued.front() {
                let head_seq = rob.front().map(|(s, _)| *s).unwrap_or(0);
                let Some((_, entry)) = rob.get((seq - head_seq) as usize) else {
                    break;
                };
                let RobEntry::Load { dependent, .. } = *entry else {
                    break;
                };
                if dependent && outstanding_loads > 0 {
                    break; // dependence chain: wait for older loads
                }
                if outstanding_loads >= cfg.mshrs as usize {
                    break; // no MSHR
                }
                // Which address? Loads issue in program order, so replay the
                // record stream: we stash the line address in the entry via
                // a parallel queue instead.
                let Some(&(_, line)) = unissued_addr.front() else {
                    break;
                };
                debug_assert_eq!(unissued_addr.front().map(|(s, _)| *s), Some(seq));
                if let Some(&leader) = line_waiters.get(&line) {
                    // Merge with the in-flight miss for this line.
                    inflight.entry(leader).or_default().push(seq);
                    unissued.pop_front();
                    unissued_addr.pop_front();
                    continue;
                }
                match memory.enqueue(Op::Read, fgnvm_types::PhysAddr::new(line << 6)) {
                    Some(id) => {
                        inflight.insert(id, vec![seq]);
                        line_waiters.insert(line, id);
                        outstanding_loads += 1;
                        unissued.pop_front();
                        unissued_addr.pop_front();
                    }
                    None => break, // queue full
                }
            }

            // Retire up to width from the head.
            let mut retired_this_cycle = 0;
            while retired_this_cycle < cfg.width {
                match rob.front() {
                    Some((_, RobEntry::Load { done: false, .. })) | None => break,
                    Some(_) => {
                        rob.pop_front();
                        retired += 1;
                        retired_this_cycle += 1;
                    }
                }
            }

            // Dispatch up to width new instructions.
            let mut dispatched = 0;
            while dispatched < cfg.width
                && rob.len() < cfg.rob_entries as usize
                && record_index < records.len()
            {
                if gap_left > 0 {
                    gap_left -= 1;
                    rob.push_back((next_seq, RobEntry::Compute));
                    next_seq += 1;
                    dispatched += 1;
                    continue;
                }
                let record = records[record_index];
                match record.op {
                    Op::Read => {
                        rob.push_back((
                            next_seq,
                            RobEntry::Load {
                                done: false,
                                dependent: record.dependent,
                            },
                        ));
                        unissued.push_back(next_seq);
                        unissued_addr.push_back((next_seq, record.addr.raw() >> 6));
                        next_seq += 1;
                        dispatched += 1;
                    }
                    Op::Write => {
                        // Posted store: needs a write-queue slot now.
                        match memory.enqueue(Op::Write, record.addr) {
                            Some(_) => {
                                rob.push_back((next_seq, RobEntry::Store));
                                next_seq += 1;
                                dispatched += 1;
                            }
                            None => break, // backpressure
                        }
                    }
                }
                record_index += 1;
                gap_left = records.get(record_index).map_or(0, |r| r.gap);
            }

            if retired_this_cycle == 0 && dispatched == 0 && !rob.is_empty() {
                stall_cycles += 1;
            }
            cpu_cycle += 1;
        }

        memory.run_until_idle(10_000_000);
        CoreResult {
            instructions: retired,
            cpu_cycles: cpu_cycle.max(1),
            mem_cycles: (memory.now() - start_mem_cycle).raw(),
            stall_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;
    use fgnvm_mem::MemorySystem;
    use fgnvm_types::config::SystemConfig;
    use fgnvm_types::PhysAddr;

    fn mem() -> MemorySystem {
        MemorySystem::new(SystemConfig::baseline()).unwrap()
    }

    fn read_at(gap: u32, addr: u64) -> TraceRecord {
        TraceRecord::read(gap, PhysAddr::new(addr))
    }

    #[test]
    fn compute_bound_reaches_full_width() {
        let trace = Trace::new("compute", vec![read_at(100_000, 0)]);
        let core = RobCore::new(CoreConfig::no_prefetch()).unwrap();
        let result = core.run(&trace, &mut mem());
        assert!(result.ipc() > 3.5, "ipc {}", result.ipc());
    }

    #[test]
    fn dependent_chain_serializes() {
        let chained: Vec<TraceRecord> = (0..24u64)
            .map(|i| TraceRecord::dependent_read(0, PhysAddr::new(i * 1024)))
            .collect();
        let parallel: Vec<TraceRecord> = (0..24u64).map(|i| read_at(0, i * 1024)).collect();
        let core = RobCore::new(CoreConfig::no_prefetch()).unwrap();
        let slow = core.run(&Trace::new("chain", chained), &mut mem());
        let fast = core.run(&Trace::new("par", parallel), &mut mem());
        assert!(
            slow.cpu_cycles > fast.cpu_cycles * 2,
            "{} vs {}",
            slow.cpu_cycles,
            fast.cpu_cycles
        );
    }

    #[test]
    fn retires_every_instruction_exactly_once() {
        let records: Vec<TraceRecord> = (0..40u64)
            .map(|i| {
                if i % 5 == 0 {
                    TraceRecord::write(3, PhysAddr::new(i * 4096))
                } else {
                    read_at(3, i * 4096)
                }
            })
            .collect();
        let trace = Trace::new("mixed", records);
        let expected = trace.instruction_count();
        let core = RobCore::new(CoreConfig::no_prefetch()).unwrap();
        let result = core.run(&trace, &mut mem());
        assert_eq!(result.instructions, expected);
    }

    #[test]
    fn same_line_loads_merge() {
        let records: Vec<TraceRecord> = (0..8).map(|_| read_at(0, 0x40)).collect();
        let trace = Trace::new("merge", records);
        let core = RobCore::new(CoreConfig::no_prefetch()).unwrap();
        let mut memory = mem();
        core.run(&trace, &mut memory);
        assert_eq!(memory.stats().enqueued_reads, 1);
    }

    #[test]
    fn models_agree_on_design_ordering() {
        // Both core models must conclude that FgNVM beats the baseline on
        // a conflict-heavy trace, even if absolute IPCs differ.
        use crate::core::Core;
        let records: Vec<TraceRecord> = (0..256u64)
            .map(|i| read_at(5, (i * 0x9E37_79B9) & 0xFFF_FFC0))
            .collect();
        let trace = Trace::new("conflicts", records);
        let cfg = CoreConfig::no_prefetch();
        let windowed = Core::new(cfg).unwrap();
        let structural = RobCore::new(cfg).unwrap();
        let mut speedups = Vec::new();
        for core_is_rob in [false, true] {
            let mut base = MemorySystem::new(SystemConfig::baseline()).unwrap();
            let mut fg = MemorySystem::new(SystemConfig::fgnvm(8, 8).unwrap()).unwrap();
            let (b, f) = if core_is_rob {
                (
                    structural.run(&trace, &mut base),
                    structural.run(&trace, &mut fg),
                )
            } else {
                (
                    windowed.run(&trace, &mut base),
                    windowed.run(&trace, &mut fg),
                )
            };
            speedups.push(f.ipc() / b.ipc());
        }
        assert!(speedups[0] > 1.0, "windowed speedup {}", speedups[0]);
        assert!(speedups[1] > 1.0, "structural speedup {}", speedups[1]);
        // The models should roughly agree on the magnitude too.
        let ratio = speedups[0] / speedups[1];
        assert!((0.6..1.7).contains(&ratio), "models diverged: {speedups:?}");
    }
}
