//! The workspace's one deterministic seed-derivation helper.
//!
//! Test tiers that need a workload seed (the soak tests, the fuzzer, ad-hoc
//! stress harnesses) derive it from a human-readable label plus an index
//! instead of sprinkling magic constants per file. The label shows up in
//! failure messages, so a failing run can always be replayed: the seed is a
//! pure function of `(label, index)`.

/// Derives a deterministic 64-bit seed from a label and an index.
///
/// FNV-1a folds the label into a basis, the index is mixed in with the
/// 64-bit golden ratio, and one SplitMix64 finalization scrambles the
/// result so nearby indices produce unrelated streams. The same
/// construction as the vendored proptest `TestRng`, shared here so every
/// tier derives seeds the same way.
///
/// ```
/// use fgnvm_check::derive_seed;
/// assert_eq!(derive_seed("soak", 0), derive_seed("soak", 0));
/// assert_ne!(derive_seed("soak", 0), derive_seed("soak", 1));
/// assert_ne!(derive_seed("soak", 0), derive_seed("fuzz", 0));
/// ```
pub fn derive_seed(label: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut h);
    h
}

/// One SplitMix64 step: advances `state` and returns the scrambled output.
/// Public because the fuzzer uses it as its case-generation RNG.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_across_runs() {
        // Pinned values: changing the derivation silently re-seeds every
        // soak and fuzz tier, so make that an explicit decision.
        assert_eq!(
            derive_seed("soak::all_optional_layers_coexist", 0),
            derive_seed("soak::all_optional_layers_coexist", 0)
        );
        let a = derive_seed("a", 0);
        let b = derive_seed("a", 1);
        let c = derive_seed("b", 0);
        assert!(a != b && a != c && b != c);
    }

    #[test]
    fn splitmix_sequence_is_deterministic() {
        let mut s1 = 42u64;
        let mut s2 = 42u64;
        for _ in 0..16 {
            assert_eq!(splitmix64(&mut s1), splitmix64(&mut s2));
        }
        assert_eq!(s1, s2);
    }
}
