//! Plain-text serialization for fuzz cases.
//!
//! When the fuzzer finds a failure it shrinks the case and writes it as a
//! `.case` file; `fgnvm-repro -- fuzz path/to/file.case` replays it. The
//! format is line-oriented and diff-friendly so minimized counterexamples
//! can be committed next to the regression tests they motivate:
//!
//! ```text
//! # fgnvm-check fuzz case
//! model = pausing
//! sags = 8
//! cds = 4
//! faulty = true
//! fast_forward = false
//! chaos = false
//! op = W 17 0
//! op = R 17 3
//! ```
//!
//! Each `op` line is `R|W <line> <gap> [tenant]`: read or write cache
//! line `line` (modulo the configuration's capacity), then step the clock
//! `gap` cycles before the next enqueue, billing the request to `tenant`
//! (0 when omitted). Multi-tenant cases additionally carry a
//! `tenants = N` line naming the number of tenant slots the case
//! exercises; both are omitted for single-stream cases so legacy files
//! keep parsing and rendering byte-identically.

use crate::fuzz::{FuzzCase, FuzzModel, FuzzOp};

/// Renders a case in the `.case` text format. [`parse_case`] inverts this.
pub fn render_case(case: &FuzzCase) -> String {
    let mut out = String::from("# fgnvm-check fuzz case\n");
    out.push_str(&format!("model = {}\n", case.model.name()));
    out.push_str(&format!("sags = {}\n", case.sags));
    out.push_str(&format!("cds = {}\n", case.cds));
    out.push_str(&format!("faulty = {}\n", case.faulty));
    out.push_str(&format!("fast_forward = {}\n", case.fast_forward));
    out.push_str(&format!("chaos = {}\n", case.chaos));
    if case.tenants > 0 {
        out.push_str(&format!("tenants = {}\n", case.tenants));
    }
    for op in &case.ops {
        if case.tenants > 0 || op.tenant != 0 {
            out.push_str(&format!(
                "op = {} {} {} {}\n",
                if op.write { 'W' } else { 'R' },
                op.line,
                op.gap,
                op.tenant
            ));
        } else {
            out.push_str(&format!(
                "op = {} {} {}\n",
                if op.write { 'W' } else { 'R' },
                op.line,
                op.gap
            ));
        }
    }
    out
}

/// Parses the `.case` text format produced by [`render_case`].
///
/// # Errors
///
/// Returns a line-numbered description of the first malformed line.
pub fn parse_case(text: &str) -> Result<FuzzCase, String> {
    let mut case = FuzzCase {
        model: FuzzModel::Fgnvm,
        sags: 8,
        cds: 2,
        faulty: false,
        fast_forward: false,
        chaos: false,
        tenants: 0,
        ops: Vec::new(),
    };
    let mut saw_model = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`, got {line:?}"))?;
        let (key, value) = (key.trim(), value.trim());
        let parse_u32 = |v: &str| {
            v.parse::<u32>()
                .map_err(|_| format!("line {lineno}: {key} wants an integer, got {v:?}"))
        };
        let parse_bool = |v: &str| match v {
            "true" => Ok(true),
            "false" => Ok(false),
            _ => Err(format!("line {lineno}: {key} wants true/false, got {v:?}")),
        };
        match key {
            "model" => {
                case.model = FuzzModel::from_name(value)
                    .ok_or_else(|| format!("line {lineno}: unknown model {value:?}"))?;
                saw_model = true;
            }
            "sags" => case.sags = parse_u32(value)?,
            "cds" => case.cds = parse_u32(value)?,
            "faulty" => case.faulty = parse_bool(value)?,
            "fast_forward" => case.fast_forward = parse_bool(value)?,
            "chaos" => case.chaos = parse_bool(value)?,
            "tenants" => {
                case.tenants = value
                    .parse::<u16>()
                    .map_err(|_| format!("line {lineno}: tenants wants a u16, got {value:?}"))?;
            }
            "op" => {
                let mut parts = value.split_whitespace();
                let dir = parts.next().unwrap_or("");
                let write = match dir {
                    "R" => false,
                    "W" => true,
                    _ => return Err(format!("line {lineno}: op wants R or W, got {dir:?}")),
                };
                let line_no = parts
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| format!("line {lineno}: op wants `R|W <line> <gap>`"))?;
                let gap = parts
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .ok_or_else(|| format!("line {lineno}: op wants `R|W <line> <gap>`"))?;
                let tenant = match parts.next() {
                    None => 0,
                    Some(v) => v
                        .parse::<u16>()
                        .map_err(|_| format!("line {lineno}: op tenant wants a u16, got {v:?}"))?,
                };
                if parts.next().is_some() {
                    return Err(format!("line {lineno}: trailing tokens after op"));
                }
                case.ops.push(FuzzOp {
                    write,
                    line: line_no,
                    gap,
                    tenant,
                });
            }
            _ => return Err(format!("line {lineno}: unknown key {key:?}")),
        }
    }
    if !saw_model {
        return Err("missing `model =` line".to_string());
    }
    Ok(case)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuzzCase {
        FuzzCase {
            model: FuzzModel::Pausing,
            sags: 16,
            cds: 4,
            faulty: true,
            fast_forward: false,
            chaos: false,
            tenants: 0,
            ops: vec![
                FuzzOp {
                    write: true,
                    line: 17,
                    gap: 0,
                    tenant: 0,
                },
                FuzzOp {
                    write: false,
                    line: 17,
                    gap: 3,
                    tenant: 0,
                },
                FuzzOp {
                    write: false,
                    line: 9000,
                    gap: 250,
                    tenant: 0,
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let case = sample();
        let text = render_case(&case);
        let back = parse_case(&text).expect("own output parses");
        assert_eq!(back, case);
        // And the round trip is textually stable.
        assert_eq!(render_case(&back), text);
    }

    #[test]
    fn multi_tenant_cases_round_trip_and_legacy_files_still_parse() {
        let mut case = sample();
        case.tenants = 3;
        case.ops[0].tenant = 2;
        case.ops[2].tenant = 1;
        let text = render_case(&case);
        assert!(text.contains("tenants = 3"), "{text}");
        assert!(text.contains("op = W 17 0 2"), "{text}");
        let back = parse_case(&text).expect("tenant case parses");
        assert_eq!(back, case);
        assert_eq!(render_case(&back), text);
        // A pre-tenant file (three-token ops, no tenants line) parses to
        // tenant 0 everywhere.
        let legacy = parse_case("model = fgnvm\nop = R 5 10\n").expect("legacy parses");
        assert_eq!(legacy.tenants, 0);
        assert_eq!(legacy.ops[0].tenant, 0);
    }

    #[test]
    fn every_model_name_round_trips() {
        for model in FuzzModel::ALL {
            assert_eq!(FuzzModel::from_name(model.name()), Some(model));
        }
    }

    #[test]
    fn malformed_cases_are_rejected_with_line_numbers() {
        assert!(parse_case("").unwrap_err().contains("model"));
        let err = parse_case("model = fgnvm\nop = X 1 2\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse_case("model = warp\n").unwrap_err().contains("warp"));
        assert!(parse_case("model = fgnvm\nsags = many\n")
            .unwrap_err()
            .contains("integer"));
        assert!(parse_case("model = fgnvm\nop = R 1 2 3 4 5\n")
            .unwrap_err()
            .contains("trailing"));
        assert!(parse_case("model = fgnvm\nop = R 1 2 tenantx\n")
            .unwrap_err()
            .contains("u16"));
        assert!(parse_case("model = fgnvm\ntenants = -1\n")
            .unwrap_err()
            .contains("u16"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nmodel = baseline\n  # indented comment\nop = R 0 0\n";
        let case = parse_case(text).expect("parses");
        assert_eq!(case.model, FuzzModel::Baseline);
        assert_eq!(case.ops.len(), 1);
    }
}
