//! The analytical reference oracle.
//!
//! [`Oracle`] independently re-derives the legal-concurrency envelope of a
//! configuration from its geometry and timing parameters — it shares *no
//! code* with the bank FSMs — and replays a [`CommandLog`] against it. For
//! each recorded command it:
//!
//! 1. recomputes what kind of command (row hit / underfetch / activate /
//!    write) the device state at that instant admits, and flags a mismatch;
//! 2. checks every resource gate the architecture imposes: whole-bank
//!    serialization (Multi-Activation off), the whole-bank write block
//!    (Backgrounded Writes off), the per-SAG write lock (with the
//!    write-pausing bypass), the shared column-command path (tCCD), per-CD
//!    sense/drive I/O and row-buffer-latch windows, and the per-SAG
//!    quiesce/wordline gates for row switches;
//! 3. enforces the device minimum latency for the command kind, including
//!    the pause/resume overhead and the `(1+k)·tWP` verify-retry write
//!    occupancy;
//! 4. checks the paper's rook-placement claim directly: concurrently
//!    in-flight senses/writes in one bank must occupy disjoint column
//!    divisions, and a subarray group may have only one row in flight
//!    (write pausing being the architected exception).
//!
//! The existing [`ProtocolChecker`] runs as part of every audit, so its
//! independent rule set (bus occupancy, tFAW, retry caps, baseline row
//! tracking) cross-checks this one. For the DRAM contrast model — whose
//! refresh machinery is deliberately out of scope for the paper — the
//! stateful replay is skipped and the protocol checker carries the audit.

use std::collections::HashMap;
use std::fmt;

use fgnvm_bank::{PlanKind, PAUSE_MIN_REMAINING, PAUSE_OVERHEAD};
use fgnvm_mem::{CommandLog, CommandRecord, MemorySystem, ProtocolChecker, ProtocolReport};
use fgnvm_types::config::{BankModel, SystemConfig};
use fgnvm_types::error::ConfigError;

use crate::invariants::{self, InvariantReport};

/// One oracle-detected legality violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleViolation {
    /// The recorded command kind disagrees with what the replayed device
    /// state admits (e.g. a row hit logged while the row was closed).
    KindMismatch {
        /// Issue cycle.
        at: u64,
        /// Bank index within the channel.
        bank: usize,
        /// Kind the controller logged.
        recorded: PlanKind,
        /// Kind the replayed state expects.
        expected: PlanKind,
    },
    /// A resource gate the architecture imposes was still busy at issue.
    GateBusy {
        /// Issue cycle.
        at: u64,
        /// Bank index within the channel.
        bank: usize,
        /// The violated gate.
        gate: &'static str,
        /// When the resource actually frees.
        free_at: u64,
    },
    /// The data burst was scheduled before the device could deliver it.
    MinimumLatency {
        /// Issue cycle.
        at: u64,
        /// Bank index within the channel.
        bank: usize,
        /// The recorded command kind.
        kind: PlanKind,
        /// The recorded burst start.
        data_start: u64,
        /// The earliest legal burst start for this kind.
        earliest_legal: u64,
    },
    /// Two concurrently in-flight operations shared a column division —
    /// the rook-placement rule forbids two rooks in one column.
    CdOverlap {
        /// Issue cycle.
        at: u64,
        /// Bank index within the channel.
        bank: usize,
        /// The shared column division.
        cd: u32,
    },
    /// Two different rows were in flight within one subarray group — the
    /// rook-placement rule forbids two rooks in one row.
    SagRowConflict {
        /// Issue cycle.
        at: u64,
        /// Bank index within the channel.
        bank: usize,
        /// The subarray group.
        sag: u32,
        /// Row of the new command.
        row: u32,
        /// Row already in flight.
        in_flight: u32,
    },
    /// Log records were not in non-decreasing issue order.
    OutOfOrder {
        /// Issue cycle of the offending record.
        at: u64,
        /// Bank index within the channel.
        bank: usize,
        /// Issue cycle of the preceding record.
        prev: u64,
    },
    /// A command's tile coordinate fell outside the configured grid.
    BadCoord {
        /// Issue cycle.
        at: u64,
        /// Bank index within the channel.
        bank: usize,
    },
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleViolation::KindMismatch { at, bank, recorded, expected } => write!(
                f,
                "cycle {at} bank {bank}: logged {recorded:?} but device state admits {expected:?}"
            ),
            OracleViolation::GateBusy { at, bank, gate, free_at } => write!(
                f,
                "cycle {at} bank {bank}: issued through busy {gate} (free at {free_at})"
            ),
            OracleViolation::MinimumLatency { at, bank, kind, data_start, earliest_legal } => write!(
                f,
                "cycle {at} bank {bank}: {kind:?} burst at {data_start} beats device minimum {earliest_legal}"
            ),
            OracleViolation::CdOverlap { at, bank, cd } => write!(
                f,
                "cycle {at} bank {bank}: two in-flight operations share column division {cd}"
            ),
            OracleViolation::SagRowConflict { at, bank, sag, row, in_flight } => write!(
                f,
                "cycle {at} bank {bank}: SAG {sag} has rows {in_flight} and {row} in flight"
            ),
            OracleViolation::OutOfOrder { at, bank, prev } => write!(
                f,
                "cycle {at} bank {bank}: logged after cycle {prev}"
            ),
            OracleViolation::BadCoord { at, bank } => write!(
                f,
                "cycle {at} bank {bank}: tile coordinate outside the configured grid"
            ),
        }
    }
}

/// The outcome of one oracle audit over one channel's command log.
#[derive(Debug)]
pub struct OracleReport {
    /// Commands replayed.
    pub commands: usize,
    /// Highest number of simultaneously in-flight tile operations observed
    /// in any one bank (the paper's concurrency envelope; bounded by the
    /// number of column divisions).
    pub max_tile_concurrency: u32,
    /// Why the stateful replay was skipped, if it was (log overflow, DRAM
    /// contrast model). The protocol checker still ran.
    pub skipped: Option<&'static str>,
    /// Violations of the analytically derived envelope.
    pub violations: Vec<OracleViolation>,
    /// The independent [`ProtocolChecker`] pass over the same log.
    pub protocol: ProtocolReport,
}

impl OracleReport {
    /// True when neither the oracle nor the protocol checker found any
    /// violation.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.protocol.is_clean()
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "oracle: {} commands, max tile concurrency {}, {} violation(s){}",
            self.commands,
            self.max_tile_concurrency,
            self.violations.len(),
            self.skipped
                .map(|s| format!(" (replay skipped: {s})"))
                .unwrap_or_default()
        )?;
        for v in self.violations.iter().take(16) {
            writeln!(f, "  - {v}")?;
        }
        if self.violations.len() > 16 {
            writeln!(f, "  ... and {} more", self.violations.len() - 16)?;
        }
        write!(f, "{}", self.protocol)
    }
}

/// Resolved timing in raw cycles, as the oracle needs it.
#[derive(Debug, Clone, Copy)]
struct T {
    t_rcd: u64,
    t_cas: u64,
    t_rp: u64,
    t_ccd: u64,
    t_burst: u64,
    t_cwd: u64,
    t_wp: u64,
    t_wr: u64,
}

/// Replayed per-SAG state (mirrors the architecture, not the FSM code).
#[derive(Debug, Clone, Copy)]
struct SagR {
    open_row: Option<u32>,
    sensed: u128,
    wordline_free: u64,
    lock: u64,
    write_cds: u128,
    write_row: u32,
    quiesce: u64,
}

impl SagR {
    fn idle() -> Self {
        SagR {
            open_row: None,
            sensed: 0,
            wordline_free: 0,
            lock: 0,
            write_cds: 0,
            write_row: 0,
            quiesce: 0,
        }
    }
}

/// One in-flight tile operation (for the rook-placement check).
#[derive(Debug, Clone, Copy)]
struct Flight {
    sag: u32,
    mask: u128,
    row: u32,
    until: u64,
    is_write: bool,
}

/// Replayed state of one FgNVM bank.
#[derive(Debug)]
struct FgnvmReplay {
    sags: Vec<SagR>,
    cd_io_free: Vec<u64>,
    cd_latch_free: Vec<u64>,
    next_col: u64,
    serial_until: u64,
    write_block_until: u64,
    inflight: Vec<Flight>,
}

impl FgnvmReplay {
    fn new(sags: usize, cds: usize) -> Self {
        FgnvmReplay {
            sags: vec![SagR::idle(); sags],
            cd_io_free: vec![0; cds],
            cd_latch_free: vec![0; cds],
            next_col: 0,
            serial_until: 0,
            write_block_until: 0,
            inflight: Vec::new(),
        }
    }
}

/// Replayed state of one baseline (monolithic) bank.
#[derive(Debug, Default)]
struct BaselineReplay {
    open_row: Option<u32>,
    act_done: u64,
    next_col: u64,
    quiesce: u64,
}

/// The analytical reference oracle for one [`SystemConfig`].
#[derive(Debug)]
pub struct Oracle {
    config: SystemConfig,
    timing: T,
    checker: ProtocolChecker,
}

impl Oracle {
    /// Builds the oracle, resolving the configuration's timing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(config: &SystemConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let tc = config.timing.to_cycles()?;
        Ok(Oracle {
            config: *config,
            timing: T {
                t_rcd: tc.t_rcd.raw(),
                t_cas: tc.t_cas.raw(),
                t_rp: tc.t_rp.raw(),
                t_ccd: tc.t_ccd.raw(),
                t_burst: tc.t_burst.raw(),
                t_cwd: tc.t_cwd.raw(),
                t_wp: tc.t_wp.raw(),
                t_wr: tc.t_wr.raw(),
            },
            checker: ProtocolChecker::new(config)?,
        })
    }

    /// Replays one channel's command log against the analytical envelope
    /// and runs the protocol checker over the same stream.
    pub fn audit(&self, log: &CommandLog) -> OracleReport {
        let protocol = self.checker.check(log);
        let records: Vec<CommandRecord> = log.records().cloned().collect();
        let mut report = OracleReport {
            commands: records.len(),
            max_tile_concurrency: 0,
            skipped: None,
            violations: Vec::new(),
            protocol,
        };
        if log.dropped() > 0 {
            report.skipped = Some("log overflowed; stateful replay needs the full stream");
            return report;
        }
        match self.config.bank_model {
            BankModel::Fgnvm { .. } => self.replay_fgnvm(&records, &mut report),
            BankModel::Baseline => self.replay_baseline(&records, &mut report),
            BankModel::Dram => {
                report.skipped = Some("dram contrast model: refresh state is out of oracle scope");
            }
        }
        report
    }

    fn replay_fgnvm(&self, records: &[CommandRecord], report: &mut OracleReport) {
        let t = self.timing;
        let (partial, multi, background) = match self.config.bank_model {
            BankModel::Fgnvm {
                partial_activation,
                multi_activation,
                background_writes,
            } => (partial_activation, multi_activation, background_writes),
            _ => unreachable!("caller matched the model"),
        };
        let write_pausing = self.config.write_pausing;
        let shared_col = self.config.commands_per_cycle == 1;
        let sags = self.config.geometry.sags() as usize;
        let cds = self.config.geometry.cds() as usize;
        let full_mask: u128 = if cds == 128 {
            u128::MAX
        } else {
            (1u128 << cds) - 1
        };

        let mut banks: HashMap<usize, FgnvmReplay> = HashMap::new();
        let mut last_at = 0u64;
        for r in records {
            let at = r.at.raw();
            let data_start = r.data_start.raw();
            let bank = r.bank_index;
            if at < last_at {
                report.violations.push(OracleViolation::OutOfOrder {
                    at,
                    bank,
                    prev: last_at,
                });
            }
            last_at = last_at.max(at);
            let si = r.coord.sag as usize;
            let cd_end = u64::from(r.coord.cd_first) + u64::from(r.coord.cd_count);
            if si >= sags || cd_end > cds as u64 || r.coord.cd_count == 0 {
                report
                    .violations
                    .push(OracleViolation::BadCoord { at, bank });
                continue;
            }
            let mut mask = 0u128;
            for cd in r.coord.cd_first..r.coord.cd_first + r.coord.cd_count {
                mask |= 1u128 << cd;
            }
            let b = banks
                .entry(bank)
                .or_insert_with(|| FgnvmReplay::new(sags, cds));
            let sag = b.sags[si];
            let is_read = r.op.is_read();
            let pausing = write_pausing
                && is_read
                && at < sag.lock
                && sag.lock - at > PAUSE_MIN_REMAINING.raw()
                && sag.write_row != r.row;
            let pause_mask = if pausing { sag.write_cds } else { 0 };
            let row_open = sag.open_row == Some(r.row);

            // 1. Kind admissibility from the replayed state.
            let expected = if !is_read {
                PlanKind::Write
            } else if row_open && sag.sensed & mask == mask {
                PlanKind::RowHit
            } else if row_open && partial {
                PlanKind::Underfetch
            } else {
                PlanKind::Activate
            };
            if r.kind != expected {
                report.violations.push(OracleViolation::KindMismatch {
                    at,
                    bank,
                    recorded: r.kind,
                    expected,
                });
            }

            // 2. Resource gates, following the recorded kind's issue path.
            let mut gate = |cond: bool, name: &'static str, free_at: u64| {
                if cond {
                    report.violations.push(OracleViolation::GateBusy {
                        at,
                        bank,
                        gate: name,
                        free_at,
                    });
                }
            };
            if !multi {
                gate(
                    at < b.serial_until,
                    "bank serialization point",
                    b.serial_until,
                );
            }
            gate(
                at < b.write_block_until,
                "whole-bank write block",
                b.write_block_until,
            );
            if !pausing {
                gate(at < sag.lock, "SAG write lock", sag.lock);
            }
            if shared_col {
                gate(at < b.next_col, "shared column-command path", b.next_col);
            }
            let io_free = |b: &FgnvmReplay, m: u128, pm: u128| -> u64 {
                (0..cds)
                    .filter(|cd| m & (1u128 << cd) != 0 && pm & (1u128 << cd) == 0)
                    .map(|cd| b.cd_io_free[cd])
                    .max()
                    .unwrap_or(0)
            };
            let latch_free = |b: &FgnvmReplay, m: u128| -> u64 {
                (0..cds)
                    .filter(|cd| m & (1u128 << cd) != 0)
                    .map(|cd| b.cd_latch_free[cd])
                    .max()
                    .unwrap_or(0)
            };
            let all_free = |b: &FgnvmReplay| -> u64 {
                (0..cds)
                    .map(|cd| b.cd_io_free[cd].max(b.cd_latch_free[cd]))
                    .max()
                    .unwrap_or(0)
            };
            match r.kind {
                PlanKind::RowHit => {
                    let f = io_free(b, mask, pause_mask);
                    gate(at < f, "CD sense/drive I/O", f);
                }
                PlanKind::Underfetch => {
                    let f = io_free(b, mask, pause_mask);
                    gate(at < f, "CD sense/drive I/O", f);
                    let l = latch_free(b, mask);
                    gate(at < l, "CD row-buffer latch", l);
                }
                PlanKind::Activate => {
                    if !row_open {
                        if pausing {
                            gate(at < sag.wordline_free, "SAG wordline", sag.wordline_free);
                        } else {
                            gate(at < sag.quiesce, "SAG quiesce (row switch)", sag.quiesce);
                            gate(at < sag.wordline_free, "SAG wordline", sag.wordline_free);
                        }
                    }
                    if partial {
                        let f = io_free(b, mask, pause_mask);
                        gate(at < f, "CD sense/drive I/O", f);
                        let l = latch_free(b, mask);
                        gate(at < l, "CD row-buffer latch", l);
                    } else {
                        let f = all_free(b);
                        gate(at < f, "full row buffer (partial activation off)", f);
                    }
                }
                PlanKind::Write => {
                    let f = io_free(b, mask, 0);
                    gate(at < f, "CD sense/drive I/O", f);
                    let l = latch_free(b, mask);
                    gate(at < l, "CD row-buffer latch", l);
                    if !row_open {
                        gate(at < sag.quiesce, "SAG quiesce (row switch)", sag.quiesce);
                        gate(at < sag.wordline_free, "SAG wordline", sag.wordline_free);
                    }
                }
            }

            // 3. Device minimum latency for the kind.
            let pause_extra = if pausing { PAUSE_OVERHEAD.raw() } else { 0 };
            let delta = match r.kind {
                PlanKind::RowHit => t.t_cas,
                PlanKind::Underfetch => t.t_rcd + t.t_cas,
                PlanKind::Activate => pause_extra + t.t_rcd + t.t_cas,
                PlanKind::Write => t.t_cwd + if row_open { 0 } else { t.t_rcd },
            };
            let earliest_legal = at + delta;
            if data_start < earliest_legal {
                report.violations.push(OracleViolation::MinimumLatency {
                    at,
                    bank,
                    kind: r.kind,
                    data_start,
                    earliest_legal,
                });
            }

            // 4. Rook placement on the in-flight set, then the commit
            //    effects (per the *recorded* kind, so the replay tracks the
            //    state the real bank reached even through a violation).
            let cmd = data_start.saturating_sub(delta);
            let data_end = data_start + t.t_burst;
            b.inflight.retain(|fl| fl.until > cmd);
            if r.kind != PlanKind::RowHit {
                for fl in &b.inflight {
                    if pausing && fl.is_write && fl.sag == r.coord.sag {
                        // The architected exception: a pausing read reuses
                        // the paused write's tile resources.
                        continue;
                    }
                    let overlap = fl.mask & mask & !pause_mask;
                    if overlap != 0 {
                        report.violations.push(OracleViolation::CdOverlap {
                            at,
                            bank,
                            cd: overlap.trailing_zeros(),
                        });
                    }
                    if !pausing && fl.sag == r.coord.sag && fl.row != r.row {
                        report.violations.push(OracleViolation::SagRowConflict {
                            at,
                            bank,
                            sag: r.coord.sag,
                            row: r.row,
                            in_flight: fl.row,
                        });
                    }
                }
            }

            let completion;
            match r.kind {
                PlanKind::RowHit => {
                    for cd in 0..cds {
                        if mask & (1u128 << cd) != 0 {
                            b.cd_latch_free[cd] = b.cd_latch_free[cd].max(data_end);
                        }
                    }
                    let s = &mut b.sags[si];
                    s.quiesce = s.quiesce.max(data_end);
                    completion = data_end;
                }
                PlanKind::Underfetch => {
                    for cd in 0..cds {
                        if mask & (1u128 << cd) != 0 {
                            b.cd_io_free[cd] = data_start;
                            b.cd_latch_free[cd] = data_end;
                        }
                    }
                    if pausing {
                        // A pausing underfetch takes over the paused
                        // write's overlapping CDs (the FSM reassigns their
                        // I/O windows without re-extending them): the
                        // write's remaining exclusivity is the SAG lock,
                        // so drop the ceded CDs from its rook footprint.
                        for fl in &mut b.inflight {
                            if fl.is_write && fl.sag == r.coord.sag {
                                fl.mask &= !mask;
                            }
                        }
                    }
                    for s in &mut b.sags {
                        s.sensed &= !mask;
                    }
                    let s = &mut b.sags[si];
                    s.sensed |= mask;
                    s.quiesce = s.quiesce.max(data_end);
                    completion = data_end;
                    b.inflight.push(Flight {
                        sag: r.coord.sag,
                        mask,
                        row: r.row,
                        until: data_end,
                        is_write: false,
                    });
                }
                PlanKind::Activate => {
                    if partial {
                        for cd in 0..cds {
                            if mask & (1u128 << cd) != 0 {
                                b.cd_io_free[cd] = data_start;
                                b.cd_latch_free[cd] = data_end;
                            }
                        }
                        for s in &mut b.sags {
                            s.sensed &= !mask;
                        }
                    } else {
                        let act_done = cmd + t.t_rcd;
                        for cd in 0..cds {
                            b.cd_io_free[cd] = b.cd_io_free[cd].max(act_done);
                        }
                        for cd in 0..cds {
                            if mask & (1u128 << cd) != 0 {
                                b.cd_io_free[cd] = data_start;
                                b.cd_latch_free[cd] = data_end;
                            }
                        }
                        for s in &mut b.sags {
                            s.sensed = 0;
                        }
                    }
                    let s = &mut b.sags[si];
                    s.open_row = Some(r.row);
                    s.wordline_free = cmd + t.t_rcd;
                    s.sensed = if partial { mask } else { full_mask };
                    s.quiesce = s.quiesce.max(data_end);
                    completion = data_end;
                    b.inflight.push(Flight {
                        sag: r.coord.sag,
                        mask: if partial { mask } else { full_mask },
                        row: r.row,
                        until: data_end,
                        is_write: false,
                    });
                    if pausing {
                        let extension = data_end.saturating_sub(cmd) + PAUSE_OVERHEAD.raw();
                        let s = &mut b.sags[si];
                        s.lock += extension;
                        s.quiesce = s.quiesce.max(s.lock);
                        let (write_cds, new_lock, write_sag) = (s.write_cds, s.lock, r.coord.sag);
                        for cd in 0..cds {
                            if write_cds & (1u128 << cd) != 0 {
                                b.cd_io_free[cd] = b.cd_io_free[cd].max(new_lock);
                            }
                        }
                        for fl in &mut b.inflight {
                            if fl.is_write && fl.sag == write_sag {
                                fl.until = fl.until.max(new_lock);
                            }
                        }
                    }
                }
                PlanKind::Write => {
                    let program = t.t_wp * u64::from(r.retries + 1);
                    completion = data_end + program + t.t_wr;
                    for cd in 0..cds {
                        if mask & (1u128 << cd) != 0 {
                            b.cd_io_free[cd] = completion;
                        }
                    }
                    for s in &mut b.sags {
                        s.sensed &= !mask;
                    }
                    let s = &mut b.sags[si];
                    if s.open_row != Some(r.row) {
                        s.open_row = Some(r.row);
                        s.sensed = 0;
                        s.wordline_free = cmd + t.t_rcd;
                    }
                    s.lock = completion;
                    s.write_cds = mask;
                    s.write_row = r.row;
                    s.quiesce = s.quiesce.max(completion);
                    if !background {
                        b.write_block_until = completion;
                    }
                    b.inflight.push(Flight {
                        sag: r.coord.sag,
                        mask,
                        row: r.row,
                        until: completion,
                        is_write: true,
                    });
                }
            }
            if shared_col {
                b.next_col = cmd + t.t_ccd;
            }
            if !multi {
                b.serial_until = b.serial_until.max(completion);
            }
            report.max_tile_concurrency = report.max_tile_concurrency.max(b.inflight.len() as u32);
        }
    }

    fn replay_baseline(&self, records: &[CommandRecord], report: &mut OracleReport) {
        let t = self.timing;
        let mut banks: HashMap<usize, BaselineReplay> = HashMap::new();
        let mut last_at = 0u64;
        for r in records {
            let at = r.at.raw();
            let data_start = r.data_start.raw();
            let bank = r.bank_index;
            if at < last_at {
                report.violations.push(OracleViolation::OutOfOrder {
                    at,
                    bank,
                    prev: last_at,
                });
            }
            last_at = last_at.max(at);
            let b = banks.entry(bank).or_default();
            let row_open = b.open_row == Some(r.row);
            let is_read = r.op.is_read();

            let expected = if !is_read {
                PlanKind::Write
            } else if row_open {
                PlanKind::RowHit
            } else {
                PlanKind::Activate
            };
            if r.kind != expected {
                report.violations.push(OracleViolation::KindMismatch {
                    at,
                    bank,
                    recorded: r.kind,
                    expected,
                });
            }

            let column_ready = b.act_done.max(b.next_col);
            let row_switch_ready = b.quiesce + t.t_rp;
            let mut gate = |cond: bool, name: &'static str, free_at: u64| {
                if cond {
                    report.violations.push(OracleViolation::GateBusy {
                        at,
                        bank,
                        gate: name,
                        free_at,
                    });
                }
            };
            let delta = match r.kind {
                PlanKind::RowHit => {
                    gate(at < column_ready, "column path", column_ready);
                    t.t_cas
                }
                PlanKind::Activate | PlanKind::Underfetch => {
                    gate(
                        at < row_switch_ready,
                        "bank quiesce + tRP",
                        row_switch_ready,
                    );
                    t.t_rcd + t.t_cas
                }
                PlanKind::Write => {
                    if row_open {
                        gate(at < column_ready, "column path", column_ready);
                        t.t_cwd
                    } else {
                        gate(
                            at < row_switch_ready,
                            "bank quiesce + tRP",
                            row_switch_ready,
                        );
                        t.t_rcd + t.t_cwd
                    }
                }
            };
            let earliest_legal = at + delta;
            if data_start < earliest_legal {
                report.violations.push(OracleViolation::MinimumLatency {
                    at,
                    bank,
                    kind: r.kind,
                    data_start,
                    earliest_legal,
                });
            }

            let cmd = data_start.saturating_sub(delta);
            let data_end = data_start + t.t_burst;
            match r.kind {
                PlanKind::RowHit => {
                    b.next_col = cmd + t.t_ccd;
                    b.quiesce = b.quiesce.max(data_end);
                }
                PlanKind::Activate | PlanKind::Underfetch => {
                    b.open_row = Some(r.row);
                    b.act_done = cmd + t.t_rcd;
                    b.next_col = b.act_done + t.t_ccd;
                    b.quiesce = b.quiesce.max(data_end);
                }
                PlanKind::Write => {
                    let completion = data_end + t.t_wp * u64::from(r.retries + 1) + t.t_wr;
                    if !row_open {
                        b.act_done = cmd + t.t_rcd;
                    }
                    b.open_row = None;
                    b.next_col = completion;
                    b.quiesce = b.quiesce.max(completion);
                }
            }
        }
        // The monolithic bank never has more than one tile op in flight.
        report.max_tile_concurrency = report
            .max_tile_concurrency
            .max(u32::from(!records.is_empty()));
    }
}

/// Everything `fgnvm-repro -- check` reports for one configuration.
#[derive(Debug)]
pub struct CheckOutcome {
    /// One oracle report per channel.
    pub reports: Vec<OracleReport>,
    /// Whole-run conservation invariants.
    pub invariants: InvariantReport,
    /// Total commands audited across channels.
    pub commands: usize,
}

impl CheckOutcome {
    /// True when every channel's audit and every invariant passed.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(OracleReport::is_clean) && self.invariants.is_clean()
    }

    /// Total violations across channels plus failed invariants.
    pub fn violation_count(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.violations.len() + r.protocol.violations.len())
            .sum::<usize>()
            + self.invariants.failures.len()
    }
}

/// Runs a mixed read/write workload on `config` with command logging and
/// the observer enabled, then audits every channel's log through the
/// [`Oracle`] and checks the whole-run conservation invariants. This is
/// the engine behind `fgnvm-repro -- check <cfg>`.
///
/// # Errors
///
/// Returns a description of the failure if the configuration is invalid or
/// the run itself stalls (watchdog).
pub fn run_and_audit(config: &SystemConfig, ops: usize, seed: u64) -> Result<CheckOutcome, String> {
    config.validate().map_err(|e| e.to_string())?;
    let core =
        fgnvm_cpu::Core::new(fgnvm_cpu::CoreConfig::nehalem_like()).map_err(|e| e.to_string())?;
    let mut memory = MemorySystem::new(*config).map_err(|e| e.to_string())?;
    memory.set_fast_forward(true);
    memory.enable_command_log(1 << 20);
    memory.enable_observer();
    memory.enable_telemetry(2_000, 64, 128);
    // A read-dominated and a write-heavy profile back to back, mirroring
    // the observe command, so row hits, underfetches, backgrounded writes,
    // pauses and retries all appear in one audited stream.
    let mut records = Vec::new();
    for name in ["milc_like", "lbm_like"] {
        let trace = fgnvm_workloads::profile(name)
            .expect("known profile")
            .generate(config.geometry, seed, ops / 2);
        records.extend_from_slice(trace.records());
    }
    let trace = fgnvm_cpu::Trace::new("check-mix", records);
    core.run(&trace, &mut memory);

    let oracle = Oracle::new(config).map_err(|e| e.to_string())?;
    let mut reports = Vec::new();
    let mut commands = 0;
    for channel in 0..config.geometry.channels() {
        let report = oracle.audit(memory.command_log(channel));
        commands += report.commands;
        reports.push(report);
    }
    let obs = memory.take_observer().expect("observer enabled above");
    let invariants = invariants::standard_report(config, &memory, Some(&obs));
    Ok(CheckOutcome {
        reports,
        invariants,
        commands,
    })
}
