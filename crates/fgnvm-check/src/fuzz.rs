//! Shrinking command-sequence fuzzer for the raw [`MemorySystem`] API.
//!
//! The unit and differential tiers exercise curated workloads; the fuzzer
//! explores the space the curated tiers never reach — adversarial
//! interleavings, degenerate geometries (1×1 up to 32×32 tiles), fault
//! injection, and both stepping modes. Every generated [`FuzzCase`] is
//! executed end to end and judged by the independent correctness layer:
//! the [`Oracle`] audits the command stream, the
//! [`invariants`] check conservation, panics are caught
//! and the watchdog bounds runaway cases. A failing case is shrunk —
//! chunk-deletion over the op sequence, then field simplification — to a
//! minimal reproducer renderable as a [`.case` file](crate::case) that
//! `fgnvm-repro -- fuzz <file>` replays.
//!
//! Generation is fully deterministic: every case is a pure function of
//! `(seed, index)` via [`derive_seed`](crate::derive_seed)/[`splitmix64`], so a failure
//! message's seed always reproduces the run.

use std::panic::{catch_unwind, AssertUnwindSafe};

use fgnvm_mem::MemorySystem;
use fgnvm_types::config::{ReliabilityConfig, SystemConfig};
use fgnvm_types::{Completion, Op, PhysAddr, RequestId};

use crate::case::render_case;
use crate::invariants;
use crate::oracle::Oracle;
use crate::seed::splitmix64;

/// Which system model a fuzz case drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzModel {
    /// Monolithic PCM bank (the paper's baseline).
    Baseline,
    /// FgNVM with partial activation + backgrounded writes.
    Fgnvm,
    /// FgNVM with a 2-wide Multi-Issue column path.
    MultiIssue,
    /// FgNVM with write pausing enabled.
    Pausing,
    /// The DRAM contrast model.
    Dram,
}

impl FuzzModel {
    /// Every model, in generation-palette order.
    pub const ALL: [FuzzModel; 5] = [
        FuzzModel::Baseline,
        FuzzModel::Fgnvm,
        FuzzModel::MultiIssue,
        FuzzModel::Pausing,
        FuzzModel::Dram,
    ];

    /// Models the chaos knob is meaningful for (the knob lives in the
    /// tile-aware scheduler path; DRAM would just mask it).
    pub const CHAOS_ELIGIBLE: [FuzzModel; 3] =
        [FuzzModel::Fgnvm, FuzzModel::MultiIssue, FuzzModel::Pausing];

    /// The `.case`-file name of this model.
    pub fn name(self) -> &'static str {
        match self {
            FuzzModel::Baseline => "baseline",
            FuzzModel::Fgnvm => "fgnvm",
            FuzzModel::MultiIssue => "multi_issue",
            FuzzModel::Pausing => "pausing",
            FuzzModel::Dram => "dram",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Self> {
        FuzzModel::ALL.into_iter().find(|m| m.name() == name)
    }
}

/// One fuzzed memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzOp {
    /// Write (true) or read (false).
    pub write: bool,
    /// Cache-line index; reduced modulo the configuration's capacity.
    pub line: u64,
    /// Cycles to step the clock before the next enqueue.
    pub gap: u32,
    /// Tenant the request is billed to (0 in single-stream cases).
    pub tenant: u16,
}

/// A complete, replayable fuzz input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// The system model under test.
    pub model: FuzzModel,
    /// Subarray groups per bank (ignored by `baseline`/`dram`).
    pub sags: u32,
    /// Column divisions per bank (ignored by `baseline`/`dram`).
    pub cds: u32,
    /// Enable the device fault model (verify retries, ECC, bit errors).
    pub faulty: bool,
    /// Run with event-driven fast-forward instead of cycle stepping.
    pub fast_forward: bool,
    /// Enable the test-only illegal-issue knob (the deliberate scheduler
    /// mutation the oracle must catch).
    pub chaos: bool,
    /// Tenant slots the case exercises (0 = legacy single-stream case).
    /// When nonzero, ops carry tenant tags below this count; the highest
    /// slot is deliberately zero-rate, so silent-tenant accounting is
    /// fuzzed too.
    pub tenants: u16,
    /// The operation sequence.
    pub ops: Vec<FuzzOp>,
}

impl FuzzCase {
    /// Builds the [`SystemConfig`] this case drives.
    ///
    /// # Errors
    ///
    /// Returns the configuration error for inadmissible geometry.
    pub fn build_config(&self) -> Result<SystemConfig, String> {
        let base = match self.model {
            FuzzModel::Baseline => Ok(SystemConfig::baseline()),
            FuzzModel::Fgnvm => SystemConfig::fgnvm(self.sags, self.cds).map_err(|e| e.to_string()),
            FuzzModel::MultiIssue => {
                SystemConfig::fgnvm_multi_issue(self.sags, self.cds, 2).map_err(|e| e.to_string())
            }
            FuzzModel::Pausing => {
                SystemConfig::fgnvm_with_pausing(self.sags, self.cds).map_err(|e| e.to_string())
            }
            FuzzModel::Dram => Ok(SystemConfig::dram()),
        }?;
        let config = if self.faulty {
            base.with_reliability(ReliabilityConfig {
                enabled: true,
                fault_seed: 0xfa57,
                rber: 1e-4,
                write_fail_prob: 0.02,
                max_write_retries: 2,
                ecc_correctable_bits: 2,
                ecc_decode_penalty_cycles: 8,
                wear_stuck_threshold: 0,
                ..ReliabilityConfig::default()
            })
        } else {
            base
        };
        config.validate().map_err(|e| e.to_string())?;
        Ok(config)
    }
}

/// What a successfully executed case looked like.
#[derive(Debug)]
pub struct CaseReport {
    /// Requests the controller accepted.
    pub accepted: usize,
    /// Commands the oracle audited across channels.
    pub commands: usize,
    /// Peak per-bank tile concurrency the oracle observed.
    pub max_tile_concurrency: u32,
    /// The cycle the run went idle at.
    pub final_cycle: u64,
    /// FNV-1a 64 digest of the full end-of-run system snapshot — the
    /// strongest equality the kill/resume differential can demand: two
    /// runs with equal digests ended in bit-identical simulator states
    /// (stats, queues, bank FSMs, command logs, observer and all).
    pub state_digest: u64,
}

/// Runs one case end to end and judges it with the full correctness
/// layer. `Err` carries a human-readable description of the first
/// failure: an oracle/protocol violation, a broken invariant, a watchdog
/// stall, or a caught panic.
pub fn execute_case(case: &FuzzCase) -> Result<CaseReport, String> {
    execute_case_with_kill(case, None)
}

/// Like [`execute_case`], but additionally simulates a crash: when the
/// clock first reaches `kill_cycle` (or just before the final drain, if
/// the run never gets there), the entire system state is checkpointed,
/// the [`MemorySystem`] is dropped, and a fresh one is restored from the
/// blob to finish the run. The returned report — including the
/// full-state digest — must be identical to the uninterrupted run's.
pub fn execute_case_with_kill(
    case: &FuzzCase,
    kill_cycle: Option<u64>,
) -> Result<CaseReport, String> {
    let case = case.clone();
    catch_unwind(AssertUnwindSafe(move || execute_inner(&case, kill_cycle))).unwrap_or_else(
        |payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("panicked: {msg}"))
        },
    )
}

/// Snapshot → drop → restore, in place: the crash the kill/resume
/// differential injects.
fn crash_and_restore(memory: &mut MemorySystem, chaos: bool) -> Result<(), String> {
    let blob = memory.save_snapshot();
    let config = *memory.config();
    *memory = MemorySystem::restore(config, &blob)
        .map_err(|e| format!("restore after simulated crash: {e}"))?;
    if chaos {
        // The test-only mutation knob is debug state, deliberately
        // outside the checkpoint; re-arm it like a harness would.
        memory.debug_force_illegal_issue(true);
    }
    Ok(())
}

/// Advances to `target`, injecting the pending crash exactly at
/// `kill_cycle` if the hop would cross it.
fn advance_with_kill(
    memory: &mut MemorySystem,
    target: fgnvm_types::Cycle,
    completions: &mut Vec<Completion>,
    kill: &mut Option<u64>,
    chaos: bool,
) -> Result<(), String> {
    if let Some(k) = *kill {
        if memory.now().raw() <= k && target.raw() >= k {
            if memory.now().raw() < k {
                memory.tick_to(fgnvm_types::Cycle::new(k), completions);
            }
            crash_and_restore(memory, chaos)?;
            *kill = None;
        }
    }
    if memory.now() < target {
        memory.tick_to(target, completions);
    }
    Ok(())
}

fn execute_inner(case: &FuzzCase, mut kill: Option<u64>) -> Result<CaseReport, String> {
    let config = case.build_config()?;
    let mut memory = MemorySystem::new(config).map_err(|e| e.to_string())?;
    memory.set_fast_forward(case.fast_forward);
    memory.enable_command_log(1 << 20);
    memory.enable_observer();
    // Small windows + tiny ring: boundary rolls, retention eviction, and
    // the window-vs-cumulative conservation rule all get exercised (and,
    // with --kill-resume, the telemetry snapshot round-trip too).
    memory.enable_telemetry(512, 16, 64);
    // Audit every fuzz case too: the decision-audit conservation rule
    // then runs as part of every standard report (and the audit log's
    // snapshot round-trip is exercised by --kill-resume).
    memory.enable_audit();
    if case.chaos {
        memory.debug_force_illegal_issue(true);
    }
    let line_bytes = u64::from(config.geometry.line_bytes());
    let lines = config.geometry.capacity_bytes() / line_bytes;
    let mut accepted: Vec<RequestId> = Vec::new();
    let mut completions: Vec<Completion> = Vec::new();
    for op in &case.ops {
        let addr = PhysAddr::new((op.line % lines.max(1)) * line_bytes);
        let kind = if op.write { Op::Write } else { Op::Read };
        let mut id = memory.enqueue_for(kind, addr, op.tenant);
        if id.is_none() {
            // Queue full: drain a bounded window, then retry once. A still
            // -full queue after 64k cycles is a stall the watchdog below
            // would also catch; just drop the op.
            let target = fgnvm_types::Cycle::new(memory.now().raw() + 65_536);
            advance_with_kill(&mut memory, target, &mut completions, &mut kill, case.chaos)?;
            id = memory.enqueue_for(kind, addr, op.tenant);
        }
        if let Some(id) = id {
            accepted.push(id);
        }
        if op.gap > 0 {
            let target = fgnvm_types::Cycle::new(memory.now().raw() + u64::from(op.gap));
            advance_with_kill(&mut memory, target, &mut completions, &mut kill, case.chaos)?;
        }
    }
    if kill.is_some() {
        // The op sequence never reached the kill cycle: crash right
        // before the final drain instead, so every case still exercises
        // a restore somewhere.
        crash_and_restore(&mut memory, case.chaos)?;
    }
    completions.extend(
        memory
            .try_run_until_idle(100_000)
            .map_err(|e| format!("watchdog: {e:?}"))?,
    );

    let oracle = Oracle::new(&config).map_err(|e| e.to_string())?;
    let mut commands = 0;
    let mut max_conc = 0;
    for channel in 0..config.geometry.channels() {
        let report = oracle.audit(memory.command_log(channel));
        commands += report.commands;
        max_conc = max_conc.max(report.max_tile_concurrency);
        if !report.is_clean() {
            let first = report
                .violations
                .first()
                .map(ToString::to_string)
                .or_else(|| report.protocol.violations.first().map(|v| format!("{v:?}")))
                .unwrap_or_default();
            return Err(format!(
                "channel {channel}: {} oracle + {} protocol violation(s); first: {first}",
                report.violations.len(),
                report.protocol.violations.len()
            ));
        }
    }
    // Digest the full end state before the observer moves out: this is
    // what the kill/resume differential compares.
    let final_cycle = memory.now().raw();
    let state_digest = fgnvm_types::fnv1a64(&memory.save_snapshot());
    let observer = memory.take_observer().expect("observer enabled above");
    let mut inv = invariants::standard_report(&config, &memory, Some(&observer));
    inv.merge(invariants::check_completions(&accepted, &completions));
    if !inv.is_clean() {
        return Err(format!("invariant failure: {}", inv.failures.join("; ")));
    }
    Ok(CaseReport {
        accepted: accepted.len(),
        commands,
        max_tile_concurrency: max_conc,
        final_cycle,
        state_digest,
    })
}

/// Fuzzer knobs.
#[derive(Debug, Clone, Copy)]
pub struct FuzzOptions {
    /// Cases to generate and run.
    pub cases: usize,
    /// Master seed; every case derives deterministically from it.
    pub seed: u64,
    /// Upper bound on ops per generated case.
    pub max_ops: usize,
    /// Enable the illegal-issue chaos knob in every generated case
    /// (restricting models to the tile-aware ones). Used by the
    /// mutation-detection tests; real fuzz runs leave this off.
    pub chaos: bool,
    /// Kill/resume differential mode: run every case twice — once
    /// straight and once crashed at a deterministically derived cycle
    /// (checkpoint → drop → restore) — and fail on ANY divergence in the
    /// final full-state digest, proving checkpoint/restore is exact at
    /// arbitrary kill points.
    pub kill_resume: bool,
    /// Multi-tenant mode: every generated case tags its ops with 2–4
    /// tenant slots — one deliberately zero-rate, one bursty — so the
    /// tenant-conservation invariant and the per-tenant checkpoint state
    /// get fuzzed. Off by default so legacy case streams stay
    /// byte-reproducible from their seeds.
    pub tenants: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            cases: 64,
            seed: crate::derive_seed("fgnvm-check::fuzz", 0),
            max_ops: 96,
            chaos: false,
            kill_resume: false,
            tenants: false,
        }
    }
}

/// A fuzz failure with its minimized reproducer.
#[derive(Debug)]
pub struct FuzzFailure {
    /// Case index within the run (`derive_seed(label, index)` reproduces it).
    pub index: usize,
    /// The originally generated failing case.
    pub original: FuzzCase,
    /// The shrunk, minimal failing case.
    pub shrunk: FuzzCase,
    /// The failure message of the shrunk case.
    pub message: String,
}

impl FuzzFailure {
    /// The shrunk reproducer in `.case` format.
    pub fn case_file(&self) -> String {
        render_case(&self.shrunk)
    }
}

/// Outcome of a fuzz run.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Cases generated and executed (stops early on the first failure).
    pub cases_run: usize,
    /// The first failure, if any, already shrunk.
    pub failure: Option<FuzzFailure>,
}

/// Generates the `index`-th case of a run seeded with `seed`.
pub fn generate_case(
    seed: u64,
    index: usize,
    max_ops: usize,
    chaos: bool,
    tenant_mode: bool,
) -> FuzzCase {
    let mut rng = crate::derive_seed("fgnvm-check::fuzz-case", seed ^ (index as u64) << 1);
    let mut next = move || splitmix64(&mut rng);
    let model = if chaos {
        FuzzModel::CHAOS_ELIGIBLE[(next() % 3) as usize]
    } else {
        FuzzModel::ALL[(next() % 5) as usize]
    };
    const DIMS: [u32; 6] = [1, 2, 4, 8, 16, 32];
    let sags = DIMS[(next() % 6) as usize];
    let cds = DIMS[(next() % 6) as usize];
    // 2–4 tenant slots; the highest slot never sends (zero-rate), and one
    // of the active slots fires its ops in gapless bursts.
    let tenants: u16 = if tenant_mode {
        2 + (next() % 3) as u16
    } else {
        0
    };
    let active = u64::from(tenants.saturating_sub(1)).max(1);
    let bursty: u16 = if tenant_mode {
        (next() % active) as u16
    } else {
        0
    };
    let mut burst_left = 0u32;
    let n_ops = 1 + (next() as usize) % max_ops.max(1);
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let write = next() % 100 < 40;
        // Bias hard toward a small hot set so rows and tiles actually
        // contend; the cold tail still probes the full address space.
        let line = match next() % 4 {
            0..=2 => next() % 64,
            _ => next() % (1 << 20),
        };
        let gap = match next() % 8 {
            0..=4 => 0,
            5 | 6 => (next() % 64) as u32,
            _ => (next() % 2048) as u32,
        };
        let (tenant, gap) = if !tenant_mode {
            (0, gap)
        } else if burst_left > 0 {
            burst_left -= 1;
            (bursty, 0)
        } else if next() % 6 == 0 {
            burst_left = 1 + (next() % 5) as u32;
            (bursty, 0)
        } else {
            ((next() % active) as u16, gap)
        };
        ops.push(FuzzOp {
            write,
            line,
            gap,
            tenant,
        });
    }
    FuzzCase {
        model,
        sags,
        cds,
        faulty: next() % 4 == 0,
        fast_forward: next() % 2 == 0,
        chaos,
        tenants,
        ops,
    }
}

/// Runs the fuzzer: generate, execute, and on the first failure shrink to
/// a minimal reproducer.
pub fn fuzz(opts: &FuzzOptions) -> FuzzOutcome {
    for index in 0..opts.cases {
        let mut case = generate_case(opts.seed, index, opts.max_ops, opts.chaos, opts.tenants);
        if case.build_config().is_err() {
            // Inadmissible geometry for this model; fall back to the
            // canonical paper grid rather than wasting the slot.
            case.sags = 8;
            case.cds = 2;
        }
        if let Err(message) = execute_case(&case) {
            let (shrunk, message) = shrink(&case, message);
            return FuzzOutcome {
                cases_run: index + 1,
                failure: Some(FuzzFailure {
                    index,
                    original: case,
                    shrunk,
                    message,
                }),
            };
        }
        if opts.kill_resume {
            if let Some(message) = kill_resume_divergence(&case, opts.seed, index) {
                // Shrinking minimizes against plain execute_case, which
                // cannot reproduce a divergence; report the case as-is.
                return FuzzOutcome {
                    cases_run: index + 1,
                    failure: Some(FuzzFailure {
                        index,
                        original: case.clone(),
                        shrunk: case,
                        message,
                    }),
                };
            }
        }
    }
    FuzzOutcome {
        cases_run: opts.cases,
        failure: None,
    }
}

/// Runs `case` straight and with a crash at a deterministically derived
/// kill cycle, returning a failure message if the two final full-state
/// digests (or reports) diverge. The kill cycle is drawn inside the
/// straight run's observed length, so it genuinely lands mid-flight.
fn kill_resume_divergence(case: &FuzzCase, seed: u64, index: usize) -> Option<String> {
    let straight = match execute_case(case) {
        Ok(report) => report,
        // A case that fails cleanly is handled by the main fuzz path.
        Err(_) => return None,
    };
    let mut rng = crate::derive_seed("fgnvm-check::kill-cycle", seed ^ index as u64);
    let kill_cycle = splitmix64(&mut rng) % straight.final_cycle.max(1);
    match execute_case_with_kill(case, Some(kill_cycle)) {
        Ok(resumed) => {
            if resumed.state_digest != straight.state_digest
                || resumed.accepted != straight.accepted
                || resumed.commands != straight.commands
                || resumed.final_cycle != straight.final_cycle
            {
                Some(format!(
                    "kill/resume divergence at cycle {kill_cycle}: straight \
                     (accepted {}, commands {}, end cy{}, digest {:016x}) vs resumed \
                     (accepted {}, commands {}, end cy{}, digest {:016x})",
                    straight.accepted,
                    straight.commands,
                    straight.final_cycle,
                    straight.state_digest,
                    resumed.accepted,
                    resumed.commands,
                    resumed.final_cycle,
                    resumed.state_digest
                ))
            } else {
                None
            }
        }
        Err(message) => Some(format!(
            "kill/resume at cycle {kill_cycle} failed where the straight run \
             passed: {message}"
        )),
    }
}

/// Budgeted executions during shrinking; keeps pathological cases from
/// turning one failure into a minutes-long minimization.
const SHRINK_BUDGET: usize = 400;

/// Minimizes `case`, preserving failure. Returns the smallest failing
/// variant found and its failure message.
fn shrink(case: &FuzzCase, mut message: String) -> (FuzzCase, String) {
    let mut best = case.clone();
    let mut budget = SHRINK_BUDGET;
    let fails = |candidate: &FuzzCase, budget: &mut usize| -> Option<String> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        execute_case(candidate).err()
    };

    // Pass 1: delete chunks of ops, halving the chunk size. Restart from
    // the large chunks after any successful deletion.
    let mut chunk = best.ops.len().max(1).next_power_of_two();
    while chunk >= 1 {
        let mut start = 0;
        let mut deleted_any = false;
        while start < best.ops.len() {
            let end = (start + chunk).min(best.ops.len());
            let mut candidate = best.clone();
            candidate.ops.drain(start..end);
            if candidate.ops.is_empty() {
                start = end;
                continue;
            }
            if let Some(msg) = fails(&candidate, &mut budget) {
                best = candidate;
                message = msg;
                deleted_any = true;
                // Same start now points at fresh ops.
            } else {
                start = end;
            }
        }
        if deleted_any && chunk < best.ops.len() {
            chunk = best.ops.len().next_power_of_two();
        } else {
            chunk /= 2;
        }
        if budget == 0 {
            break;
        }
    }

    // Pass 2: simplify fields while the case still fails.
    let try_edit = |best: &mut FuzzCase,
                    message: &mut String,
                    budget: &mut usize,
                    edit: &dyn Fn(&mut FuzzCase)| {
        let mut candidate = best.clone();
        edit(&mut candidate);
        if candidate == *best {
            return;
        }
        if let Some(msg) = fails(&candidate, budget) {
            *best = candidate;
            *message = msg;
        }
    };
    try_edit(&mut best, &mut message, &mut budget, &|c| c.faulty = false);
    try_edit(&mut best, &mut message, &mut budget, &|c| {
        c.fast_forward = false
    });
    try_edit(&mut best, &mut message, &mut budget, &|c| c.chaos = false);
    try_edit(&mut best, &mut message, &mut budget, &|c| {
        // Collapse tenancy entirely: if the failure survives, it has
        // nothing to do with multi-tenant accounting.
        c.tenants = 0;
        for op in &mut c.ops {
            op.tenant = 0;
        }
    });
    for dims in [(1, 1), (2, 2), (4, 2), (8, 2)] {
        try_edit(&mut best, &mut message, &mut budget, &|c| {
            c.sags = dims.0;
            c.cds = dims.1;
        });
    }
    for i in 0..best.ops.len() {
        try_edit(&mut best, &mut message, &mut budget, &|c| c.ops[i].gap = 0);
        try_edit(&mut best, &mut message, &mut budget, &|c| {
            c.ops[i].line %= 64
        });
        try_edit(&mut best, &mut message, &mut budget, &|c| {
            c.ops[i].tenant = 0
        });
    }
    (best, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_case(7, 3, 64, false, false);
        let b = generate_case(7, 3, 64, false, false);
        assert_eq!(a, b);
        assert_ne!(a, generate_case(7, 4, 64, false, false));
    }

    #[test]
    fn chaos_generation_stays_on_tile_aware_models() {
        for index in 0..32 {
            let case = generate_case(11, index, 16, true, false);
            assert!(
                FuzzModel::CHAOS_ELIGIBLE.contains(&case.model),
                "chaos case {index} drew {:?}",
                case.model
            );
            assert!(case.chaos);
        }
    }

    #[test]
    fn tenant_generation_draws_a_silent_and_a_bursty_tenant() {
        let mut saw_burst = false;
        for index in 0..32 {
            let case = generate_case(23, index, 64, false, true);
            assert!(
                (2..=4).contains(&case.tenants),
                "case {index} drew {} tenant slots",
                case.tenants
            );
            // The highest slot is zero-rate: no op may ever use it.
            assert!(
                case.ops.iter().all(|op| op.tenant < case.tenants - 1),
                "case {index} billed an op to the zero-rate tenant"
            );
            saw_burst |= case
                .ops
                .windows(2)
                .any(|w| w[0].tenant == w[1].tenant && w[0].gap == 0 && w[1].gap == 0);
        }
        assert!(saw_burst, "no gapless same-tenant burst in 32 cases");
        // Tenant mode never leaks into legacy generation.
        for index in 0..8 {
            let case = generate_case(23, index, 64, false, false);
            assert_eq!(case.tenants, 0);
            assert!(case.ops.iter().all(|op| op.tenant == 0));
        }
    }

    #[test]
    fn multi_tenant_fuzz_batch_with_kill_resume_is_clean() {
        let opts = FuzzOptions {
            cases: 12,
            seed: crate::derive_seed("fgnvm-check::tenant-fuzz-test", 0),
            max_ops: 48,
            chaos: false,
            kill_resume: true,
            tenants: true,
        };
        let outcome = fuzz(&opts);
        assert!(
            outcome.failure.is_none(),
            "multi-tenant fuzz failure: {}",
            outcome.failure.unwrap().message
        );
        assert_eq!(outcome.cases_run, 12);
    }

    #[test]
    fn a_legal_hand_written_case_executes_cleanly() {
        let case = FuzzCase {
            model: FuzzModel::Fgnvm,
            sags: 8,
            cds: 2,
            faulty: false,
            fast_forward: true,
            chaos: false,
            tenants: 0,
            ops: (0..24)
                .map(|i| FuzzOp {
                    write: i % 3 == 0,
                    line: i * 7,
                    gap: (i % 5 * 10) as u32,
                    tenant: 0,
                })
                .collect(),
        };
        let report = execute_case(&case).expect("legal case is clean");
        assert!(report.accepted > 0);
        assert!(report.commands > 0);
    }

    #[test]
    fn kill_and_resume_is_bit_identical_on_a_hand_written_case() {
        let case = FuzzCase {
            model: FuzzModel::Fgnvm,
            sags: 8,
            cds: 2,
            faulty: true,
            fast_forward: true,
            chaos: false,
            tenants: 0,
            ops: (0..32)
                .map(|i| FuzzOp {
                    write: i % 3 == 0,
                    line: i * 5,
                    gap: (i % 7 * 9) as u32,
                    tenant: 0,
                })
                .collect(),
        };
        let straight = execute_case(&case).expect("straight run is clean");
        // Kill at several points across the run, including cycle 0 and
        // one past the end (forcing the pre-drain crash).
        for kill in [
            0,
            straight.final_cycle / 3,
            straight.final_cycle / 2,
            u64::MAX,
        ] {
            let resumed = execute_case_with_kill(&case, Some(kill)).expect("resumed run is clean");
            assert_eq!(
                resumed.state_digest, straight.state_digest,
                "digest diverged for kill at {kill}"
            );
            assert_eq!(resumed.accepted, straight.accepted);
            assert_eq!(resumed.commands, straight.commands);
            assert_eq!(resumed.final_cycle, straight.final_cycle);
        }
    }

    #[test]
    fn kill_resume_fuzz_batch_finds_no_divergence() {
        let opts = FuzzOptions {
            cases: 16,
            seed: crate::derive_seed("fgnvm-check::kill-resume-test", 0),
            max_ops: 48,
            chaos: false,
            kill_resume: true,
            tenants: false,
        };
        let outcome = fuzz(&opts);
        assert!(
            outcome.failure.is_none(),
            "kill/resume divergence: {}",
            outcome.failure.unwrap().message
        );
        assert_eq!(outcome.cases_run, 16);
    }
}
