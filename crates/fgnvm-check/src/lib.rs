//! Independent correctness layer for the FgNVM simulator.
//!
//! The paper's core claim — up to `min(S, C)` concurrent accesses per bank,
//! legal iff in-flight operations occupy distinct (SAG, CD) pairs, with
//! partial-activation underfetch and backgrounded `tWP` writes — is enforced
//! by the bank FSMs in `fgnvm-bank`. This crate re-derives the same legality
//! envelope from first principles (geometry + timing parameters only) and
//! checks every run against it, so a scheduler or FSM bug cannot silently
//! inflate reported speedups:
//!
//! - [`oracle`] — an analytical reference model that replays the
//!   [`CommandLog`](fgnvm_mem::CommandLog) stream and flags every command
//!   the legal-concurrency envelope forbids (rook-placement admissibility,
//!   per-SAG single-open-row, per-CD single-sense, global column-path
//!   serialization, write-occupancy windows including `(1+k)·tWP`
//!   verify-retry extensions). The existing
//!   [`ProtocolChecker`](fgnvm_mem::ProtocolChecker) runs as part of every
//!   audit, so the two independent rule sets cross-check each other.
//! - [`invariants`] — conservation laws checked on whole runs: every
//!   accepted request completes exactly once, the five-component span
//!   decomposition sums exactly to end-to-end latency, energy is exactly
//!   the modeled constants times the bit counters, and the observability
//!   heatmap totals equal the bank counters.
//! - [`mod@fuzz`] — a shrinking command-sequence fuzzer driving the raw
//!   [`MemorySystem`](fgnvm_mem::MemorySystem) API with arbitrary
//!   interleavings, geometries, fault configs and stepping modes; failures
//!   minimize to a replayable [`case`] file.
//! - [`seed`] — the one deterministic seed-derivation helper shared by the
//!   fuzzer and the soak tests.
//!
//! `fgnvm-repro -- check <cfg>` and `-- fuzz` expose the oracle and fuzzer
//! on the command line; see `TESTING.md` at the repository root for the
//! full test taxonomy.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod case;
pub mod fuzz;
pub mod invariants;
pub mod oracle;
pub mod seed;

pub use case::{parse_case, render_case};
pub use fuzz::{
    execute_case, execute_case_with_kill, fuzz, CaseReport, FuzzCase, FuzzFailure, FuzzModel,
    FuzzOp, FuzzOptions, FuzzOutcome,
};
pub use invariants::{check_audit_conservation, check_tenant_conservation, InvariantReport};
pub use oracle::{run_and_audit, CheckOutcome, Oracle, OracleReport, OracleViolation};
pub use seed::derive_seed;
