//! Whole-run conservation invariants.
//!
//! Where the [`oracle`](crate::oracle) checks every individual command,
//! these checks assert *exact* global conservation laws over a finished
//! run. They are deliberately equalities, not tolerances (the one float
//! check uses a 1e-6 absolute epsilon): the quantities involved are all
//! integer counters, so any drift is a double-count or a leak, never
//! rounding.
//!
//! - **Span decomposition**: `queue + retry + bank + bus + tail == total`
//!   summed over every completed request, per operation class.
//! - **Attribution conservation**: the ten-bucket stall taxonomy sums
//!   exactly to end-to-end latency for every request, agrees with the
//!   independent span tracker in aggregate, and contains no unclassified
//!   command kinds or structurally illegal buckets.
//! - **Heatmap conservation**: the S×C tile grid's per-kind totals equal
//!   the bank counters the simulator kept independently.
//! - **Energy conservation**: sensing/programming energy is exactly the
//!   configured pJ/bit times the bit counters.
//! - **Time-series conservation**: summing every telemetry window (when
//!   the windowed engine is attached) reproduces the cumulative latency
//!   histograms, stall-attribution aggregates, and instant counters
//!   exactly.
//! - **Tenant conservation**: the controller's per-tenant counters and
//!   the telemetry engine's per-tenant window slices each fold exactly to
//!   their globals, and the two independently-tagged paths agree tenant
//!   by tenant — so billing a request to the wrong tenant is caught even
//!   when every global counter still balances.
//! - **Occupancy quiescence**: once the system reports idle, no bank
//!   resource may still claim a busy window in the future.
//! - **Exactly-once completion**: every accepted request id completes
//!   exactly once (checked by the fuzzer, which owns the id lists).

use std::fmt;

use fgnvm_bank::BankStats;
use fgnvm_mem::MemorySystem;
use fgnvm_obs::{Observer, StallCause};
use fgnvm_types::config::SystemConfig;
use fgnvm_types::{Completion, RequestId};

/// The outcome of an invariant pass.
#[derive(Debug, Default)]
pub struct InvariantReport {
    /// Names of the invariants that were actually evaluated.
    pub checked: Vec<&'static str>,
    /// Human-readable descriptions of every violated invariant.
    pub failures: Vec<String>,
}

impl InvariantReport {
    /// True when every evaluated invariant held.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: InvariantReport) {
        self.checked.extend(other.checked);
        self.failures.extend(other.failures);
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariants: {} checked, {} failed",
            self.checked.len(),
            self.failures.len()
        )?;
        for failure in &self.failures {
            writeln!(f, "  - {failure}")?;
        }
        Ok(())
    }
}

/// `queue + retry + bank + bus + tail == total`, exactly, per op class.
///
/// The span tracker records all six histograms from the same lifecycle
/// events, so both the counts and the cycle sums must agree; a mismatch
/// means a lifecycle hook fired twice or a span component was dropped.
pub fn check_span_sums(observer: &Observer) -> InvariantReport {
    let mut report = InvariantReport::default();
    report.checked.push("span-sums");
    for (class, b) in [
        ("read", &observer.spans.reads),
        ("write", &observer.spans.writes),
    ] {
        let parts = b.queue.sum() + b.retry.sum() + b.bank.sum() + b.bus.sum() + b.tail.sum();
        if parts != b.total.sum() {
            report.failures.push(format!(
                "span decomposition leak ({class}s): components sum to {parts} cycles but totals sum to {}",
                b.total.sum()
            ));
        }
        for (name, h) in [
            ("queue", &b.queue),
            ("retry", &b.retry),
            ("bank", &b.bank),
            ("bus", &b.bus),
            ("tail", &b.tail),
        ] {
            if h.count() != b.total.count() {
                report.failures.push(format!(
                    "span component count mismatch ({class}s): {name} recorded {} spans, total recorded {}",
                    h.count(),
                    b.total.count()
                ));
            }
        }
    }
    report
}

/// Attribution conservation: per request, the stall-taxonomy buckets sum
/// **exactly** to end-to-end latency, and the per-class aggregates agree
/// with both the per-request records and the independent five-component
/// span tracker. Also rejects unclassified command kinds and taxonomy
/// buckets that are illegal for the run (tFAW cycles without DRAM,
/// verify-retry cycles on reads).
pub fn check_attribution(observer: &Observer) -> InvariantReport {
    let mut report = InvariantReport::default();
    report.checked.push("attribution-conservation");
    let attr = &observer.attribution;
    let mut bad = 0usize;
    for r in &attr.requests {
        let latency = r.completion - r.arrival;
        if r.attributed() != latency {
            bad += 1;
            if bad <= 3 {
                report.failures.push(format!(
                    "attribution leak: request {} attributed {} cycles but lived {} \
                     (arrival {}, completion {})",
                    r.id,
                    r.attributed(),
                    latency,
                    r.arrival,
                    r.completion
                ));
            }
        }
        if r.is_read && r.cycles[StallCause::VerifyRetry as usize] != 0 {
            report.failures.push(format!(
                "attribution legality: read {} carries {} verify-retry cycles",
                r.id,
                r.cycles[StallCause::VerifyRetry as usize]
            ));
        }
    }
    if bad > 3 {
        report
            .failures
            .push(format!("attribution leak: {bad} requests total"));
    }
    for (class, totals, spans) in [
        ("read", &attr.reads, &observer.spans.reads),
        ("write", &attr.writes, &observer.spans.writes),
    ] {
        let per_request: u64 = attr
            .requests
            .iter()
            .filter(|r| r.is_read == (class == "read"))
            .map(|r| r.attributed())
            .sum();
        let aggregated: u64 = totals.cycles.iter().sum();
        if aggregated != per_request || aggregated != totals.total {
            report.failures.push(format!(
                "attribution aggregate drift ({class}s): buckets sum to {aggregated}, \
                 per-request records to {per_request}, totals counter says {}",
                totals.total
            ));
        }
        // Cross-check against the span tracker: both fold the same
        // lifecycle hooks, so the end-to-end totals must agree exactly.
        if totals.total != spans.total.sum() || totals.count != spans.total.count() {
            report.failures.push(format!(
                "attribution vs spans ({class}s): attribution saw {} requests / {} cycles, \
                 span tracker saw {} / {}",
                totals.count,
                totals.total,
                spans.total.count(),
                spans.total.sum()
            ));
        }
    }
    if attr.unclassified > 0 {
        report.failures.push(format!(
            "attribution taxonomy: {} command(s) with unrecognized plan kind",
            attr.unclassified
        ));
    }
    if attr.params().t_faw.is_none() {
        let faw = attr.reads.cycles[StallCause::TfawWindow as usize]
            + attr.writes.cycles[StallCause::TfawWindow as usize];
        if faw != 0 {
            report.failures.push(format!(
                "attribution legality: {faw} tFAW-window cycles attributed on a non-DRAM config"
            ));
        }
    }
    report
}

/// The heatmap's per-kind cell totals equal the bank counters.
///
/// `banks.reads` counts every committed read, so full activations (the
/// heatmap's catch-all kind) must be exactly the reads that were neither
/// row hits nor underfetches. (`banks.activations` is *not* comparable:
/// it also counts write row switches.)
pub fn check_heatmap_totals(observer: &Observer, banks: &BankStats) -> InvariantReport {
    let mut report = InvariantReport::default();
    report.checked.push("heatmap-totals");
    let cells = observer.heatmap.cells();
    let row_hits: u64 = cells.iter().map(|c| c.row_hits).sum();
    let underfetches: u64 = cells.iter().map(|c| c.underfetches).sum();
    let writes: u64 = cells.iter().map(|c| c.writes).sum();
    let activations: u64 = cells.iter().map(|c| c.activations).sum();
    let mut expect = |name: &str, got: u64, want: u64| {
        if got != want {
            report.failures.push(format!(
                "heatmap conservation: {name} cells sum to {got} but bank counters say {want}"
            ));
        }
    };
    expect("row-hit", row_hits, banks.row_hits);
    expect("underfetch", underfetches, banks.underfetches);
    expect("write", writes, banks.writes);
    expect(
        "activation",
        activations,
        banks
            .reads
            .saturating_sub(banks.row_hits + banks.underfetches),
    );
    report
}

/// Sensing and programming energy are exactly `pJ/bit × bits`.
pub fn check_energy(
    config: &SystemConfig,
    banks: &BankStats,
    energy: &fgnvm_mem::EnergyBreakdown,
) -> InvariantReport {
    let mut report = InvariantReport::default();
    report.checked.push("energy-conservation");
    let want_sense = banks.sensed_bits as f64 * config.energy.read_pj_per_bit;
    let want_write = banks.written_bits as f64 * config.energy.write_pj_per_bit;
    // Equalities up to float representation: the model multiplies the same
    // two numbers, so anything beyond epsilon is a counter leak.
    let tol = 1e-6 + want_sense.abs() * 1e-12;
    if (energy.sense_pj - want_sense).abs() > tol {
        report.failures.push(format!(
            "energy conservation: sense {} pJ but {} sensed bits × {} pJ/bit = {}",
            energy.sense_pj, banks.sensed_bits, config.energy.read_pj_per_bit, want_sense
        ));
    }
    let tol = 1e-6 + want_write.abs() * 1e-12;
    if (energy.write_pj - want_write).abs() > tol {
        report.failures.push(format!(
            "energy conservation: write {} pJ but {} written bits × {} pJ/bit = {}",
            energy.write_pj, banks.written_bits, config.energy.write_pj_per_bit, want_write
        ));
    }
    report
}

/// At idle, no bank resource may still be busy in the future.
///
/// Returns an empty (nothing-checked) report when the system is not idle;
/// callers should drain first.
pub fn check_occupancy_quiesced(memory: &MemorySystem) -> InvariantReport {
    let mut report = InvariantReport::default();
    if !memory.is_idle() {
        return report;
    }
    report.checked.push("occupancy-quiesced");
    let now = memory.now();
    for (bank, snap) in memory.bank_occupancy().iter().enumerate() {
        for (sag, lock) in snap.sag_locks.iter().enumerate() {
            if *lock > now {
                report.failures.push(format!(
                    "idle system but bank {bank} SAG {sag} write lock held until {lock} (now {now})"
                ));
            }
        }
        for (cd, free) in snap.cd_io_free.iter().enumerate() {
            if *free > now {
                report.failures.push(format!(
                    "idle system but bank {bank} CD {cd} I/O busy until {free} (now {now})"
                ));
            }
        }
        if snap.busy_until > now {
            report.failures.push(format!(
                "idle system but bank {bank} busy until {} (now {now})",
                snap.busy_until
            ));
        }
    }
    report
}

/// Window-vs-cumulative conservation: summing *every* telemetry window
/// (evicted, retained, and the current partial one) must reproduce the
/// independent cumulative counters exactly — bucket by bucket for the
/// latency histograms, per stall-taxonomy bucket against the attribution
/// aggregates, and per instant kind. Both sides fold the same lifecycle
/// hooks, so any drift is a window that was double-counted, dropped at a
/// boundary roll, or corrupted across checkpoint/resume.
///
/// Returns an empty (nothing-checked) report when the observer has no
/// time-series engine attached.
pub fn check_timeseries_conservation(
    observer: &Observer,
    stats: &fgnvm_mem::SystemStats,
) -> InvariantReport {
    let mut report = InvariantReport::default();
    let Some(ts) = observer.timeseries() else {
        return report;
    };
    report.checked.push("timeseries-conservation");
    let agg = ts.aggregate();
    if agg.arrivals_read != stats.enqueued_reads || agg.arrivals_write != stats.enqueued_writes {
        report.failures.push(format!(
            "timeseries conservation: windows saw {}r/{}w arrivals but the system enqueued {}r/{}w",
            agg.arrivals_read, agg.arrivals_write, stats.enqueued_reads, stats.enqueued_writes
        ));
    }
    for (class, hist, cum_hist, cum_count, cum_sum, cum_max) in [
        (
            "read",
            &agg.read_latency,
            &stats.read_latency_hist,
            stats.completed_reads,
            stats.read_latency_total.raw(),
            stats.read_latency_max.raw(),
        ),
        (
            "write",
            &agg.write_latency,
            &stats.write_latency_hist,
            stats.completed_writes,
            stats.write_latency_total.raw(),
            stats.write_latency_max.raw(),
        ),
    ] {
        if hist.counts() != cum_hist {
            report.failures.push(format!(
                "timeseries conservation ({class}s): window latency buckets {:?} != cumulative {:?}",
                hist.counts(),
                cum_hist
            ));
        }
        if hist.count() != cum_count || hist.sum() != cum_sum || hist.max() != cum_max {
            report.failures.push(format!(
                "timeseries conservation ({class}s): windows folded {} samples / {} cycles \
                 (max {}) but cumulative stats say {} / {} (max {})",
                hist.count(),
                hist.sum(),
                hist.max(),
                cum_count,
                cum_sum,
                cum_max
            ));
        }
    }
    let attr = &observer.attribution;
    for (i, cause) in StallCause::ALL.iter().enumerate() {
        let cumulative = attr.reads.cycles[i] + attr.writes.cycles[i];
        if agg.stall[i] != cumulative {
            report.failures.push(format!(
                "timeseries conservation: {} stall cycles sum to {} across windows \
                 but attribution recorded {cumulative}",
                cause.label(),
                agg.stall[i]
            ));
        }
    }
    if agg.instants != *observer.instants() {
        report.failures.push(format!(
            "timeseries conservation: instant counters {:?} across windows != cumulative {:?}",
            agg.instants,
            observer.instants()
        ));
    }
    report
}

/// Tenant conservation: the controller's per-tenant counters and the
/// time-series engine's per-tenant window slices must each fold exactly
/// to their own global counters, and the two independently-tagged paths
/// must agree tenant by tenant.
///
/// The two sides tag tenants at different places — the controller from
/// the completion [`Event`](fgnvm_types::Event), the observer from the
/// attribution record captured at enqueue — so a request billed to the
/// wrong tenant on either path shows up as a cross-path mismatch even
/// when every global counter still balances. Untagged traffic (wear
/// rotation, prefetch) rides tenant 0 on both sides, which is what makes
/// the folds exact rather than `<=`.
///
/// The window-slice checks are skipped when no time-series engine is
/// attached; the controller fold always runs.
pub fn check_tenant_conservation(
    observer: Option<&Observer>,
    stats: &fgnvm_mem::SystemStats,
) -> InvariantReport {
    let mut report = InvariantReport::default();
    report.checked.push("tenant-conservation");

    // Controller-side fold: per-tenant counters sum to the globals.
    let mut fold = fgnvm_mem::TenantStats::default();
    for t in &stats.tenants {
        fold.enqueued_reads += t.enqueued_reads;
        fold.enqueued_writes += t.enqueued_writes;
        fold.completed_reads += t.completed_reads;
        fold.completed_writes += t.completed_writes;
        fold.read_latency_total += t.read_latency_total;
        fold.write_latency_total += t.write_latency_total;
        for (acc, b) in fold.read_latency_hist.iter_mut().zip(&t.read_latency_hist) {
            *acc += b;
        }
        for (acc, b) in fold
            .write_latency_hist
            .iter_mut()
            .zip(&t.write_latency_hist)
        {
            *acc += b;
        }
    }
    for (name, got, want) in [
        ("enqueued reads", fold.enqueued_reads, stats.enqueued_reads),
        (
            "enqueued writes",
            fold.enqueued_writes,
            stats.enqueued_writes,
        ),
        (
            "completed reads",
            fold.completed_reads,
            stats.completed_reads,
        ),
        (
            "completed writes",
            fold.completed_writes,
            stats.completed_writes,
        ),
        (
            "read latency cycles",
            fold.read_latency_total,
            stats.read_latency_total.raw(),
        ),
        (
            "write latency cycles",
            fold.write_latency_total,
            stats.write_latency_total.raw(),
        ),
    ] {
        if got != want {
            report.failures.push(format!(
                "tenant conservation: per-tenant {name} sum to {got} but the system counted {want}"
            ));
        }
    }
    if fold.read_latency_hist != stats.read_latency_hist
        || fold.write_latency_hist != stats.write_latency_hist
    {
        report.failures.push(
            "tenant conservation: per-tenant latency buckets do not fold to the global histograms"
                .to_string(),
        );
    }

    let Some(ts) = observer.and_then(|obs| obs.timeseries()) else {
        return report;
    };
    let agg = ts.aggregate();

    // Observer-side fold: per-tenant window slices sum to the window
    // aggregate's own global histograms and stall buckets.
    let mut wfold = fgnvm_obs::TenantWindow::default();
    for t in &agg.tenants {
        wfold.fold(t);
    }
    if wfold.arrivals_read != agg.arrivals_read || wfold.arrivals_write != agg.arrivals_write {
        report.failures.push(format!(
            "tenant conservation: tenant window slices saw {}r/{}w arrivals but the windows \
             themselves saw {}r/{}w",
            wfold.arrivals_read, wfold.arrivals_write, agg.arrivals_read, agg.arrivals_write
        ));
    }
    for (class, folded, global) in [
        ("read", &wfold.read_latency, &agg.read_latency),
        ("write", &wfold.write_latency, &agg.write_latency),
    ] {
        if folded.counts() != global.counts() || folded.sum() != global.sum() {
            report.failures.push(format!(
                "tenant conservation ({class}s): tenant slices fold to {} samples / {} cycles \
                 but the window aggregate holds {} / {}",
                folded.count(),
                folded.sum(),
                global.count(),
                global.sum()
            ));
        }
    }
    if wfold.stall != agg.stall {
        report.failures.push(format!(
            "tenant conservation: tenant stall buckets fold to {:?} but the window aggregate \
             holds {:?}",
            wfold.stall, agg.stall
        ));
    }

    // Cross-path: the controller's tenant table (tagged from completion
    // events) against the observer's tenant slices (tagged from
    // attribution records), tenant by tenant.
    let n = stats.tenants.len().max(agg.tenants.len());
    let ctrl_default = fgnvm_mem::TenantStats::default();
    let obs_default = fgnvm_obs::TenantWindow::default();
    for i in 0..n {
        let c = stats.tenants.get(i).unwrap_or(&ctrl_default);
        let w = agg.tenants.get(i).unwrap_or(&obs_default);
        for (name, ctrl, wind) in [
            ("enqueued reads", c.enqueued_reads, w.arrivals_read),
            ("enqueued writes", c.enqueued_writes, w.arrivals_write),
            ("completed reads", c.completed_reads, w.read_latency.count()),
            (
                "completed writes",
                c.completed_writes,
                w.write_latency.count(),
            ),
            (
                "read latency cycles",
                c.read_latency_total,
                w.read_latency.sum(),
            ),
            (
                "write latency cycles",
                c.write_latency_total,
                w.write_latency.sum(),
            ),
        ] {
            if ctrl != wind {
                report.failures.push(format!(
                    "tenant misattribution: tenant {i} {name} — controller counted {ctrl}, \
                     telemetry windows counted {wind}"
                ));
            }
        }
    }
    report
}

/// Audit conservation: the scheduler decision-audit log must fold
/// exactly to the independently-kept command counters, and every
/// per-record identity must hold in aggregate.
///
/// - **Issue fold**: audited decisions equal the bank models' committed
///   reads plus writes (both sides count commits, including re-issued
///   verify-failed writes), and the read/write split folds to the total.
/// - **Candidate fold**: per record, `blocked + ready == considered − 1`
///   (everything but the chosen command is either gated or ready), so in
///   aggregate `blocked + ready + issues == considered`.
/// - **Opportunity bounds**: co-issuable peers are a subset of ready
///   peers; the missed-pair grid counts exactly one cell per counted
///   peer; and no decision may claim co-issue opportunity with an
///   otherwise-empty queue (`empty_queue_opportunity == 0`).
/// - **Window fold** (when the time-series engine is attached): summing
///   every telemetry window's opportunity counter reproduces the audit
///   log's total exactly.
///
/// Returns an empty (nothing-checked) report when the observer has no
/// audit log attached. Assumes auditing was on for the whole run (the
/// standard drivers enable it before the first tick).
pub fn check_audit_conservation(observer: &Observer, banks: &BankStats) -> InvariantReport {
    let mut report = InvariantReport::default();
    let Some(audit) = observer.audit() else {
        return report;
    };
    report.checked.push("audit-conservation");
    if audit.issues_read + audit.issues_write != audit.issues {
        report.failures.push(format!(
            "audit conservation: {} reads + {} writes != {} audited issues",
            audit.issues_read, audit.issues_write, audit.issues
        ));
    }
    let committed = banks.reads + banks.writes;
    if audit.issues != committed {
        report.failures.push(format!(
            "audit conservation: {} audited issues but the banks committed {committed} \
             commands ({} reads + {} writes)",
            audit.issues, banks.reads, banks.writes
        ));
    }
    let hist_sum: u64 = audit.parallelism_hist.iter().sum();
    if hist_sum != audit.issues {
        report.failures.push(format!(
            "audit conservation: parallelism histogram holds {hist_sum} decisions but {} issued",
            audit.issues
        ));
    }
    let blocked_sum: u64 = audit.blocked.iter().sum();
    if blocked_sum + audit.ready_total + audit.issues != audit.considered_total {
        report.failures.push(format!(
            "audit conservation: {blocked_sum} blocked + {} ready + {} issued != {} considered",
            audit.ready_total, audit.issues, audit.considered_total
        ));
    }
    if audit.opportunity_total > audit.ready_total {
        report.failures.push(format!(
            "audit conservation: {} co-issuable peers exceed the {} ready peers",
            audit.opportunity_total, audit.ready_total
        ));
    }
    let missed_sum: u64 = audit.missed_cells().iter().sum();
    if missed_sum != audit.opportunity_total {
        report.failures.push(format!(
            "audit conservation: missed-pair grid holds {missed_sum} cells but \
             opportunity totals {}",
            audit.opportunity_total
        ));
    }
    if audit.empty_queue_opportunity != 0 {
        report.failures.push(format!(
            "audit legality: {} decision(s) claimed co-issue opportunity with an \
             otherwise-empty queue",
            audit.empty_queue_opportunity
        ));
    }
    if let Some(ts) = observer.timeseries() {
        let window_sum = ts.aggregate().opportunity;
        if window_sum != audit.opportunity_total {
            report.failures.push(format!(
                "audit conservation: telemetry windows fold to {window_sum} opportunity \
                 but the audit log totals {}",
                audit.opportunity_total
            ));
        }
    }
    report
}

/// Every accepted request id completes exactly once.
pub fn check_completions(accepted: &[RequestId], completions: &[Completion]) -> InvariantReport {
    let mut report = InvariantReport::default();
    report.checked.push("exactly-once-completion");
    let mut want: Vec<RequestId> = accepted.to_vec();
    want.sort_unstable();
    let before = want.len();
    want.dedup();
    if want.len() != before {
        report
            .failures
            .push("request id accepted twice (controller id reuse)".to_string());
    }
    let mut got: Vec<RequestId> = completions.iter().map(|c| c.id).collect();
    got.sort_unstable();
    let mut dup = got.clone();
    dup.dedup();
    if dup.len() != got.len() {
        report.failures.push(format!(
            "completed {} requests but only {} distinct ids: some request completed twice",
            got.len(),
            dup.len()
        ));
    }
    if dup != want {
        let missing = want
            .iter()
            .filter(|id| dup.binary_search(id).is_err())
            .count();
        let phantom = dup
            .iter()
            .filter(|id| want.binary_search(id).is_err())
            .count();
        report.failures.push(format!(
            "completion conservation: {} accepted ids never completed, {} completions were never accepted",
            missing, phantom
        ));
    }
    report
}

/// Runs every invariant the given artifacts allow: span sums, heatmap
/// totals, and time-series conservation when an observer is present,
/// energy always, occupancy when the system is idle.
pub fn standard_report(
    config: &SystemConfig,
    memory: &MemorySystem,
    observer: Option<&Observer>,
) -> InvariantReport {
    let banks = memory.bank_stats();
    let mut report = InvariantReport::default();
    if let Some(obs) = observer {
        report.merge(check_span_sums(obs));
        report.merge(check_attribution(obs));
        report.merge(check_heatmap_totals(obs, &banks));
        report.merge(check_timeseries_conservation(obs, memory.stats()));
        report.merge(check_audit_conservation(obs, &banks));
    }
    report.merge(check_tenant_conservation(observer, memory.stats()));
    report.merge(check_energy(config, &banks, &memory.energy()));
    report.merge(check_occupancy_quiesced(memory));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_types::{Cycle, Op, PhysAddr};

    /// Runs a small mixed workload with the telemetry engine attached and
    /// returns the drained system plus its observer.
    fn run_with_telemetry() -> (MemorySystem, Observer) {
        let config = SystemConfig::fgnvm(8, 2).expect("valid config");
        let mut memory = MemorySystem::new(config).expect("valid system");
        memory.enable_observer();
        // A tiny window and ring so the run rolls boundaries and evicts.
        memory.enable_telemetry(64, 4, 16);
        let line = u64::from(config.geometry.line_bytes());
        let mut out = Vec::new();
        for i in 0..40u64 {
            let kind = if i % 3 == 0 { Op::Write } else { Op::Read };
            memory.enqueue(kind, PhysAddr::new(i * 7 % 256 * line));
            memory.tick_to(Cycle::new(i * 9), &mut out);
        }
        while !memory.is_idle() {
            out.extend(memory.tick());
        }
        let obs = memory.take_observer().expect("observer enabled above");
        (memory, *obs)
    }

    #[test]
    fn timeseries_conservation_holds_on_a_real_run() {
        let (memory, obs) = run_with_telemetry();
        assert!(obs.timeseries().expect("attached").closed_total() > 4);
        let report = check_timeseries_conservation(&obs, memory.stats());
        assert_eq!(report.checked, vec!["timeseries-conservation"]);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn timeseries_conservation_catches_a_phantom_event() {
        let (memory, mut obs) = run_with_telemetry();
        // A window event with no matching cumulative counter is exactly
        // the class of drift the rule exists to catch.
        obs.timeseries_mut()
            .expect("attached")
            .record_arrival(true, 0, memory.now().raw());
        let report = check_timeseries_conservation(&obs, memory.stats());
        assert!(!report.is_clean());
    }

    /// Like [`run_with_telemetry`] but spreads the traffic across three
    /// tenants via the tagged enqueue path.
    fn run_multi_tenant() -> (MemorySystem, Observer) {
        let config = SystemConfig::fgnvm(8, 2).expect("valid config");
        let mut memory = MemorySystem::new(config).expect("valid system");
        memory.enable_observer();
        memory.enable_telemetry(64, 4, 16);
        let line = u64::from(config.geometry.line_bytes());
        let mut out = Vec::new();
        for i in 0..60u64 {
            let kind = if i % 3 == 0 { Op::Write } else { Op::Read };
            let tenant = (i % 5 % 3) as u16;
            memory.enqueue_for(kind, PhysAddr::new(i * 7 % 256 * line), tenant);
            memory.tick_to(Cycle::new(i * 9), &mut out);
        }
        while !memory.is_idle() {
            out.extend(memory.tick());
        }
        let obs = memory.take_observer().expect("observer enabled above");
        (memory, *obs)
    }

    #[test]
    fn tenant_conservation_holds_on_a_multi_tenant_run() {
        let (memory, obs) = run_multi_tenant();
        let stats = memory.stats();
        assert!(
            stats.tenants.len() >= 3 && stats.tenants.iter().all(|t| t.completed_reads > 0),
            "run should exercise three tenants"
        );
        let report = check_tenant_conservation(Some(&obs), stats);
        assert_eq!(report.checked, vec!["tenant-conservation"]);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn tenant_conservation_catches_cross_tenant_misattribution() {
        let (memory, obs) = run_multi_tenant();
        // Bill one of tenant 0's completed reads to tenant 1 on the
        // controller side only. Every global counter still balances, and
        // the controller fold still balances — only the cross-path check
        // against the independently-tagged telemetry slices can see it.
        let mut stats = memory.stats().clone();
        let bucket = stats.tenants[0]
            .read_latency_hist
            .iter()
            .position(|&b| b > 0)
            .expect("tenant 0 completed at least one read");
        let lat = 1u64 << bucket;
        stats.tenants[0].completed_reads -= 1;
        stats.tenants[0].read_latency_total -= lat;
        stats.tenants[0].read_latency_hist[bucket] -= 1;
        let shifted = stats.tenant_mut(1);
        shifted.completed_reads += 1;
        shifted.read_latency_total += lat;
        shifted.read_latency_hist[bucket] += 1;
        let report = check_tenant_conservation(Some(&obs), &stats);
        assert!(!report.is_clean(), "misattribution must be detected");
        assert!(
            report.failures.iter().any(|f| f.contains("misattribution")),
            "{report}"
        );
        // Sanity: the untampered stats stay clean.
        assert!(check_tenant_conservation(Some(&obs), memory.stats()).is_clean());
    }

    /// Like [`run_with_telemetry`] but with the issue-audit layer on and
    /// a heavier same-bank mix so some decisions see blocked candidates
    /// and others see genuine co-issue opportunity.
    fn run_with_audit() -> (MemorySystem, Observer) {
        let config = SystemConfig::fgnvm(8, 2).expect("valid config");
        let mut memory = MemorySystem::new(config).expect("valid system");
        memory.enable_observer();
        memory.enable_telemetry(64, 4, 16);
        memory.enable_audit();
        let line = u64::from(config.geometry.line_bytes());
        let mut out = Vec::new();
        for i in 0..60u64 {
            let kind = if i % 4 == 0 { Op::Write } else { Op::Read };
            memory.enqueue(kind, PhysAddr::new(i * 5 % 128 * line));
            memory.tick_to(Cycle::new(i * 6), &mut out);
        }
        while !memory.is_idle() {
            out.extend(memory.tick());
        }
        let obs = memory.take_observer().expect("observer enabled above");
        (memory, *obs)
    }

    #[test]
    fn audit_conservation_holds_on_a_real_run() {
        let (memory, obs) = run_with_audit();
        let audit = obs.audit().expect("audit enabled above");
        assert!(audit.issues > 0, "the run issued commands");
        assert!(
            audit.considered_total > audit.issues,
            "the backlog put more than the chosen command on the table"
        );
        let report = check_audit_conservation(&obs, &memory.bank_stats());
        assert_eq!(report.checked, vec!["audit-conservation"]);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn audit_conservation_catches_a_dropped_record() {
        let (memory, mut obs) = run_with_audit();
        // A decision record that never folded (or folded twice) is
        // exactly the drift the issue fold exists to catch.
        obs.audit_mut().expect("attached").issues += 1;
        let report = check_audit_conservation(&obs, &memory.bank_stats());
        assert!(!report.is_clean());
    }

    #[test]
    fn no_audit_means_nothing_checked() {
        let config = SystemConfig::fgnvm(8, 2).expect("valid config");
        let mut memory = MemorySystem::new(config).expect("valid system");
        memory.enable_observer();
        let obs = memory.take_observer().expect("observer enabled above");
        let report = check_audit_conservation(&obs, &memory.bank_stats());
        assert!(report.checked.is_empty());
        assert!(report.is_clean());
    }

    #[test]
    fn no_timeseries_means_nothing_checked() {
        let config = SystemConfig::fgnvm(8, 2).expect("valid config");
        let mut memory = MemorySystem::new(config).expect("valid system");
        memory.enable_observer();
        let obs = memory.take_observer().expect("observer enabled above");
        let report = check_timeseries_conservation(&obs, memory.stats());
        assert!(report.checked.is_empty());
        assert!(report.is_clean());
    }
}
