//! Exhaustiveness of the stall taxonomy (satellite of the attribution
//! profiler): every event the simulator can emit must map to a bucket.
//!
//! The attribution module classifies commands by their plan-kind label and
//! instants by their [`InstantKind`]. Both enums live in other crates, so a
//! newly added variant cannot break `fgnvm-obs` at compile time — this test
//! is the tripwire: it walks the `ALL` constants (which *are* checked by
//! exhaustive matches in their home crates) and asserts the taxonomy
//! recognizes every member, with no silent fallthrough.

use fgnvm_bank::PlanKind;
use fgnvm_obs::{classify_command, classify_instant, InstantKind, StallCause};

/// Every command the bank can plan has a post-issue service bucket.
#[test]
fn every_plan_kind_maps_to_a_bucket() {
    for kind in PlanKind::ALL {
        let cause = classify_command(kind.label());
        assert!(
            cause.is_some(),
            "plan kind `{}` is not in the stall taxonomy — \
             extend fgnvm_obs::attribution::classify_command",
            kind.label()
        );
    }
    // The mapping is meaningful, not just total: the underfetch re-sense
    // has its own bucket; everything else is plain service time.
    assert_eq!(
        classify_command(PlanKind::Underfetch.label()),
        Some(StallCause::UnderfetchResense)
    );
    for kind in [PlanKind::RowHit, PlanKind::Activate, PlanKind::Write] {
        assert_eq!(classify_command(kind.label()), Some(StallCause::Service));
    }
    // Unknown labels are reported (the attribution counts them in
    // `unclassified`, which the conservation invariant requires to be 0),
    // never silently bucketed.
    assert_eq!(classify_command("no-such-command"), None);
}

/// Every instantaneous event maps to a bucket, and the instants that model
/// distinct physical causes land in distinct buckets.
#[test]
fn every_instant_kind_maps_to_a_bucket() {
    // `classify_instant` is an exhaustive match (no `_ =>` arm), so it is
    // total by construction; this asserts the *semantics* stay stable.
    for kind in InstantKind::ALL {
        let cause = classify_instant(kind);
        assert!(
            StallCause::ALL.contains(&cause),
            "instant `{}` mapped outside the taxonomy",
            kind.label()
        );
    }
    assert_eq!(
        classify_instant(InstantKind::WriteReissue),
        StallCause::VerifyRetry
    );
    for kind in [
        InstantKind::EccCorrected,
        InstantKind::EccUncorrectable,
        InstantKind::Remap,
    ] {
        assert_eq!(classify_instant(kind), StallCause::CtrlOverhead);
    }
}

/// The taxonomy itself is closed: ten buckets, distinct stable labels.
#[test]
fn taxonomy_buckets_are_distinct_and_stable() {
    let labels: Vec<&str> = StallCause::ALL.iter().map(|c| c.label()).collect();
    assert_eq!(labels.len(), 10);
    let mut dedup = labels.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), labels.len(), "duplicate bucket labels");
    // Indices are the array positions (the attribution relies on `as usize`).
    for (i, cause) in StallCause::ALL.iter().enumerate() {
        assert_eq!(*cause as usize, i);
    }
}
