//! The oracle's two-sided acceptance tests.
//!
//! Soundness: real runs of every shipped configuration — presets and every
//! checked-in `.cfg` parameter file, faulty ones included — must audit
//! with zero violations and zero invariant failures. Completeness: the
//! test-only illegal-issue mutation (`debug_force_illegal_issue`) must be
//! caught by the oracle on a direct run *and* by the fuzzer, which must
//! shrink it to a replayable minimal case.

use fgnvm_check::{
    execute_case, fuzz, parse_case, render_case, run_and_audit, FuzzModel, FuzzOptions, Oracle,
};
use fgnvm_mem::MemorySystem;
use fgnvm_types::{Op, PhysAddr, SystemConfig};

fn preset_configs() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("baseline", SystemConfig::baseline()),
        ("fgnvm_8x2", SystemConfig::fgnvm(8, 2).unwrap()),
        ("fgnvm_32x32", SystemConfig::fgnvm(32, 32).unwrap()),
        ("fgnvm_1x1", SystemConfig::fgnvm(1, 1).unwrap()),
        (
            "multi_issue_8x4",
            SystemConfig::fgnvm_multi_issue(8, 4, 2).unwrap(),
        ),
        (
            "pausing_8x8",
            SystemConfig::fgnvm_with_pausing(8, 8).unwrap(),
        ),
        (
            "mlc_8x2",
            SystemConfig::fgnvm(8, 2).unwrap().with_mlc_cells(),
        ),
        ("dram", SystemConfig::dram()),
    ]
}

#[test]
fn every_preset_audits_clean() {
    for (name, config) in preset_configs() {
        let seed = fgnvm_check::derive_seed("conformance::presets", 0);
        let outcome = run_and_audit(&config, 2000, seed)
            .unwrap_or_else(|e| panic!("{name}: run failed (seed {seed}): {e}"));
        assert!(outcome.commands > 0, "{name}: audit saw no commands");
        for report in &outcome.reports {
            assert!(
                report.is_clean(),
                "{name}: oracle flagged a real run (seed {seed}):\n{report}"
            );
        }
        assert!(
            outcome.invariants.is_clean(),
            "{name}: invariants failed (seed {seed}):\n{}",
            outcome.invariants
        );
    }
}

#[test]
fn every_checked_in_parameter_file_audits_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs");
    let mut audited = 0;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("configs/ exists at the workspace root")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cfg"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable cfg");
        let config = fgnvm_types::parse_system_config(&text)
            .unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        let seed = fgnvm_check::derive_seed("conformance::cfg-files", audited);
        let outcome = run_and_audit(&config, 1500, seed)
            .unwrap_or_else(|e| panic!("{}: run failed (seed {seed}): {e}", path.display()));
        assert!(
            outcome.is_clean(),
            "{}: audit failed (seed {seed}): {} violation(s)\n{}\n{}",
            path.display(),
            outcome.violation_count(),
            outcome
                .reports
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n"),
            outcome.invariants
        );
        audited += 1;
    }
    assert!(
        audited >= 6,
        "expected the six shipped .cfg files, found {audited}"
    );
}

/// The tile concurrency the oracle measures should actually exceed one on
/// an FgNVM grid — otherwise the audit is vacuous.
#[test]
fn oracle_sees_real_tile_parallelism() {
    let config = SystemConfig::fgnvm(8, 4).unwrap();
    let seed = fgnvm_check::derive_seed("conformance::parallelism", 0);
    let outcome = run_and_audit(&config, 3000, seed).expect("run succeeds");
    let max = outcome
        .reports
        .iter()
        .map(|r| r.max_tile_concurrency)
        .max()
        .unwrap_or(0);
    assert!(
        max >= 2,
        "8x4 grid never had two tile ops in flight (seed {seed}); audit is vacuous"
    );
}

/// Drives the chaos knob directly and requires the oracle to notice.
#[test]
fn oracle_catches_forced_illegal_issue() {
    let config = SystemConfig::fgnvm(8, 2).unwrap();
    let mut memory = MemorySystem::new(config).expect("valid config");
    memory.enable_command_log(1 << 16);
    memory.debug_force_illegal_issue(true);
    let line = u64::from(config.geometry.line_bytes());
    // Hammer one row region so the forced RowHit-without-open-row and
    // lock-bypassing picks actually trigger.
    for i in 0..200u64 {
        let op = if i % 3 == 0 { Op::Write } else { Op::Read };
        memory.enqueue(op, PhysAddr::new((i % 16) * line));
        if i % 4 == 0 {
            let mut out = Vec::new();
            memory.tick_into(&mut out);
        }
    }
    memory.try_run_until_idle(100_000).expect("drains");
    let oracle = Oracle::new(&config).expect("oracle builds");
    let mut violations = 0;
    for channel in 0..config.geometry.channels() {
        violations += oracle.audit(memory.command_log(channel)).violations.len();
    }
    assert!(
        violations > 0,
        "the deliberate scheduler mutation produced an oracle-clean stream"
    );
}

/// The end-to-end acceptance gate: the fuzzer must catch the mutation and
/// hand back a minimal, replayable `.case` reproducer.
#[test]
fn fuzzer_catches_chaos_mutation_with_replayable_counterexample() {
    let opts = FuzzOptions {
        cases: 48,
        seed: fgnvm_check::derive_seed("conformance::chaos-fuzz", 0),
        max_ops: 64,
        chaos: true,
        kill_resume: false,
        tenants: false,
    };
    let outcome = fuzz(&opts);
    let failure = outcome.failure.unwrap_or_else(|| {
        panic!(
            "fuzzer ran {} chaos cases (seed {}) without catching the mutation",
            outcome.cases_run, opts.seed
        )
    });
    assert!(
        FuzzModel::CHAOS_ELIGIBLE.contains(&failure.shrunk.model),
        "shrunk case left the tile-aware models: {:?}",
        failure.shrunk.model
    );
    assert!(
        failure.shrunk.ops.len() <= failure.original.ops.len(),
        "shrinking grew the case"
    );
    // The rendered case file replays to the same failure class.
    let text = failure.case_file();
    let reparsed = parse_case(&text).expect("shrunk case round-trips");
    assert_eq!(reparsed, failure.shrunk);
    let replay = execute_case(&reparsed);
    assert!(
        replay.is_err(),
        "replaying the shrunk counterexample no longer fails:\n{text}"
    );
}

/// Without the mutation the same fuzzer budget must come back clean —
/// the other half of the soundness requirement.
#[test]
fn fuzzer_is_clean_on_the_unmutated_simulator() {
    let opts = FuzzOptions {
        cases: 40,
        seed: fgnvm_check::derive_seed("conformance::clean-fuzz", 0),
        max_ops: 48,
        chaos: false,
        kill_resume: false,
        tenants: false,
    };
    let outcome = fuzz(&opts);
    if let Some(failure) = &outcome.failure {
        panic!(
            "fuzzer found a failure on the unmutated simulator (seed {}, case {}): {}\nshrunk:\n{}",
            opts.seed,
            failure.index,
            failure.message,
            render_case(&failure.shrunk)
        );
    }
}
