//! Property-based tests for the bank models.
//!
//! These drive random access sequences through [`FgnvmBank`] and
//! [`BaselineBank`] and check the structural invariants of the paper's
//! design from the *outside*, using only the committed timing results:
//!
//! * no two sensing/driving operations ever overlap on the same column
//!   division's local I/O;
//! * operations on the same subarray group that target different rows never
//!   overlap (one wordline per SAG);
//! * a blocked access always becomes issuable by following the retry hints
//!   (no livelock);
//! * statistics counters are consistent with the committed operations.

use proptest::prelude::*;

use fgnvm_bank::{Access, Bank, BaselineBank, FgnvmBank, Modes, PlanKind};
use fgnvm_types::address::TileCoord;
use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::Op;
use fgnvm_types::time::{Cycle, CycleCount};
use fgnvm_types::TimingConfig;

/// A committed operation's resource usage, reconstructed externally.
#[derive(Debug, Clone)]
struct Footprint {
    sag: u32,
    row: u32,
    cds: Vec<u32>,
    /// Command issue instant.
    cmd: Cycle,
    /// CD local-I/O occupancy window (sensing or write driving), if any.
    io_window: Option<(Cycle, Cycle)>,
    /// Full lifetime of the operation.
    lifetime: (Cycle, Cycle),
    is_write: bool,
}

fn small_geometry(sags: u32, cds: u32) -> Geometry {
    Geometry::builder()
        .rows_per_bank(64)
        .sags(sags)
        .cds(cds)
        .build()
        .unwrap()
}

fn make_access(geom: &Geometry, op: Op, row: u32, line: u32) -> Access {
    let (cd_first, cd_count) = geom.cds_of_line(line);
    Access {
        op,
        row,
        line,
        coord: TileCoord {
            sag: geom.sag_of_row(row),
            cd_first,
            cd_count,
        },
    }
}

/// One raw step of a random workload.
#[derive(Debug, Clone)]
struct Step {
    is_write: bool,
    row: u32,
    line: u32,
    delay: u64,
}

fn step_strategy(rows: u32, lines: u32) -> impl Strategy<Value = Step> {
    (any::<bool>(), 0..rows, 0..lines, 0u64..20).prop_map(|(is_write, row, line, delay)| Step {
        is_write,
        row,
        line,
        delay,
    })
}

/// Drives a sequence of steps through the bank, following retry hints, and
/// returns the footprints of every committed operation.
fn drive(bank: &mut dyn Bank, geom: &Geometry, steps: &[Step]) -> Vec<Footprint> {
    let mut now = Cycle::ZERO;
    let mut footprints = Vec::new();
    for step in steps {
        now += CycleCount::new(step.delay);
        let op = if step.is_write { Op::Write } else { Op::Read };
        let access = make_access(geom, op, step.row, step.line);
        // Follow retry hints until issuable; bounded to detect livelock.
        let mut tries = 0;
        let plan = loop {
            match bank.plan(&access, now) {
                Ok(plan) => break plan,
                Err(blocked) => {
                    assert!(blocked.retry_at > now, "retry hint must make progress");
                    now = blocked.retry_at;
                    tries += 1;
                    assert!(tries < 64, "livelock following retry hints for {access}");
                }
            }
        };
        let issued = bank.commit(&access, &plan, now, plan.earliest_data);
        let io_window = match plan.kind {
            PlanKind::Activate | PlanKind::Underfetch => Some((now, issued.data_start)),
            PlanKind::Write => Some((now, issued.completion)),
            PlanKind::RowHit => None,
        };
        footprints.push(Footprint {
            sag: access.coord.sag,
            row: access.row,
            cds: access.coord.cds().collect(),
            cmd: now,
            io_window,
            lifetime: (now, issued.completion),
            is_write: step.is_write,
        });
    }
    footprints
}

fn overlaps(a: (Cycle, Cycle), b: (Cycle, Cycle)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// No two sensing/driving operations overlap on the same CD's local I/O.
    #[test]
    fn cd_io_is_exclusive(steps in prop::collection::vec(step_strategy(64, 16), 1..60)) {
        let geom = small_4x4_geometry();
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        let mut bank = FgnvmBank::new(&geom, timing, Modes::all(), true).unwrap();
        let fps = drive(&mut bank, &geom, &steps);
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                let (Some(wa), Some(wb)) = (a.io_window, b.io_window) else { continue };
                if a.cds.iter().any(|cd| b.cds.contains(cd)) {
                    prop_assert!(
                        !overlaps(wa, wb),
                        "CD I/O overlap: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    /// Two operations on the same SAG with different rows never overlap:
    /// each SAG has exactly one wordline / row-address latch.
    #[test]
    fn sag_wordline_single_row(steps in prop::collection::vec(step_strategy(64, 16), 1..60)) {
        let geom = small_4x4_geometry();
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        let mut bank = FgnvmBank::new(&geom, timing, Modes::all(), true).unwrap();
        let fps = drive(&mut bank, &geom, &steps);
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                if a.sag == b.sag && a.row != b.row {
                    prop_assert!(
                        !overlaps(a.lifetime, b.lifetime),
                        "different rows simultaneously open in SAG {}: {a:?} vs {b:?}",
                        a.sag
                    );
                }
            }
        }
    }

    /// A write makes its whole SAG unavailable: no other operation's command
    /// may issue inside a write's programming window on the same SAG.
    #[test]
    fn writes_lock_their_sag(steps in prop::collection::vec(step_strategy(64, 16), 1..60)) {
        let geom = small_4x4_geometry();
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        let mut bank = FgnvmBank::new(&geom, timing, Modes::all(), true).unwrap();
        let fps = drive(&mut bank, &geom, &steps);
        for w in fps.iter().filter(|f| f.is_write) {
            for other in &fps {
                if std::ptr::eq(w, other) || other.sag != w.sag {
                    continue;
                }
                prop_assert!(
                    other.cmd <= w.cmd || other.cmd >= w.lifetime.1,
                    "operation issued in SAG {} during a write's program window: \
                     write={w:?} other={other:?}",
                    w.sag
                );
            }
        }
    }

    /// Baseline banks serialize writes against everything.
    #[test]
    fn baseline_write_serializes(steps in prop::collection::vec(step_strategy(64, 16), 1..60)) {
        let geom = Geometry::builder().rows_per_bank(64).sags(1).cds(1).build().unwrap();
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        let mut bank = BaselineBank::new(&geom, timing);
        let fps = drive(&mut bank, &geom, &steps);
        for w in fps.iter().filter(|f| f.is_write) {
            for other in &fps {
                if std::ptr::eq(w, other) {
                    continue;
                }
                prop_assert!(
                    other.cmd <= w.cmd || other.cmd >= w.lifetime.1,
                    "baseline op issued during a write: write={w:?} other={other:?}"
                );
            }
        }
    }

    /// Statistics agree with what was committed.
    #[test]
    fn stats_are_consistent(steps in prop::collection::vec(step_strategy(64, 16), 1..60)) {
        let geom = small_4x4_geometry();
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        let mut bank = FgnvmBank::new(&geom, timing, Modes::all(), true).unwrap();
        let fps = drive(&mut bank, &geom, &steps);
        let stats = bank.stats();
        let reads = fps.iter().filter(|f| !f.is_write).count() as u64;
        let writes = fps.iter().filter(|f| f.is_write).count() as u64;
        prop_assert_eq!(stats.reads, reads);
        prop_assert_eq!(stats.writes, writes);
        // Every read is a hit, an underfetch, or a fresh activation; every
        // underfetch is also counted as an activation.
        prop_assert!(stats.row_hits <= stats.reads);
        prop_assert!(stats.underfetches <= stats.activations);
        // Sense accounting: hits sense nothing, so sensed bits are bounded
        // by activations × full row.
        prop_assert!(stats.sensed_bits <= stats.activations * 8192);
    }

    /// Every access eventually issues (liveness), for all mode and
    /// write-pausing combinations.
    #[test]
    fn all_mode_combinations_make_progress(
        steps in prop::collection::vec(step_strategy(64, 16), 1..40),
        partial in any::<bool>(),
        multi in any::<bool>(),
        bg in any::<bool>(),
        pausing in any::<bool>(),
    ) {
        let geom = small_4x4_geometry();
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        let modes = Modes {
            partial_activation: partial,
            multi_activation: multi,
            background_writes: bg,
        };
        let mut bank =
            FgnvmBank::new(&geom, timing, modes, true).unwrap().with_write_pausing(pausing);
        // `drive` itself asserts progress within a bounded number of retries.
        let fps = drive(&mut bank, &geom, &steps);
        prop_assert_eq!(fps.len(), steps.len());
    }

    /// With write pausing on, a read is never granted for the row whose
    /// cells are mid-program (its data would be garbage).
    #[test]
    fn pausing_never_reads_the_written_row(
        steps in prop::collection::vec(step_strategy(16, 16), 1..50),
    ) {
        let geom = small_geometry(4, 4);
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        let mut bank =
            FgnvmBank::new(&geom, timing, Modes::all(), true).unwrap().with_write_pausing(true);
        let fps = drive(&mut bank, &geom, &steps);
        for w in fps.iter().filter(|f| f.is_write) {
            for r in fps.iter().filter(|f| !f.is_write) {
                if r.sag == w.sag && r.row == w.row {
                    // Reads of the written row must not start inside the
                    // write's program window.
                    prop_assert!(
                        r.cmd <= w.cmd || r.cmd >= w.lifetime.1,
                        "read of in-flight written row: write={w:?} read={r:?}"
                    );
                }
            }
        }
    }
}

/// 4×4 FgNVM geometry with a small row count to force conflicts.
fn small_4x4_geometry() -> Geometry {
    small_geometry(4, 4)
}
