//! The FgNVM bank: two-dimensional subdivision into subarray groups × column
//! divisions, enabling the paper's three access modes.
//!
//! # Resource model (§3–§5 of the paper)
//!
//! * Each **subarray group (SAG)** has its own row decoder and row-address
//!   latch, so each SAG can hold one row open independently. A SAG tracks
//!   which column divisions of its open row have been *sensed* into the
//!   bank's global row buffer (partial activation leaves the rest unsensed —
//!   the *underfetch* state).
//! * Each **column division (CD)** has local Y-select and I/O lines. A CD is
//!   modeled as two windows:
//!   - the *sense/drive I/O* window — one sensing or write-driving operation
//!     may use the CD's local I/O at a time;
//!   - the *latch* window — the CD-aligned slice of the global row buffer
//!     (the "GY-SEL & S/A row buffer" of Fig. 2). A slice belongs to exactly
//!     one SAG at a time: sensing a slice for one SAG **evicts** whatever
//!     another SAG had sensed there. Row-buffer *hits* stream from the latch
//!     and do not occupy the CD's local I/O, so back-to-back hits pipeline
//!     at tCCD spacing exactly as in the baseline.
//! * **Multi-Activation** follows from resource independence: accesses to
//!   distinct (SAG, CD) pairs overlap freely; accesses sharing a SAG
//!   wordline or a CD serialize.
//! * **Backgrounded Writes** lock their SAG *and* their CD(s) for the full
//!   programming time (tWP), but leave every other (SAG, CD) readable.
//!
//! Each of the three modes can be disabled independently for ablation
//! studies; with all three disabled and a 1×1 geometry the bank behaves like
//! [`BaselineBank`](crate::BaselineBank).

use fgnvm_types::config::BankModel;
use fgnvm_types::error::ConfigError;
use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::Op;
use fgnvm_types::time::{Cycle, CycleCount};
use fgnvm_types::TimingCycles;

use crate::access::{Access, AccessPlan, BlockReason, Blocked, Issued, PlanKind};
use crate::faults::{FaultModel, FaultOutcome};
use crate::stats::BankStats;
use crate::Bank;

/// Pause/resume overhead added to a read that interrupts a write and again
/// to the write's completion (≈ 10 ns at 400 MHz). Public so the external
/// conformance oracle (`fgnvm-check`) can reproduce the pause arithmetic.
pub const PAUSE_OVERHEAD: CycleCount = CycleCount::new(4);
/// A write is only worth pausing if at least this much programming time
/// remains (otherwise just wait it out). Public for the same reason as
/// [`PAUSE_OVERHEAD`].
pub const PAUSE_MIN_REMAINING: CycleCount = CycleCount::new(12);

/// Which of the paper's access modes are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modes {
    /// Partial-Activation: sense only the requested column division(s).
    pub partial_activation: bool,
    /// Multi-Activation: allow concurrent accesses on distinct (SAG, CD)
    /// pairs. When disabled the bank serializes all accesses.
    pub multi_activation: bool,
    /// Backgrounded Writes: allow reads elsewhere in the bank while a write
    /// programs. When disabled a write blocks the whole bank.
    pub background_writes: bool,
}

impl Modes {
    /// All three access modes enabled (the paper's full design).
    pub const fn all() -> Self {
        Modes {
            partial_activation: true,
            multi_activation: true,
            background_writes: true,
        }
    }

    /// All modes disabled; with a 1×1 geometry this reproduces the baseline.
    pub const fn none() -> Self {
        Modes {
            partial_activation: false,
            multi_activation: false,
            background_writes: false,
        }
    }
}

impl Default for Modes {
    fn default() -> Self {
        Modes::all()
    }
}

impl TryFrom<BankModel> for Modes {
    type Error = ConfigError;

    fn try_from(model: BankModel) -> Result<Self, ConfigError> {
        match model {
            BankModel::Fgnvm {
                partial_activation,
                multi_activation,
                background_writes,
            } => Ok(Modes {
                partial_activation,
                multi_activation,
                background_writes,
            }),
            BankModel::Baseline | BankModel::Dram => Err(ConfigError::Invalid {
                field: "bank_model",
                reason: "only the fgnvm model carries access modes",
            }),
        }
    }
}

/// Per-subarray-group FSM state (the row-address latch plus sensing
/// bookkeeping) in struct-of-arrays layout: each field is a parallel array
/// indexed by SAG. The fast-forward hot loops — the `next_ready_hint`
/// min-lock sweep and the controller's gate pre-check behind it — scan one
/// field across *all* SAGs, so packing each field contiguously keeps those
/// sweeps on dense cache lines instead of striding through per-SAG records.
#[derive(Debug, Clone)]
struct SagArena {
    /// Row selected by each SAG's wordline, if any.
    open_row: Vec<Option<u32>>,
    /// Bitmask of column divisions whose slice of `open_row` currently sits
    /// in the global row buffer (may be evicted by other SAGs).
    sensed: Vec<u128>,
    /// The local wordline / row decoder is busy until this instant.
    wordline_free: Vec<Cycle>,
    /// Locked by a backgrounded write until this instant (§4: "the subarray
    /// group is also unavailable until the write completes").
    lock: Vec<Cycle>,
    /// Column divisions held by the in-flight write behind `lock`.
    write_cds: Vec<u128>,
    /// The row whose cells the in-flight write is programming (valid while
    /// `lock` is in the future). Pausing reads must never target it: its
    /// contents are mid-program. `open_row` cannot serve this purpose —
    /// a pausing read switches the wordline away from the written row.
    write_row: Vec<u32>,
    /// All in-flight operations that depend on the open row finish by this
    /// instant; the row may only be switched afterwards.
    quiesce: Vec<Cycle>,
}

impl SagArena {
    fn idle(count: usize) -> Self {
        SagArena {
            open_row: vec![None; count],
            sensed: vec![0; count],
            wordline_free: vec![Cycle::ZERO; count],
            lock: vec![Cycle::ZERO; count],
            write_cds: vec![0; count],
            write_row: vec![0; count],
            quiesce: vec![Cycle::ZERO; count],
        }
    }

    fn len(&self) -> usize {
        self.open_row.len()
    }
}

/// FgNVM two-dimensionally subdivided bank model.
///
/// ```
/// use fgnvm_bank::{Access, Bank, FgnvmBank, Modes};
/// use fgnvm_types::address::TileCoord;
/// use fgnvm_types::geometry::Geometry;
/// use fgnvm_types::request::Op;
/// use fgnvm_types::time::Cycle;
/// use fgnvm_types::TimingConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let geom = Geometry::builder().sags(8).cds(2).build()?;
/// let timing = TimingConfig::paper_pcm().to_cycles()?;
/// let mut bank = FgnvmBank::new(&geom, timing, Modes::all(), true)?;
///
/// // Two reads to different (SAG, CD) pairs overlap in flight — only the
/// // shared column-command path spaces their issue by tCCD (4 cycles):
/// // tile-level parallelism in action.
/// let a = Access { op: Op::Read, row: 0, line: 0,
///                  coord: TileCoord { sag: 0, cd_first: 0, cd_count: 1 } };
/// let b = Access { op: Op::Read, row: 5000, line: 8,
///                  coord: TileCoord { sag: 1, cd_first: 1, cd_count: 1 } };
/// let pa = bank.plan(&a, Cycle::ZERO).expect("idle bank");
/// let ia = bank.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
/// let pb = bank.plan(&b, Cycle::new(4)).expect("distinct pair is free");
/// let ib = bank.commit(&b, &pb, Cycle::new(4), pb.earliest_data);
/// assert!(ib.data_start <= ia.completion); // bursts back to back
/// assert_eq!(bank.stats().overlapped_accesses, 1); // reads overlapped in flight
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FgnvmBank {
    timing: TimingCycles,
    modes: Modes,
    /// Whether column commands share one global path (tCCD spacing across
    /// the whole bank). Multi-Issue configurations relax this to per-CD.
    shared_column_path: bool,
    /// Write pausing: reads may interrupt in-flight writes (see
    /// [`FgnvmBank::with_write_pausing`]).
    write_pausing: bool,
    cd_count: u32,
    /// Bits sensed when one CD's slice of a row is activated.
    slice_bits: u64,
    /// Bits in a full row (sensed when partial activation is disabled).
    row_bits: u64,
    /// Bits driven per cache-line write.
    line_bits: u64,
    sags: SagArena,
    /// Per-CD local sense/write-drive I/O busy-until instants.
    cd_io_free: Vec<Cycle>,
    /// Per-CD row-buffer-slice busy-until instants (pending bursts from the
    /// latch; sensing may not overwrite the slice before then).
    cd_latch_free: Vec<Cycle>,
    /// Global column-command path (tCCD) when `shared_column_path`.
    next_col: Cycle,
    /// Whole-bank serialization point when multi-activation is disabled.
    serial_until: Cycle,
    /// Whole-bank write block when backgrounded writes are disabled.
    write_block_until: Cycle,
    /// Latest completion of any committed op (overlap statistics).
    max_completion: Cycle,
    /// Latest completion of any committed write (read-under-write stats).
    max_write_completion: Cycle,
    /// Device fault injector, when the reliability layer is enabled.
    faults: Option<FaultModel>,
    stats: BankStats,
}

impl FgnvmBank {
    /// Creates an idle FgNVM bank.
    ///
    /// `shared_column_path` should be `true` for the standard design (one
    /// global column command path, tCCD-spaced) and `false` for Multi-Issue
    /// configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the geometry has more than 128 column
    /// divisions (the sensed-slice bookkeeping uses a 128-bit mask).
    pub fn new(
        geometry: &Geometry,
        timing: TimingCycles,
        modes: Modes,
        shared_column_path: bool,
    ) -> Result<Self, ConfigError> {
        if geometry.cds() > 128 {
            return Err(ConfigError::OutOfRange {
                field: "cds",
                expected: "at most 128 column divisions",
            });
        }
        let row_bits = u64::from(geometry.row_bytes()) * 8;
        Ok(FgnvmBank {
            timing,
            modes,
            shared_column_path,
            write_pausing: false,
            cd_count: geometry.cds(),
            slice_bits: row_bits / u64::from(geometry.cds()),
            row_bits,
            line_bits: u64::from(geometry.line_bytes()) * 8,
            sags: SagArena::idle(geometry.sags() as usize),
            cd_io_free: vec![Cycle::ZERO; geometry.cds() as usize],
            cd_latch_free: vec![Cycle::ZERO; geometry.cds() as usize],
            next_col: Cycle::ZERO,
            serial_until: Cycle::ZERO,
            write_block_until: Cycle::ZERO,
            max_completion: Cycle::ZERO,
            max_write_completion: Cycle::ZERO,
            faults: None,
            stats: BankStats::new(),
        })
    }

    /// Attaches a device fault model (see [`FaultModel`]); without one the
    /// bank behaves exactly as before the reliability layer existed.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The enabled access modes.
    pub fn modes(&self) -> Modes {
        self.modes
    }

    /// Enables or disables write pausing (Zhou et al. — the paper's
    /// reference \[12\]): a read blocked only by an in-flight write in its
    /// (SAG, CD) may interrupt the write, paying a small pause/resume overhead of extra
    /// latency; the write's locks extend by the read's duration plus the
    /// resume overhead. A read of the row being written never pauses it
    /// (its cells are mid-program).
    pub fn with_write_pausing(mut self, enabled: bool) -> Self {
        self.write_pausing = enabled;
        self
    }

    /// True if `access` is a read that would pause an in-flight write in
    /// its subarray group at `now`.
    fn pauses_write(&self, access: &Access, now: Cycle) -> bool {
        if !self.write_pausing || !access.op.is_read() {
            return false;
        }
        let si = access.coord.sag as usize;
        let lock = self.sags.lock[si];
        now < lock
            && lock.saturating_since(now) > PAUSE_MIN_REMAINING
            && self.sags.write_row[si] != access.row
    }

    /// The row currently open in subarray group `sag`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `sag` is out of range.
    pub fn open_row(&self, sag: u32) -> Option<u32> {
        self.sags.open_row[sag as usize]
    }

    /// Instant at which column division `cd`'s local sense/drive I/O becomes
    /// free.
    ///
    /// # Panics
    ///
    /// Panics if `cd` is out of range.
    pub fn cd_io_free_at(&self, cd: u32) -> Cycle {
        self.cd_io_free[cd as usize]
    }

    /// Instant at which subarray group `sag`'s write lock releases.
    ///
    /// # Panics
    ///
    /// Panics if `sag` is out of range.
    pub fn sag_lock_until(&self, sag: u32) -> Cycle {
        self.sags.lock[sag as usize]
    }

    /// True if a backgrounded write is still programming anywhere in the
    /// bank at `now`.
    pub fn write_in_progress(&self, now: Cycle) -> bool {
        now < self.max_write_completion
    }

    fn coord_mask(&self, access: &Access) -> u128 {
        let mut mask = 0u128;
        for cd in access.coord.cds() {
            debug_assert!(cd < self.cd_count, "cd {cd} out of range");
            mask |= 1u128 << cd;
        }
        mask
    }

    fn full_mask(&self) -> u128 {
        if self.cd_count == 128 {
            u128::MAX
        } else {
            (1u128 << self.cd_count) - 1
        }
    }

    /// Removes the given row-buffer slices from every SAG's sensed set: the
    /// global row buffer is about to be overwritten (or the cells behind it
    /// rewritten).
    fn evict_slices(&mut self, mask: u128) {
        for sensed in &mut self.sags.sensed {
            *sensed &= !mask;
        }
    }

    /// Gates common to every access. A pausing read skips the write's SAG
    /// lock (that is the point of the pause).
    fn common_gates(&self, access: &Access, pausing: bool, gates: &mut GateSet) {
        gates.add(self.serial_until, BlockReason::BankBusy);
        gates.add(self.write_block_until, BlockReason::BankBusy);
        if !pausing {
            gates.add(
                self.sags.lock[access.coord.sag as usize],
                BlockReason::SagBusy,
            );
        }
        if self.shared_column_path {
            gates.add(self.next_col, BlockReason::ColumnPath);
        }
    }

    /// The target CDs' sense/drive I/O must be idle; a pausing read treats
    /// the CDs held by the write it pauses as free.
    fn cd_io_gate(&self, access: &Access, pause_mask: u128, gates: &mut GateSet) {
        let mut retry = Cycle::ZERO;
        for cd in access.coord.cds() {
            if pause_mask & (1u128 << cd) != 0 {
                continue;
            }
            retry = retry.max(self.cd_io_free[cd as usize]);
        }
        gates.add(retry, BlockReason::CdBusy);
    }

    /// The target CDs' row-buffer slices must have no pending bursts (a
    /// sensing or write would overwrite / invalidate them).
    fn cd_latch_gate(&self, access: &Access, gates: &mut GateSet) {
        let mut retry = Cycle::ZERO;
        for cd in access.coord.cds() {
            retry = retry.max(self.cd_latch_free[cd as usize]);
        }
        gates.add(retry, BlockReason::CdBusy);
    }

    /// Gates specific to switching the open row of SAG `si`.
    fn row_switch_gates(&self, si: usize, gates: &mut GateSet) {
        gates.add(self.sags.quiesce[si], BlockReason::RowLocked);
        gates.add(self.sags.wordline_free[si], BlockReason::SagBusy);
    }

    /// When partial activation is disabled an activation drives every CD and
    /// overwrites the whole row buffer, so everything must be quiet.
    fn all_cds_free(&self, gates: &mut GateSet) {
        let mut latest = Cycle::ZERO;
        for (io, latch) in self.cd_io_free.iter().zip(&self.cd_latch_free) {
            latest = latest.max(*io).max(*latch);
        }
        gates.add(latest, BlockReason::CdBusy);
    }
}

/// Accumulates every timing gate a plan path consults and remembers the
/// *latest* one. A blocked access cannot issue before all of its gates
/// clear, and each gate instant is a state-derived constant (only a
/// `commit` moves it), so the maximum is the tightest `retry_at` lower
/// bound `plan` can soundly report — it collapses what would otherwise be
/// a chain of fast-forward skip hops (one per gate) into a single hop.
/// Ties keep the gate added first, so the reported `BlockReason` stays
/// deterministic and follows the documented gate-check order.
struct GateSet {
    until: Cycle,
    reason: BlockReason,
}

impl GateSet {
    fn new() -> Self {
        GateSet {
            until: Cycle::ZERO,
            reason: BlockReason::BankBusy,
        }
    }

    fn add(&mut self, until: Cycle, reason: BlockReason) {
        if until > self.until {
            self.until = until;
            self.reason = reason;
        }
    }

    /// `Err` iff any gathered gate is still in the future at `now`.
    fn check(&self, now: Cycle) -> Result<(), Blocked> {
        if now < self.until {
            Err(Blocked {
                reason: self.reason,
                retry_at: self.until,
            })
        } else {
            Ok(())
        }
    }
}

impl Bank for FgnvmBank {
    fn plan(&self, access: &Access, now: Cycle) -> Result<AccessPlan, Blocked> {
        let t = &self.timing;
        let pausing = self.pauses_write(access, now);
        // Every gate the chosen path consults is gathered into `gates` and
        // checked once: a blocked plan therefore reports the *latest*
        // violated gate as `retry_at` (still a sound lower bound — every
        // gathered gate must clear before issue), which lets fast-forward
        // jump all of them in one hop instead of rediscovering them one
        // re-plan at a time.
        let mut gates = GateSet::new();
        self.common_gates(access, pausing, &mut gates);
        let si = access.coord.sag as usize;
        let sensed = self.sags.sensed[si];
        let pause_mask = if pausing { self.sags.write_cds[si] } else { 0 };
        let pause_extra = if pausing {
            PAUSE_OVERHEAD
        } else {
            CycleCount::ZERO
        };
        let mask = self.coord_mask(access);
        let row_open = self.sags.open_row[si] == Some(access.row);
        match access.op {
            Op::Read => {
                if row_open && sensed & mask == mask {
                    // Stream from the global row buffer: only the shared
                    // column path is used, so hits pipeline at tCCD.
                    self.cd_io_gate(access, pause_mask, &mut gates);
                    gates.check(now)?;
                    return Ok(AccessPlan {
                        kind: PlanKind::RowHit,
                        earliest_data: now + t.t_cas,
                        sense_bits: 0,
                    });
                }
                if row_open {
                    // Wordline already selects the row; sense the missing
                    // slice(s) — the underfetch penalty is the extra tRCD.
                    if self.modes.partial_activation {
                        self.cd_io_gate(access, pause_mask, &mut gates);
                        self.cd_latch_gate(access, &mut gates);
                        gates.check(now)?;
                        let unsensed = (mask & !sensed).count_ones() as u64;
                        Ok(AccessPlan {
                            kind: PlanKind::Underfetch,
                            earliest_data: now + t.t_rcd + t.t_cas,
                            sense_bits: unsensed * self.slice_bits,
                        })
                    } else {
                        // Full re-sense of the row (a write or another SAG
                        // invalidated part of it).
                        self.all_cds_free(&mut gates);
                        gates.check(now)?;
                        Ok(AccessPlan {
                            kind: PlanKind::Activate,
                            earliest_data: now + t.t_rcd + t.t_cas,
                            sense_bits: self.row_bits,
                        })
                    }
                } else {
                    if pausing {
                        // The paused write releases the wordline; only the
                        // latch protection of other in-flight reads
                        // remains (gathered below).
                        gates.add(self.sags.wordline_free[si], BlockReason::SagBusy);
                    } else {
                        self.row_switch_gates(si, &mut gates);
                    }
                    let sense_bits = if self.modes.partial_activation {
                        self.cd_io_gate(access, pause_mask, &mut gates);
                        self.cd_latch_gate(access, &mut gates);
                        u64::from(access.coord.cd_count) * self.slice_bits
                    } else {
                        self.all_cds_free(&mut gates);
                        self.row_bits
                    };
                    gates.check(now)?;
                    Ok(AccessPlan {
                        kind: PlanKind::Activate,
                        earliest_data: now + pause_extra + t.t_rcd + t.t_cas,
                        sense_bits,
                    })
                }
            }
            Op::Write => {
                self.cd_io_gate(access, 0, &mut gates);
                self.cd_latch_gate(access, &mut gates);
                let extra = if row_open {
                    CycleCount::ZERO
                } else {
                    self.row_switch_gates(si, &mut gates);
                    t.t_rcd
                };
                gates.check(now)?;
                Ok(AccessPlan {
                    kind: PlanKind::Write,
                    earliest_data: now + extra + t.t_cwd,
                    sense_bits: 0,
                })
            }
        }
    }

    fn commit(
        &mut self,
        access: &Access,
        plan: &AccessPlan,
        now: Cycle,
        data_start: Cycle,
    ) -> Issued {
        assert!(
            data_start >= plan.earliest_data,
            "data burst scheduled before the bank can deliver it"
        );
        let t = self.timing;
        let shift = data_start - plan.earliest_data;
        let cmd = now + shift;
        let data_end = data_start + t.t_burst;
        let mask = self.coord_mask(access);

        // Parallelism statistics: did this access overlap another in-flight
        // operation (tile-level parallelism) or an in-flight write
        // (backgrounded-write hiding)?
        if cmd < self.max_completion {
            self.stats.overlapped_accesses += 1;
        }
        if access.op.is_read() && cmd < self.max_write_completion {
            self.stats.reads_under_write += 1;
        }

        let mut faults = FaultOutcome::default();
        if access.op.is_read() {
            if let Some(model) = &self.faults {
                let (bit_errors, stuck) =
                    model.read_faults(access.row, access.line, self.stats.reads);
                faults.bit_errors = bit_errors;
                faults.stuck_fault = stuck;
                self.stats.read_bit_errors += u64::from(bit_errors);
                self.stats.stuck_faults += u64::from(stuck);
            }
        }

        let completion;
        let full_mask = self.full_mask();
        let line_bits = self.line_bits;
        let partial = self.modes.partial_activation;
        let pausing = self.pauses_write(access, now);
        let si = access.coord.sag as usize;
        match (access.op, plan.kind) {
            (Op::Read, PlanKind::RowHit) => {
                self.stats.reads += 1;
                self.stats.row_hits += 1;
                // The burst streams from the latch; keep the slice alive.
                for cd in access.coord.cds() {
                    let latch = &mut self.cd_latch_free[cd as usize];
                    *latch = (*latch).max(data_end);
                }
                let quiesce = &mut self.sags.quiesce[si];
                *quiesce = (*quiesce).max(data_end);
                completion = data_end;
            }
            (Op::Read, PlanKind::Underfetch) => {
                self.stats.reads += 1;
                self.stats.underfetches += 1;
                self.stats.activations += 1;
                self.stats.sensed_bits += plan.sense_bits;
                // Sensing occupies the CD I/O until the data is latched,
                // then the burst streams from the latch.
                for cd in access.coord.cds() {
                    self.cd_io_free[cd as usize] = data_start;
                    self.cd_latch_free[cd as usize] = data_end;
                }
                self.evict_slices(mask);
                self.sags.sensed[si] |= mask;
                let quiesce = &mut self.sags.quiesce[si];
                *quiesce = (*quiesce).max(data_end);
                completion = data_end;
            }
            (Op::Read, PlanKind::Activate) => {
                self.stats.reads += 1;
                self.stats.activations += 1;
                self.stats.sensed_bits += plan.sense_bits;
                if partial {
                    for cd in access.coord.cds() {
                        self.cd_io_free[cd as usize] = data_start;
                        self.cd_latch_free[cd as usize] = data_end;
                    }
                    self.evict_slices(mask);
                } else {
                    // Every CD is driven and the whole row buffer rewritten.
                    let act_done = cmd + t.t_rcd;
                    for io in self.cd_io_free.iter_mut() {
                        *io = (*io).max(act_done);
                    }
                    for cd in access.coord.cds() {
                        self.cd_io_free[cd as usize] = data_start;
                        self.cd_latch_free[cd as usize] = data_end;
                    }
                    self.evict_slices(full_mask);
                }
                self.sags.open_row[si] = Some(access.row);
                self.sags.wordline_free[si] = cmd + t.t_rcd;
                self.sags.sensed[si] = if partial { mask } else { full_mask };
                self.sags.quiesce[si] = self.sags.quiesce[si].max(data_end);
                completion = data_end;
                if pausing {
                    // The interrupted write resumes after the read: its
                    // locks extend by the read's duration plus the resume
                    // overhead.
                    self.stats.write_pauses += 1;
                    let extension = data_end.saturating_since(cmd) + PAUSE_OVERHEAD;
                    self.sags.lock[si] += extension;
                    let new_lock = self.sags.lock[si];
                    self.sags.quiesce[si] = self.sags.quiesce[si].max(new_lock);
                    let write_cds = self.sags.write_cds[si];
                    for cd in 0..self.cd_count {
                        if write_cds & (1u128 << cd) != 0 {
                            let io = &mut self.cd_io_free[cd as usize];
                            *io = (*io).max(new_lock);
                        }
                    }
                    self.max_write_completion = self.max_write_completion.max(new_lock);
                }
            }
            (Op::Write, PlanKind::Write) => {
                if let Some(model) = &mut self.faults {
                    let (retries, verify_failed) =
                        model.write_attempts(access.row, access.line, self.stats.writes);
                    faults.retries = retries;
                    faults.verify_failed = verify_failed;
                    self.stats.write_retries += u64::from(retries);
                    self.stats.verify_failures += u64::from(verify_failed);
                }
                self.stats.writes += 1;
                self.stats.written_bits += line_bits;
                // Each write-verify retry re-applies a full programming
                // pulse, extending the tile occupancy by one tWP.
                let program = CycleCount::new(t.t_wp.raw() * u64::from(faults.retries + 1));
                completion = data_end + program + t.t_wr;
                // Write driving occupies the CD I/O until programming and
                // recovery finish; the written slices are stale everywhere.
                for cd in access.coord.cds() {
                    self.cd_io_free[cd as usize] = completion;
                }
                self.evict_slices(mask);
                if self.sags.open_row[si] != Some(access.row) {
                    self.stats.activations += 1;
                    self.sags.open_row[si] = Some(access.row);
                    self.sags.sensed[si] = 0;
                    self.sags.wordline_free[si] = cmd + t.t_rcd;
                }
                // §4: the write's SAG and CD(s) are unavailable until the
                // programming completes.
                self.sags.lock[si] = completion;
                self.sags.write_cds[si] = mask;
                self.sags.write_row[si] = access.row;
                self.sags.quiesce[si] = self.sags.quiesce[si].max(completion);
                if !self.modes.background_writes {
                    self.write_block_until = completion;
                }
                self.max_write_completion = self.max_write_completion.max(completion);
            }
            (op, kind) => unreachable!("fgnvm bank committed {op} with plan kind {kind:?}"),
        }

        if self.shared_column_path {
            self.next_col = cmd + t.t_ccd;
        }
        if !self.modes.multi_activation {
            self.serial_until = self.serial_until.max(completion);
        }
        self.max_completion = self.max_completion.max(completion);
        Issued {
            data_start,
            data_end,
            completion,
            sense_bits: plan.sense_bits,
            kind: plan.kind,
            faults,
        }
    }

    fn stats(&self) -> &BankStats {
        &self.stats
    }

    fn next_ready_hint(&self, now: Cycle) -> Cycle {
        // A lower bound on the earliest instant at which *any* access could
        // issue, built from the gates `plan` applies to every access:
        // `serial_until`, `write_block_until`, and (when the column path is
        // shared) `next_col` gate unconditionally, so the hint may sit at
        // their max. Per-resource gates differ per access, so only the min
        // across a resource class may be added.
        let mut hint = self.serial_until.max(self.write_block_until);
        if self.shared_column_path {
            hint = hint.max(self.next_col);
        }
        if !self.write_pausing {
            // Without write pausing every access also waits on its SAG's
            // write lock and its CDs' I/O; the min over each class bounds
            // every concrete access from below. With pausing enabled a read
            // may bypass both (that is the point of the pause), so neither
            // may raise the hint.
            let min_lock = self.sags.lock.iter().copied().min().unwrap_or(Cycle::ZERO);
            let min_io = self.cd_io_free.iter().copied().min().unwrap_or(Cycle::ZERO);
            hint = hint.max(min_lock).max(min_io);
        }
        hint.max(now)
    }

    fn plan_class(&self, access: &Access) -> u128 {
        // `plan` reads the access only through: the op, the tile coordinate
        // (SAG index and CD mask), whether the row is the SAG's open row,
        // and — for the pausing predicate — whether it is the row the
        // in-flight write is programming. Everything else comes from bank
        // state shared by all accesses, so this key is exact.
        let si = access.coord.sag as usize;
        u128::from(access.op.is_read())
            | u128::from(self.sags.open_row[si] == Some(access.row)) << 1
            | u128::from(self.sags.write_row[si] == access.row) << 2
            | u128::from(access.coord.sag) << 3
            | u128::from(access.coord.cd_first) << 35
            | u128::from(access.coord.cd_count) << 67
    }

    fn write_in_progress(&self, now: Cycle) -> bool {
        FgnvmBank::write_in_progress(self, now)
    }

    fn occupancy(&self) -> crate::OccupancySnapshot {
        crate::OccupancySnapshot {
            open_rows: self.sags.open_row.clone(),
            sag_locks: self.sags.lock.clone(),
            cd_io_free: self.cd_io_free.clone(),
            busy_until: self.max_completion,
        }
    }

    fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("bank.fgnvm");
        // Snapshot layout is per-SAG record-ordered (the pre-SoA byte
        // stream): golden snapshots must stay byte-identical.
        w.usize(self.sags.len());
        for i in 0..self.sags.len() {
            w.opt_u32(self.sags.open_row[i]);
            w.u128(self.sags.sensed[i]);
            w.u64(self.sags.wordline_free[i].raw());
            w.u64(self.sags.lock[i].raw());
            w.u128(self.sags.write_cds[i]);
            w.u32(self.sags.write_row[i]);
            w.u64(self.sags.quiesce[i].raw());
        }
        w.usize(self.cd_io_free.len());
        for c in &self.cd_io_free {
            w.u64(c.raw());
        }
        for c in &self.cd_latch_free {
            w.u64(c.raw());
        }
        w.u64(self.next_col.raw());
        w.u64(self.serial_until.raw());
        w.u64(self.write_block_until.raw());
        w.u64(self.max_completion.raw());
        w.u64(self.max_write_completion.raw());
        w.bool(self.faults.is_some());
        if let Some(model) = &self.faults {
            model.save_state(w);
        }
        self.stats.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("bank.fgnvm")?;
        let sag_count = r.usize()?;
        if sag_count != self.sags.len() {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "checkpoint has {sag_count} SAGs, bank has {}",
                self.sags.len()
            )));
        }
        for i in 0..self.sags.len() {
            self.sags.open_row[i] = r.opt_u32()?;
            self.sags.sensed[i] = r.u128()?;
            self.sags.wordline_free[i] = Cycle::new(r.u64()?);
            self.sags.lock[i] = Cycle::new(r.u64()?);
            self.sags.write_cds[i] = r.u128()?;
            self.sags.write_row[i] = r.u32()?;
            self.sags.quiesce[i] = Cycle::new(r.u64()?);
        }
        let cd_count = r.usize()?;
        if cd_count != self.cd_io_free.len() {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "checkpoint has {cd_count} CDs, bank has {}",
                self.cd_io_free.len()
            )));
        }
        for c in &mut self.cd_io_free {
            *c = Cycle::new(r.u64()?);
        }
        for c in &mut self.cd_latch_free {
            *c = Cycle::new(r.u64()?);
        }
        self.next_col = Cycle::new(r.u64()?);
        self.serial_until = Cycle::new(r.u64()?);
        self.write_block_until = Cycle::new(r.u64()?);
        self.max_completion = Cycle::new(r.u64()?);
        self.max_write_completion = Cycle::new(r.u64()?);
        let has_faults = r.bool()?;
        if has_faults != self.faults.is_some() {
            return Err(fgnvm_types::SnapshotError::Corrupt(
                "fault-model presence mismatch between checkpoint and config".into(),
            ));
        }
        if let Some(model) = &mut self.faults {
            model.load_state(r)?;
        }
        self.stats = BankStats::load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_types::address::TileCoord;
    use fgnvm_types::TimingConfig;

    fn geom(sags: u32, cds: u32) -> Geometry {
        Geometry::builder().sags(sags).cds(cds).build().unwrap()
    }

    fn bank(sags: u32, cds: u32, modes: Modes) -> FgnvmBank {
        FgnvmBank::new(
            &geom(sags, cds),
            TimingConfig::paper_pcm().to_cycles().unwrap(),
            modes,
            true,
        )
        .unwrap()
    }

    fn access(op: Op, geometry: &Geometry, row: u32, line: u32) -> Access {
        let (cd_first, cd_count) = geometry.cds_of_line(line);
        Access {
            op,
            row,
            line,
            coord: TileCoord {
                sag: geometry.sag_of_row(row),
                cd_first,
                cd_count,
            },
        }
    }

    #[test]
    fn partial_activation_senses_one_slice() {
        let g = geom(8, 2);
        let b = bank(8, 2, Modes::all());
        let a = access(Op::Read, &g, 0, 0);
        let p = b.plan(&a, Cycle::ZERO).unwrap();
        assert_eq!(p.kind, PlanKind::Activate);
        // 8×2: one CD slice is 512 B = 4096 bits (paper Fig. 5).
        assert_eq!(p.sense_bits, 4096);
    }

    #[test]
    fn multi_activation_overlaps_distinct_pairs() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        let a = access(Op::Read, &g, 0, 0);
        let pa = b.plan(&a, Cycle::ZERO).unwrap();
        b.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
        // (sag1, cd1) read at the next column-command slot: allowed while
        // the first is still sensing.
        let rows_per_sag = g.rows_per_sag();
        let b_access = access(Op::Read, &g, rows_per_sag, 4);
        let t = Cycle::new(4);
        let pb = b.plan(&b_access, t).unwrap();
        let ib = b.commit(&b_access, &pb, t, pb.earliest_data);
        assert_eq!(pb.kind, PlanKind::Activate);
        assert!(ib.data_start < Cycle::new(100));
        assert_eq!(b.stats().overlapped_accesses, 1);
    }

    #[test]
    fn same_cd_sensing_conflict_serializes() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        let a = access(Op::Read, &g, 0, 0);
        let pa = b.plan(&a, Cycle::ZERO).unwrap();
        let ia = b.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
        // Same CD, different SAG: the CD's sense I/O is busy until the data
        // is latched (data_start), and the latch holds the pending burst
        // until data_end. `retry_at` names the latest violated gate, so the
        // conflict resolves in a single hop straight to data_end.
        let rows_per_sag = g.rows_per_sag();
        let conflicting = access(Op::Read, &g, rows_per_sag, 0);
        let blocked = b.plan(&conflicting, Cycle::new(4)).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::CdBusy);
        assert_eq!(blocked.retry_at, ia.data_end);
        // Probing between the two gates confirms the bound was sound: the
        // latch alone still blocks at data_start.
        let blocked = b.plan(&conflicting, ia.data_start).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::CdBusy);
        assert_eq!(blocked.retry_at, ia.data_end);
        assert!(b.plan(&conflicting, ia.data_end).is_ok());
    }

    #[test]
    fn cross_sag_sensing_evicts_row_buffer_slice() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        // SAG 0 senses CD 0.
        let a = access(Op::Read, &g, 0, 0);
        let pa = b.plan(&a, Cycle::ZERO).unwrap();
        let ia = b.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
        // SAG 1 senses the same CD later: evicts SAG 0's slice.
        let other = access(Op::Read, &g, g.rows_per_sag(), 0);
        let po = b.plan(&other, ia.data_end).unwrap();
        let io = b.commit(&other, &po, ia.data_end, po.earliest_data);
        // SAG 0's line 0 is no longer a hit — it must be re-sensed.
        let again = access(Op::Read, &g, 0, 1); // same CD slice
        let pa2 = b.plan(&again, io.data_end).unwrap();
        assert_eq!(pa2.kind, PlanKind::Underfetch);
    }

    #[test]
    fn row_hits_pipeline_at_tccd() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        let a = access(Op::Read, &g, 0, 0);
        let pa = b.plan(&a, Cycle::ZERO).unwrap();
        let ia = b.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
        // After the first burst, hits to the sensed slice go back to back.
        let t0 = ia.data_end;
        let h1 = access(Op::Read, &g, 0, 1);
        let p1 = b.plan(&h1, t0).unwrap();
        assert_eq!(p1.kind, PlanKind::RowHit);
        b.commit(&h1, &p1, t0, p1.earliest_data);
        // tCCD = 4 cycles later another hit to the same slice is plannable,
        // even though the first hit's burst is still pending.
        let t1 = t0 + CycleCount::new(4);
        let h2 = access(Op::Read, &g, 0, 2);
        let p2 = b.plan(&h2, t1).unwrap();
        assert_eq!(p2.kind, PlanKind::RowHit);
    }

    #[test]
    fn same_sag_different_row_waits() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        let a = access(Op::Read, &g, 0, 0);
        let pa = b.plan(&a, Cycle::ZERO).unwrap();
        let ia = b.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
        // Different row in the same SAG, different CD: the single wordline
        // per SAG forbids a second open row until quiesce.
        let conflicting = access(Op::Read, &g, 1, 4);
        let blocked = b.plan(&conflicting, Cycle::new(4)).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::RowLocked);
        assert_eq!(blocked.retry_at, ia.data_end);
    }

    #[test]
    fn same_sag_same_row_other_cd_is_underfetch_and_parallel() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        let a = access(Op::Read, &g, 0, 0);
        let pa = b.plan(&a, Cycle::ZERO).unwrap();
        b.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
        // Same row, different CD while the first read is still in flight:
        // wordline is held, so only the unsensed slice is fetched.
        let second = access(Op::Read, &g, 0, 4);
        let t = Cycle::new(4);
        let p2 = b.plan(&second, t).unwrap();
        assert_eq!(p2.kind, PlanKind::Underfetch);
        assert_eq!(p2.sense_bits, 2048); // 1 KB / 4 CDs
        assert_eq!(p2.earliest_data, t + CycleCount::new(48));
    }

    #[test]
    fn row_hit_after_sensing() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        let a = access(Op::Read, &g, 0, 0);
        let pa = b.plan(&a, Cycle::ZERO).unwrap();
        let ia = b.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
        // Line 1 shares the CD (4 lines per CD) — hit once the data latched.
        let hit = access(Op::Read, &g, 0, 1);
        let p = b.plan(&hit, ia.data_start).unwrap();
        assert_eq!(p.kind, PlanKind::RowHit);
        assert_eq!(p.sense_bits, 0);
    }

    #[test]
    fn backgrounded_write_allows_remote_reads_only() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        let w = access(Op::Write, &g, 0, 0);
        let pw = b.plan(&w, Cycle::ZERO).unwrap();
        let iw = b.commit(&w, &pw, Cycle::ZERO, pw.earliest_data);
        assert!(iw.completion > Cycle::new(60));
        let during = Cycle::new(30);
        // Same SAG: locked.
        let same_sag = access(Op::Read, &g, 1, 4);
        assert_eq!(
            b.plan(&same_sag, during).unwrap_err().reason,
            BlockReason::SagBusy
        );
        // Same CD, other SAG: locked.
        let same_cd = access(Op::Read, &g, g.rows_per_sag(), 0);
        assert_eq!(
            b.plan(&same_cd, during).unwrap_err().reason,
            BlockReason::CdBusy
        );
        // Distinct (SAG, CD): proceeds during the write.
        let free = access(Op::Read, &g, g.rows_per_sag(), 4);
        let pf = b.plan(&free, during).unwrap();
        b.commit(&free, &pf, during, pf.earliest_data);
        assert_eq!(b.stats().reads_under_write, 1);
    }

    #[test]
    fn disabled_background_writes_block_bank() {
        let g = geom(4, 4);
        let mut b = bank(
            4,
            4,
            Modes {
                background_writes: false,
                ..Modes::all()
            },
        );
        let w = access(Op::Write, &g, 0, 0);
        let pw = b.plan(&w, Cycle::ZERO).unwrap();
        let iw = b.commit(&w, &pw, Cycle::ZERO, pw.earliest_data);
        let far = access(Op::Read, &g, g.rows_per_sag(), 4);
        let blocked = b.plan(&far, Cycle::new(30)).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::BankBusy);
        assert_eq!(blocked.retry_at, iw.completion);
    }

    #[test]
    fn disabled_multi_activation_serializes_everything() {
        let g = geom(4, 4);
        let mut b = bank(
            4,
            4,
            Modes {
                multi_activation: false,
                ..Modes::all()
            },
        );
        let a = access(Op::Read, &g, 0, 0);
        let pa = b.plan(&a, Cycle::ZERO).unwrap();
        let ia = b.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
        let other = access(Op::Read, &g, g.rows_per_sag(), 4);
        let blocked = b.plan(&other, Cycle::new(4)).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::BankBusy);
        assert_eq!(blocked.retry_at, ia.completion);
    }

    #[test]
    fn disabled_partial_activation_senses_full_row() {
        let g = geom(4, 4);
        let mut b = bank(
            4,
            4,
            Modes {
                partial_activation: false,
                ..Modes::all()
            },
        );
        let a = access(Op::Read, &g, 0, 0);
        let p = b.plan(&a, Cycle::ZERO).unwrap();
        assert_eq!(p.sense_bits, 8192);
        let ia = b.commit(&a, &p, Cycle::ZERO, p.earliest_data);
        // Every CD was driven during the activation; a read in another SAG
        // sharing any CD must wait for the activation window (probe after
        // the tCCD column-path window so the CD gate is what blocks).
        let other = access(Op::Read, &g, g.rows_per_sag(), 4);
        let blocked = b.plan(&other, Cycle::new(4)).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::CdBusy);
        // …and a hit to any line of the row needs no re-sense.
        let hit = access(Op::Read, &g, 0, 15);
        let ph = b.plan(&hit, ia.data_end).unwrap();
        assert_eq!(ph.kind, PlanKind::RowHit);
    }

    #[test]
    fn write_invalidates_written_slice() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        // Open and sense CD 0 of row 0.
        let r = access(Op::Read, &g, 0, 0);
        let pr = b.plan(&r, Cycle::ZERO).unwrap();
        let ir = b.commit(&r, &pr, Cycle::ZERO, pr.earliest_data);
        // Write the same slice.
        let w = access(Op::Write, &g, 0, 1);
        let pw = b.plan(&w, ir.completion).unwrap();
        let iw = b.commit(&w, &pw, ir.completion, pw.earliest_data);
        // Re-reading the slice is an underfetch (stale buffer), not a hit.
        let r2 = access(Op::Read, &g, 0, 0);
        let p2 = b.plan(&r2, iw.completion).unwrap();
        assert_eq!(p2.kind, PlanKind::Underfetch);
    }

    #[test]
    fn wide_line_occupies_multiple_cds() {
        let g = geom(8, 32);
        let mut b = FgnvmBank::new(
            &g,
            TimingConfig::paper_pcm().to_cycles().unwrap(),
            Modes::all(),
            true,
        )
        .unwrap();
        let a = access(Op::Read, &g, 0, 0);
        assert_eq!(a.coord.cd_count, 2);
        let p = b.plan(&a, Cycle::ZERO).unwrap();
        // Two 32 B slices sensed = 64 B = 512 bits.
        assert_eq!(p.sense_bits, 512);
        let ia = b.commit(&a, &p, Cycle::ZERO, p.earliest_data);
        // Both CDs' sense I/O are busy until the data latches.
        assert_eq!(b.cd_io_free_at(0), ia.data_start);
        assert_eq!(b.cd_io_free_at(1), ia.data_start);
        assert_eq!(b.cd_io_free_at(2), Cycle::ZERO);
    }

    #[test]
    fn too_many_cds_rejected() {
        let g = Geometry::builder()
            .row_bytes(4096)
            .line_bytes(8)
            .sags(8)
            .cds(256)
            .build()
            .unwrap();
        let err = FgnvmBank::new(
            &g,
            TimingConfig::paper_pcm().to_cycles().unwrap(),
            Modes::all(),
            true,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::OutOfRange { field: "cds", .. }));
    }

    #[test]
    fn modes_from_bank_model() {
        let m = Modes::try_from(BankModel::fgnvm()).unwrap();
        assert_eq!(m, Modes::all());
        assert!(Modes::try_from(BankModel::Baseline).is_err());
    }

    #[test]
    fn column_path_spacing_applies_across_sags() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        let a = access(Op::Read, &g, 0, 0);
        let pa = b.plan(&a, Cycle::ZERO).unwrap();
        b.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
        // One cycle later the shared column command path is still busy.
        let other = access(Op::Read, &g, g.rows_per_sag(), 4);
        let blocked = b.plan(&other, Cycle::new(1)).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::ColumnPath);
        assert_eq!(blocked.retry_at, Cycle::new(4));
    }

    #[test]
    fn unshared_column_path_removes_spacing() {
        let g = geom(4, 4);
        let mut b = FgnvmBank::new(
            &g,
            TimingConfig::paper_pcm().to_cycles().unwrap(),
            Modes::all(),
            false,
        )
        .unwrap();
        let a = access(Op::Read, &g, 0, 0);
        let pa = b.plan(&a, Cycle::ZERO).unwrap();
        b.commit(&a, &pa, Cycle::ZERO, pa.earliest_data);
        let other = access(Op::Read, &g, g.rows_per_sag(), 4);
        assert!(b.plan(&other, Cycle::new(1)).is_ok());
    }

    #[test]
    fn write_pausing_lets_blocked_read_through() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all()).with_write_pausing(true);
        let w = access(Op::Write, &g, 0, 0);
        let pw = b.plan(&w, Cycle::ZERO).unwrap();
        let iw = b.commit(&w, &pw, Cycle::ZERO, pw.earliest_data);
        // A read to the SAME SAG (different row) during the write: blocked
        // without pausing, allowed with it — paying the pause overhead.
        let during = Cycle::new(20);
        let r = access(Op::Read, &g, 1, 4);
        let pr = b.plan(&r, during).unwrap();
        assert_eq!(pr.kind, PlanKind::Activate);
        assert_eq!(pr.earliest_data, during + CycleCount::new(4 + 48)); // pause + tRCD+tCAS
        let ir = b.commit(&r, &pr, during, pr.earliest_data);
        assert_eq!(b.stats().write_pauses, 1);
        // The paused write's SAG lock extended past its original end.
        assert!(b.sag_lock_until(0) > iw.completion);
        assert!(b.sag_lock_until(0) >= ir.data_end);
    }

    #[test]
    fn write_pausing_never_pauses_for_the_written_row() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all()).with_write_pausing(true);
        let w = access(Op::Write, &g, 0, 0);
        let pw = b.plan(&w, Cycle::ZERO).unwrap();
        b.commit(&w, &pw, Cycle::ZERO, pw.earliest_data);
        // Reading the row whose cells are mid-program is not allowed.
        let r = access(Op::Read, &g, 0, 4);
        let blocked = b.plan(&r, Cycle::new(20)).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::SagBusy);
    }

    #[test]
    fn write_pausing_skips_nearly_finished_writes() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all()).with_write_pausing(true);
        let w = access(Op::Write, &g, 0, 0);
        let pw = b.plan(&w, Cycle::ZERO).unwrap();
        let iw = b.commit(&w, &pw, Cycle::ZERO, pw.earliest_data);
        // With less than the pause threshold remaining, just wait.
        let late = Cycle::new(iw.completion.raw() - 6);
        let r = access(Op::Read, &g, 1, 4);
        let blocked = b.plan(&r, late).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::SagBusy);
    }

    #[test]
    fn write_pausing_disabled_by_default() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        let w = access(Op::Write, &g, 0, 0);
        let pw = b.plan(&w, Cycle::ZERO).unwrap();
        b.commit(&w, &pw, Cycle::ZERO, pw.earliest_data);
        let r = access(Op::Read, &g, 1, 4);
        assert!(b.plan(&r, Cycle::new(20)).is_err());
        assert_eq!(b.stats().write_pauses, 0);
    }

    #[test]
    fn paper_availability_claim_93_8_percent() {
        // §4: "for more realistically sized banks such as a 32×32 tile
        // bank, the remaining 31×31 tiles are still available …
        // approximately 93.8% of data in the bank is still able to be
        // accessed during a backgrounded write operation."
        let g = Geometry::builder()
            .rows_per_bank(32_768)
            .row_bytes(4096)
            .line_bytes(64)
            .sags(32)
            .cds(32)
            .build()
            .unwrap();
        let mut b = FgnvmBank::new(
            &g,
            TimingConfig::paper_pcm().to_cycles().unwrap(),
            Modes::all(),
            true,
        )
        .unwrap();
        // Start a write in (SAG 0, CD 0).
        let w = access(Op::Write, &g, 0, 0);
        let pw = b.plan(&w, Cycle::ZERO).unwrap();
        b.commit(&w, &pw, Cycle::ZERO, pw.earliest_data);
        // Probe one read per (SAG, CD) pair during the write (after the
        // tCCD window so only write locks can block).
        let during = Cycle::new(30);
        let mut accessible = 0u32;
        for sag in 0..32u32 {
            for cd in 0..32u32 {
                let row = sag * g.rows_per_sag() + 1;
                let lines_per_cd = g.lines_per_row() / g.cds();
                let line = cd * lines_per_cd;
                let probe = access(Op::Read, &g, row, line);
                assert_eq!(probe.coord.sag, sag);
                assert_eq!(probe.coord.cd_first, cd);
                if b.plan(&probe, during).is_ok() {
                    accessible += 1;
                }
            }
        }
        // 31 × 31 of 32 × 32 pairs = 93.8 %.
        assert_eq!(accessible, 31 * 31);
        assert!((f64::from(accessible) / 1024.0 - 0.938).abs() < 0.001);
    }

    #[test]
    fn write_to_open_row_keeps_wordline_but_stales_slice() {
        let g = geom(4, 4);
        let mut b = bank(4, 4, Modes::all());
        let r = access(Op::Read, &g, 0, 4); // CD 1
        let pr = b.plan(&r, Cycle::ZERO).unwrap();
        let ir = b.commit(&r, &pr, Cycle::ZERO, pr.earliest_data);
        // Write a *different* CD of the same open row: no activation.
        let w = access(Op::Write, &g, 0, 0); // CD 0
        let pw = b.plan(&w, ir.data_end).unwrap();
        assert_eq!(pw.earliest_data, ir.data_end + CycleCount::new(3)); // just tCWD
        let iw = b.commit(&w, &pw, ir.data_end, pw.earliest_data);
        // CD 1's slice survived; it is still a hit after the write.
        let hit = access(Op::Read, &g, 0, 5);
        let ph = b.plan(&hit, iw.completion).unwrap();
        assert_eq!(ph.kind, PlanKind::RowHit);
    }
}
