//! Bank models for the FgNVM architecture.
//!
//! This crate implements the paper's primary contribution — the
//! two-dimensionally subdivided NVM bank with tile-level parallelism
//! ([`FgnvmBank`]) — together with the state-of-the-art baseline it is
//! compared against ([`BaselineBank`]). Both speak the same two-phase
//! [`Bank`] protocol so the memory controller in `fgnvm-mem` can drive
//! either interchangeably.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fgnvm_bank::{Access, Bank, FgnvmBank, Modes};
//! use fgnvm_types::address::TileCoord;
//! use fgnvm_types::geometry::Geometry;
//! use fgnvm_types::request::Op;
//! use fgnvm_types::time::Cycle;
//! use fgnvm_types::TimingConfig;
//!
//! let geom = Geometry::builder().sags(4).cds(4).build()?;
//! let timing = TimingConfig::paper_pcm().to_cycles()?;
//! let mut bank = FgnvmBank::new(&geom, timing, Modes::all(), true)?;
//!
//! let read = Access {
//!     op: Op::Read,
//!     row: 42,
//!     line: 0,
//!     coord: TileCoord { sag: geom.sag_of_row(42), cd_first: 0, cd_count: 1 },
//! };
//! let plan = bank.plan(&read, Cycle::ZERO).expect("idle bank");
//! let issued = bank.commit(&read, &plan, Cycle::ZERO, plan.earliest_data);
//! assert_eq!(issued.sense_bits, 2048); // one 256 B slice of the 1 KB row
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod baseline;
pub mod dram;
pub mod faults;
pub mod fgnvm;
pub mod stats;

pub use access::{Access, AccessPlan, BlockReason, Blocked, Issued, PlanKind};
pub use baseline::BaselineBank;
pub use dram::{DramBank, RefreshCycles};
pub use faults::{FaultModel, FaultOutcome};
pub use fgnvm::{FgnvmBank, Modes, PAUSE_MIN_REMAINING, PAUSE_OVERHEAD};
pub use stats::BankStats;

use fgnvm_types::time::Cycle;

/// Point-in-time snapshot of a bank's internal occupancy windows.
///
/// Exposed so external layers (the `fgnvm-check` conformance oracle, debug
/// dumps) can inspect the FSM without reaching into private state. Vectors
/// are indexed by SAG / CD; monolithic banks report single-element vectors
/// and models without introspection return the empty default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// The row each SAG's wordline currently selects, if any.
    pub open_rows: Vec<Option<u32>>,
    /// Instant each SAG's write lock releases (`ZERO` when unlocked).
    pub sag_locks: Vec<Cycle>,
    /// Instant each CD's sense/drive I/O path becomes free.
    pub cd_io_free: Vec<Cycle>,
    /// Instant every operation committed so far has fully retired.
    pub busy_until: Cycle,
}

/// The two-phase bank protocol spoken by the memory controller.
///
/// See the [`access`] module docs for why planning and committing are
/// separate steps. Implementations must be deterministic: a successful
/// `plan` at cycle `now` must still be valid for a `commit` at the same
/// `now` with any `data_start >= plan.earliest_data`.
pub trait Bank: std::fmt::Debug + Send {
    /// Checks whether `access` can be issued at `now` without mutating any
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`Blocked`] naming the busy resource and a retry hint when
    /// the access cannot be issued at `now`.
    fn plan(&self, access: &Access, now: Cycle) -> Result<AccessPlan, Blocked>;

    /// Commits a previously planned access with the controller-arbitrated
    /// data-burst start, updating every internal busy window.
    ///
    /// # Panics
    ///
    /// Panics if `data_start` is earlier than `plan.earliest_data`, or if
    /// `plan` does not correspond to the bank's current state (e.g. it was
    /// produced before another commit at the same cycle).
    fn commit(
        &mut self,
        access: &Access,
        plan: &AccessPlan,
        now: Cycle,
        data_start: Cycle,
    ) -> Issued;

    /// Event counters accumulated so far.
    fn stats(&self) -> &BankStats;

    /// A lower bound on the earliest instant at which *some* access could
    /// become issuable.
    ///
    /// Contract (the fast-forward core and the schedulers rely on it): for
    /// every access `a` and instant `t ≥ now`, if `plan(a, t)` succeeds then
    /// `next_ready_hint(now) ≤ t`. Equivalently the hint never points past
    /// a cycle at which work could issue — in particular, if anything is
    /// issuable at `now` the hint is exactly `now`. A hint *earlier* than
    /// the true next issuable cycle is merely less efficient (the caller
    /// re-polls); a hint later than it would skip real work and is a bug.
    fn next_ready_hint(&self, now: Cycle) -> Cycle;

    /// A plan-equivalence class for `access`: two accesses with equal keys
    /// are guaranteed to receive identical [`plan`](Bank::plan) results at
    /// any one instant and bank state. Callers scanning a queue (the
    /// fast-forward calendar) may therefore plan one representative per
    /// class and reuse its verdict for the rest.
    ///
    /// The default packs the access's full identity — exact for any
    /// deterministic model, deduplicating only true repeats. Models should
    /// coarsen it to what `plan` actually reads (e.g. the FgNVM bank's plan
    /// consults only the op, the tile coordinate, and how the row relates
    /// to the SAG's open and in-flight-write rows); a key that merges
    /// accesses `plan` can tell apart is a correctness bug, caught by the
    /// calendar differential suite.
    fn plan_class(&self, access: &Access) -> u128 {
        u128::from(access.op.is_read())
            | u128::from(access.row) << 1
            | u128::from(access.line) << 33
            | u128::from(access.coord.sag) << 65
            | u128::from(access.coord.cd_first) << 86
            | u128::from(access.coord.cd_count) << 107
    }

    /// True while a write is still programming cells anywhere in the bank.
    /// TLP-aware schedulers use this to avoid stacking writes in one bank
    /// (each in-flight write locks a whole column division and subarray
    /// group). The default is pessimistically `false` for models that do
    /// not track it.
    fn write_in_progress(&self, now: Cycle) -> bool {
        let _ = now;
        false
    }

    /// A snapshot of the bank's occupancy windows for external inspection.
    /// Models without introspection return the empty default; both NVM FSMs
    /// override this with their real per-SAG/per-CD state.
    fn occupancy(&self) -> OccupancySnapshot {
        OccupancySnapshot::default()
    }

    /// Serialize every piece of mutable FSM state into a checkpoint.
    ///
    /// Structural parameters (timing, geometry, fault hash seeds) are *not*
    /// written — restore rebuilds the bank from configuration and overlays
    /// this state. Together with [`Bank::load_state`] the round trip must be
    /// exact: a restored bank behaves bit-identically to the original from
    /// the checkpoint cycle onward.
    fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter);

    /// Restore mutable FSM state written by [`Bank::save_state`] into a
    /// freshly constructed bank of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](fgnvm_types::SnapshotError) when the
    /// checkpoint is truncated, corrupt, or was written by a different bank
    /// model.
    fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_trait_is_object_safe() {
        fn _takes_dyn(_: &dyn Bank) {}
    }
}
