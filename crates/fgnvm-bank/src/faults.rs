//! Deterministic device fault model: transient read errors, write-verify
//! failures, and wear-induced stuck-at faults.
//!
//! NVM cells fail in ways DRAM cells do not. Resistance drift and sensing
//! noise flip bits transiently on reads (a *raw bit error rate*, RBER);
//! programming pulses fail stochastically, which real PCM devices catch
//! with an on-die *write-verify* step that re-applies the pulse; and cells
//! wear out after enough SET/RESET cycles, leaving *stuck-at* faults that
//! no retry can clear. Each bank owns one [`FaultModel`] instance so that
//! faults surface exactly where the paper's architecture localizes them:
//! at the (SAG, CD) tile serving the access.
//!
//! Determinism is load-bearing: two runs with identical configurations and
//! traces must produce identical fault streams, so every draw is a pure
//! hash of `(seed, row, line, serial)` rather than a stateful RNG shared
//! across banks. The serial number is the bank's own access counter, which
//! is itself deterministic for a deterministic controller.

use std::collections::HashMap;

/// Per-access fault outcome, carried on [`crate::Issued`].
///
/// The default value (all zeros / false) means "no fault machinery
/// engaged" and is what every access reports when the fault model is
/// disabled — keeping the disabled path bit-identical to a build without
/// the reliability layer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultOutcome {
    /// Extra write-verify iterations this write needed (0 = first pulse
    /// verified clean). Each retry re-occupies the tile for another tWP.
    pub retries: u32,
    /// True if the write exhausted its retry budget and still failed
    /// verify; the controller must re-issue it.
    pub verify_failed: bool,
    /// Transient bit errors in the sensed line (reads only).
    pub bit_errors: u32,
    /// True if the accessed row has worn past the endurance threshold and
    /// reads see a permanent stuck-at fault.
    pub stuck_fault: bool,
}

/// Deterministic per-bank fault injector.
///
/// Construct with [`FaultModel::new`] and attach to a bank via its
/// `with_faults` builder. All draws hash `(seed, row, line, serial)`, so
/// identical configurations replay identical fault streams.
#[derive(Debug, Clone)]
pub struct FaultModel {
    seed: u64,
    rber: f64,
    write_fail_prob: f64,
    max_write_retries: u32,
    wear_stuck_threshold: u64,
    line_bits: u64,
    /// Writes absorbed per row of this bank (programming pulses, counting
    /// retries — retrying accelerates wear).
    row_writes: HashMap<u32, u64>,
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of a 64-bit input.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultModel {
    /// Creates a fault model for one bank.
    ///
    /// `seed` should already be decorrelated per bank (the controller
    /// folds the bank index into the configured seed). `line_bits` is the
    /// number of bits sensed per line access, the exposure window for
    /// transient read errors.
    pub fn new(
        seed: u64,
        rber: f64,
        write_fail_prob: f64,
        max_write_retries: u32,
        wear_stuck_threshold: u64,
        line_bits: u64,
    ) -> Self {
        FaultModel {
            seed,
            rber,
            write_fail_prob,
            max_write_retries,
            wear_stuck_threshold,
            line_bits,
            row_writes: HashMap::new(),
        }
    }

    /// A uniform draw in `[0, 1)` from the model's hash stream, keyed by
    /// the access identity and a per-access draw counter `k`.
    fn unit(&self, row: u32, line: u32, serial: u64, k: u64) -> f64 {
        let mut h = splitmix64(self.seed ^ splitmix64(u64::from(row)));
        h = splitmix64(h ^ splitmix64(u64::from(line).wrapping_shl(32) | serial));
        h = splitmix64(h ^ k);
        // 53 high bits give a uniform double in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draws the transient-error and stuck-at outcome for a read of
    /// (`row`, `line`). `serial` is the bank's read counter at this access.
    ///
    /// Returns `(bit_errors, stuck_fault)`.
    pub fn read_faults(&self, row: u32, line: u32, serial: u64) -> (u32, bool) {
        let stuck = self.wear_stuck_threshold > 0
            && self
                .row_writes
                .get(&row)
                .is_some_and(|&w| w >= self.wear_stuck_threshold);
        if self.rber <= 0.0 {
            return (0, stuck);
        }
        // Knuth's Poisson sampler over λ = RBER · line_bits. RBERs are
        // small (≤ 1e-2) and lines are a few thousand bits, so λ stays
        // far below the sampler's numeric limits.
        let lambda = self.rber * self.line_bits as f64;
        let limit = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= self.unit(row, line, serial, u64::from(k));
            if p <= limit {
                return (k, stuck);
            }
            k += 1;
        }
    }

    /// Runs the write-verify loop for a write to (`row`, `line`).
    /// `serial` is the bank's write counter at this access.
    ///
    /// Returns `(retries, verify_failed)`: `retries` extra programming
    /// pulses were spent (each costs a full tWP on top of the first), and
    /// `verify_failed` is true if the final pulse still failed — the
    /// retry budget is exhausted and the controller must re-issue.
    /// Every pulse, successful or not, wears the row.
    pub fn write_attempts(&mut self, row: u32, line: u32, serial: u64) -> (u32, bool) {
        let mut retries = 0u32;
        let mut failed = false;
        if self.write_fail_prob > 0.0 {
            loop {
                let u = self.unit(row, line, serial, 0x100 + u64::from(retries));
                if u >= self.write_fail_prob {
                    break;
                }
                if retries == self.max_write_retries {
                    failed = true;
                    break;
                }
                retries += 1;
            }
        }
        if self.wear_stuck_threshold > 0 {
            *self.row_writes.entry(row).or_insert(0) += u64::from(retries) + 1;
        }
        (retries, failed)
    }

    /// Serialize the model's only mutable state — the per-row wear
    /// counters — in sorted key order so checkpoints are deterministic.
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("faults");
        let mut rows: Vec<(u32, u64)> = self.row_writes.iter().map(|(&k, &v)| (k, v)).collect();
        rows.sort_unstable();
        w.usize(rows.len());
        for (row, writes) in rows {
            w.u32(row);
            w.u64(writes);
        }
    }

    /// Restore wear counters written by [`FaultModel::save_state`]. The
    /// immutable hash parameters are rebuilt from configuration, not the
    /// checkpoint.
    pub fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("faults")?;
        let n = r.usize()?;
        let mut rows = HashMap::with_capacity(n);
        for _ in 0..n {
            let row = r.u32()?;
            let writes = r.u64()?;
            rows.insert(row, writes);
        }
        self.row_writes = rows;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_draw_nothing() {
        let mut m = FaultModel::new(7, 0.0, 0.0, 3, 0, 2048);
        assert_eq!(m.read_faults(5, 1, 0), (0, false));
        assert_eq!(m.write_attempts(5, 1, 0), (0, false));
        // Wear tracking disabled: the map stays empty.
        assert!(m.row_writes.is_empty());
    }

    #[test]
    fn fault_streams_are_deterministic() {
        let a = FaultModel::new(42, 1e-3, 0.3, 4, 0, 2048);
        let b = FaultModel::new(42, 1e-3, 0.3, 4, 0, 2048);
        for serial in 0..200 {
            assert_eq!(
                a.read_faults(serial as u32 % 16, 0, serial),
                b.read_faults(serial as u32 % 16, 0, serial)
            );
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = FaultModel::new(1, 5e-3, 0.0, 0, 0, 2048);
        let b = FaultModel::new(2, 5e-3, 0.0, 0, 0, 2048);
        let errs = |m: &FaultModel| -> u32 {
            (0..500).map(|s| m.read_faults(s as u32 % 32, 0, s).0).sum()
        };
        // Both streams see errors, but not the same stream.
        assert!(errs(&a) > 0 && errs(&b) > 0);
        let same = (0..500)
            .filter(|&s| a.read_faults(s as u32 % 32, 0, s) == b.read_faults(s as u32 % 32, 0, s))
            .count();
        assert!(same < 500, "seeds produced identical streams");
    }

    #[test]
    fn rber_scales_error_count() {
        let lo = FaultModel::new(9, 1e-4, 0.0, 0, 0, 2048);
        let hi = FaultModel::new(9, 1e-2, 0.0, 0, 0, 2048);
        let count = |m: &FaultModel| -> u32 {
            (0..2000)
                .map(|s| m.read_faults(s as u32 % 64, 0, s).0)
                .sum()
        };
        assert!(count(&hi) > count(&lo) * 4);
    }

    #[test]
    fn always_failing_writes_exhaust_the_budget() {
        let mut m = FaultModel::new(3, 0.0, 1.0, 2, 0, 2048);
        assert_eq!(m.write_attempts(0, 0, 0), (2, true));
        // Retry cap 0: a single pulse, immediately reported failed.
        let mut m = FaultModel::new(3, 0.0, 1.0, 0, 0, 2048);
        assert_eq!(m.write_attempts(0, 0, 0), (0, true));
    }

    #[test]
    fn retry_rate_tracks_fail_probability() {
        let mut m = FaultModel::new(11, 0.0, 0.4, 8, 0, 2048);
        let mut retries = 0u64;
        let mut failures = 0u64;
        for s in 0..2000 {
            let (r, f) = m.write_attempts(s as u32 % 64, 0, s);
            retries += u64::from(r);
            failures += u64::from(f);
        }
        // E[retries] ≈ p/(1-p) ≈ 0.67 per write; failures need 9 straight
        // misses (0.4^9 ≈ 2.6e-4) so they are rare but the retry mass is
        // substantial.
        assert!(retries > 800 && retries < 2000, "retries = {retries}");
        assert!(failures < 20, "failures = {failures}");
    }

    #[test]
    fn wear_accumulates_into_stuck_faults() {
        let mut m = FaultModel::new(5, 0.0, 0.0, 0, 10, 2048);
        for s in 0..9 {
            m.write_attempts(3, 0, s);
        }
        assert_eq!(m.read_faults(3, 0, 0), (0, false));
        m.write_attempts(3, 0, 9);
        assert_eq!(
            m.read_faults(3, 0, 0),
            (0, true),
            "10th write crosses the threshold"
        );
        // Other rows are unaffected.
        assert_eq!(m.read_faults(4, 0, 0), (0, false));
    }
}
