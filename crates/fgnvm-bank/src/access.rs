//! Access descriptions exchanged between the memory controller and a bank.
//!
//! The controller drives a bank with a two-phase protocol:
//!
//! 1. [`Bank::plan`](crate::Bank::plan) — a *read-only* feasibility check.
//!    It either returns an [`AccessPlan`] describing when data could start
//!    and what would be sensed, or a [`Blocked`] explaining which resource
//!    is busy and until when.
//! 2. [`Bank::commit`](crate::Bank::commit) — after the controller has
//!    arbitrated the shared data bus it commits the plan with the actual
//!    data-burst start cycle, and the bank updates its resource windows.
//!
//! The split exists because the data bus is shared across banks: only the
//! controller can pick the burst slot, but only the bank knows its internal
//! wordline / column-division constraints.

use std::fmt;

use fgnvm_types::address::TileCoord;
use fgnvm_types::request::Op;
use fgnvm_types::time::Cycle;

/// One cache-line access presented to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Read or write.
    pub op: Op,
    /// Target row within the bank.
    pub row: u32,
    /// Target cache line within the row.
    pub line: u32,
    /// FgNVM coordinates (SAG + CD span) of the access. For baseline banks
    /// this is always `sag 0, cd 0+1`.
    pub coord: TileCoord,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} row{} ln{} [{}]",
            self.op, self.row, self.line, self.coord
        )
    }
}

/// How a planned access will be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// The target data is already sensed in the row buffer; only the column
    /// path is exercised.
    RowHit,
    /// A (partial) activation opens the row and senses the target slice.
    Activate,
    /// The row is already open in the subarray group but the target column
    /// division was never sensed — the paper's *underfetch* case. Costs an
    /// extra tRCD to sense the missing slice.
    Underfetch,
    /// A write; drives the target slice through the write drivers.
    Write,
}

impl PlanKind {
    /// Every plan kind, for exhaustiveness tests over the command taxonomy.
    pub const ALL: [PlanKind; 4] = [
        PlanKind::RowHit,
        PlanKind::Activate,
        PlanKind::Underfetch,
        PlanKind::Write,
    ];

    /// True if this plan performs (partial) sensing and thus consumes sense
    /// energy.
    pub const fn senses(&self) -> bool {
        matches!(self, PlanKind::Activate | PlanKind::Underfetch)
    }

    /// Stable display label, used by trace exporters and heatmaps (which
    /// classify commands by string so they need not depend on this crate).
    pub const fn label(&self) -> &'static str {
        match self {
            PlanKind::RowHit => "row-hit",
            PlanKind::Activate => "activate",
            PlanKind::Underfetch => "underfetch",
            PlanKind::Write => "write",
        }
    }
}

/// A feasible schedule for an access, produced by [`Bank::plan`](crate::Bank::plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessPlan {
    /// How the access is served.
    pub kind: PlanKind,
    /// Earliest cycle the data burst may start, honoring every bank-internal
    /// constraint. The controller may only move this later (bus conflicts),
    /// never earlier.
    pub earliest_data: Cycle,
    /// Bits newly sensed if this plan commits (activation energy).
    pub sense_bits: u64,
}

/// Why an access cannot be planned right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Blocked {
    /// The dominant busy resource (the latest-clearing violated gate).
    pub reason: BlockReason,
    /// Earliest cycle at which re-planning could succeed: a sound lower
    /// bound, reported as the *latest* violated gate on the consulted path
    /// (every violated gate must clear before issue, so skipping straight
    /// to the max is safe — other constraints may still surface then).
    pub retry_at: Cycle,
}

/// The bank-internal resource that blocked an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockReason {
    /// The whole bank is serialized (baseline model, or an FgNVM ablation
    /// with multi-activation disabled).
    BankBusy,
    /// The target subarray group's wordline / row decoder is busy or locked
    /// by a backgrounded write.
    SagBusy,
    /// A target column division's local I/O is busy or locked by a
    /// backgrounded write.
    CdBusy,
    /// The shared column-command path (tCCD spacing) is not yet free.
    ColumnPath,
    /// The open row in the subarray group cannot be switched yet because
    /// in-flight operations still depend on it.
    RowLocked,
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BlockReason::BankBusy => "bank busy",
            BlockReason::SagBusy => "subarray group busy",
            BlockReason::CdBusy => "column division busy",
            BlockReason::ColumnPath => "column command path busy",
            BlockReason::RowLocked => "open row locked by in-flight operations",
        })
    }
}

/// Timing outcome of a committed access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Issued {
    /// Cycle the data burst starts on the channel.
    pub data_start: Cycle,
    /// Cycle the data burst ends (read data delivered / write data latched).
    pub data_end: Cycle,
    /// Cycle every bank resource used by this access becomes free. For
    /// writes this includes the cell-programming time (tWP) and recovery.
    pub completion: Cycle,
    /// Bits sensed by this access (0 for row hits and writes).
    pub sense_bits: u64,
    /// How the access was served.
    pub kind: PlanKind,
    /// Fault-model outcome (all-default when no fault model is attached).
    pub faults: crate::faults::FaultOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_kind_sensing() {
        assert!(PlanKind::Activate.senses());
        assert!(PlanKind::Underfetch.senses());
        assert!(!PlanKind::RowHit.senses());
        assert!(!PlanKind::Write.senses());
    }

    #[test]
    fn plan_kind_labels_are_stable() {
        assert_eq!(PlanKind::RowHit.label(), "row-hit");
        assert_eq!(PlanKind::Activate.label(), "activate");
        assert_eq!(PlanKind::Underfetch.label(), "underfetch");
        assert_eq!(PlanKind::Write.label(), "write");
    }

    #[test]
    fn block_reason_display() {
        assert_eq!(BlockReason::SagBusy.to_string(), "subarray group busy");
        assert_eq!(BlockReason::CdBusy.to_string(), "column division busy");
    }

    #[test]
    fn access_display() {
        let a = Access {
            op: Op::Read,
            row: 3,
            line: 1,
            coord: TileCoord {
                sag: 0,
                cd_first: 1,
                cd_count: 1,
            },
        };
        assert!(a.to_string().contains("row3"));
    }
}
