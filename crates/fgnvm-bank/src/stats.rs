//! Per-bank event counters.

use std::ops::AddAssign;

/// Counters accumulated by a bank as accesses commit.
///
/// The memory system aggregates these across banks and converts the bit
/// counts into energy using the configured per-bit constants.
///
/// ```
/// use fgnvm_bank::BankStats;
///
/// let mut total = BankStats::new();
/// total += BankStats { reads: 8, row_hits: 6, ..BankStats::new() };
/// total += BankStats { reads: 2, ..BankStats::new() };
/// assert_eq!(total.row_hit_rate(), 0.6);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BankStats {
    /// Committed read accesses.
    pub reads: u64,
    /// Committed write accesses.
    pub writes: u64,
    /// Row-buffer hits (no sensing needed).
    pub row_hits: u64,
    /// (Partial) activations that opened or switched a row.
    pub activations: u64,
    /// Underfetch partial activations: the row was open but the target
    /// column division had not been sensed.
    pub underfetches: u64,
    /// Total bits sensed across all activations.
    pub sensed_bits: u64,
    /// Total bits driven by write operations.
    pub written_bits: u64,
    /// Accesses that overlapped in time with at least one other in-flight
    /// access in the same bank (tile-level parallelism actually exploited).
    pub overlapped_accesses: u64,
    /// Reads committed while a write was still programming elsewhere in the
    /// bank (backgrounded-write hiding actually exploited).
    pub reads_under_write: u64,
    /// In-flight writes paused to let a read through (write pausing).
    pub write_pauses: u64,
    /// Extra write-verify programming pulses (fault model; each one cost a
    /// full tWP of tile occupancy beyond the first pulse).
    pub write_retries: u64,
    /// Writes whose final verify still failed after exhausting the retry
    /// budget (the controller re-issues these).
    pub verify_failures: u64,
    /// Transient bit errors injected into read data (fault model).
    pub read_bit_errors: u64,
    /// Reads that hit a wear-induced stuck-at fault.
    pub stuck_faults: u64,
}

impl BankStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        BankStats::default()
    }

    /// Fraction of reads served from already-sensed data, in `[0, 1]`;
    /// zero when no reads occurred.
    pub fn row_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.reads as f64
        }
    }

    /// Exports every counter into `reg` as `<prefix>.<field>` (plus the
    /// derived `<prefix>.row_hit_rate` gauge), in declaration order.
    pub fn export_metrics(&self, reg: &mut fgnvm_obs::Registry, prefix: &str) {
        let c = |field: &str| format!("{prefix}.{field}");
        reg.set_counter(&c("reads"), self.reads);
        reg.set_counter(&c("writes"), self.writes);
        reg.set_counter(&c("row_hits"), self.row_hits);
        reg.set_counter(&c("activations"), self.activations);
        reg.set_counter(&c("underfetches"), self.underfetches);
        reg.set_counter(&c("sensed_bits"), self.sensed_bits);
        reg.set_counter(&c("written_bits"), self.written_bits);
        reg.set_counter(&c("overlapped_accesses"), self.overlapped_accesses);
        reg.set_counter(&c("reads_under_write"), self.reads_under_write);
        reg.set_counter(&c("write_pauses"), self.write_pauses);
        reg.set_counter(&c("write_retries"), self.write_retries);
        reg.set_counter(&c("verify_failures"), self.verify_failures);
        reg.set_counter(&c("read_bit_errors"), self.read_bit_errors);
        reg.set_counter(&c("stuck_faults"), self.stuck_faults);
        reg.set_gauge(&c("row_hit_rate"), self.row_hit_rate());
    }
}

impl BankStats {
    /// Counter-wise difference `self - earlier`, for measuring an interval
    /// between two snapshots (e.g. excluding a warmup phase). Saturates at
    /// zero, though counters are monotone by construction.
    pub fn minus(&self, earlier: &BankStats) -> BankStats {
        BankStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            row_hits: self.row_hits.saturating_sub(earlier.row_hits),
            activations: self.activations.saturating_sub(earlier.activations),
            underfetches: self.underfetches.saturating_sub(earlier.underfetches),
            sensed_bits: self.sensed_bits.saturating_sub(earlier.sensed_bits),
            written_bits: self.written_bits.saturating_sub(earlier.written_bits),
            overlapped_accesses: self
                .overlapped_accesses
                .saturating_sub(earlier.overlapped_accesses),
            reads_under_write: self
                .reads_under_write
                .saturating_sub(earlier.reads_under_write),
            write_pauses: self.write_pauses.saturating_sub(earlier.write_pauses),
            write_retries: self.write_retries.saturating_sub(earlier.write_retries),
            verify_failures: self.verify_failures.saturating_sub(earlier.verify_failures),
            read_bit_errors: self.read_bit_errors.saturating_sub(earlier.read_bit_errors),
            stuck_faults: self.stuck_faults.saturating_sub(earlier.stuck_faults),
        }
    }
}

impl BankStats {
    /// Serialize every counter, in declaration order, into a checkpoint.
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("bstats");
        for v in [
            self.reads,
            self.writes,
            self.row_hits,
            self.activations,
            self.underfetches,
            self.sensed_bits,
            self.written_bits,
            self.overlapped_accesses,
            self.reads_under_write,
            self.write_pauses,
            self.write_retries,
            self.verify_failures,
            self.read_bit_errors,
            self.stuck_faults,
        ] {
            w.u64(v);
        }
    }

    /// Restore counters previously written by [`BankStats::save_state`].
    pub fn load_state(
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<BankStats, fgnvm_types::SnapshotError> {
        r.tag("bstats")?;
        Ok(BankStats {
            reads: r.u64()?,
            writes: r.u64()?,
            row_hits: r.u64()?,
            activations: r.u64()?,
            underfetches: r.u64()?,
            sensed_bits: r.u64()?,
            written_bits: r.u64()?,
            overlapped_accesses: r.u64()?,
            reads_under_write: r.u64()?,
            write_pauses: r.u64()?,
            write_retries: r.u64()?,
            verify_failures: r.u64()?,
            read_bit_errors: r.u64()?,
            stuck_faults: r.u64()?,
        })
    }
}

impl AddAssign for BankStats {
    fn add_assign(&mut self, rhs: BankStats) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.row_hits += rhs.row_hits;
        self.activations += rhs.activations;
        self.underfetches += rhs.underfetches;
        self.sensed_bits += rhs.sensed_bits;
        self.written_bits += rhs.written_bits;
        self.overlapped_accesses += rhs.overlapped_accesses;
        self.reads_under_write += rhs.reads_under_write;
        self.write_pauses += rhs.write_pauses;
        self.write_retries += rhs.write_retries;
        self.verify_failures += rhs.verify_failures;
        self.read_bit_errors += rhs.read_bit_errors;
        self.stuck_faults += rhs.stuck_faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_reads() {
        assert_eq!(BankStats::new().row_hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_fraction() {
        let s = BankStats {
            reads: 4,
            row_hits: 3,
            ..BankStats::new()
        };
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn minus_computes_interval() {
        let early = BankStats {
            reads: 10,
            sensed_bits: 100,
            ..BankStats::new()
        };
        let late = BankStats {
            reads: 25,
            sensed_bits: 260,
            writes: 3,
            ..BankStats::new()
        };
        let delta = late.minus(&early);
        assert_eq!(delta.reads, 15);
        assert_eq!(delta.sensed_bits, 160);
        assert_eq!(delta.writes, 3);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = BankStats {
            reads: 1,
            sensed_bits: 100,
            ..BankStats::new()
        };
        let b = BankStats {
            reads: 2,
            sensed_bits: 50,
            writes: 1,
            ..BankStats::new()
        };
        a += b;
        assert_eq!(a.reads, 3);
        assert_eq!(a.sensed_bits, 150);
        assert_eq!(a.writes, 1);
    }
}
