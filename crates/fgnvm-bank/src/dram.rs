//! A conventional DRAM bank, for the paper's motivating contrast.
//!
//! The paper's §1–§2 argue that DRAM cannot be subdivided the way NVM can:
//! its reads are *destructive* (every activation must restore the row —
//! tRAS — and precharge the bitlines — tRP — before another row opens) and
//! it must be *refreshed* periodically, both of which FgNVM's substrate
//! avoids. This model makes that contrast measurable: faster device
//! timings than PCM, but the full activate/restore/precharge cycle plus
//! rigid refresh windows that block the bank.
//!
//! Refresh is modeled as fixed windows: every `t_refi` cycles the bank is
//! unavailable for `t_rfc` cycles. Banks refresh *staggered* (each bank's
//! window is phase-shifted by `t_refi / banks`), the standard per-bank
//! scheme that keeps the channel partially available. Commands never
//! *start* inside a window; operations that started before a window may
//! overlap its beginning (a small idealization in the bank's favor).
//!
//! DRAM additionally obeys **tFAW** — at most four activations per rank
//! within any rolling `t_faw` window (a charge-pump power limit). Being a
//! rank-level constraint, it is enforced by the memory controller (see
//! `fgnvm-mem`), not per bank. NVM has no such constraint — another
//! degree of freedom the paper's design space enjoys.

use fgnvm_types::config::RowPolicy;
use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::Op;
use fgnvm_types::time::{Cycle, CycleCount};
use fgnvm_types::TimingCycles;

use crate::access::{Access, AccessPlan, BlockReason, Blocked, Issued, PlanKind};
use crate::stats::BankStats;
use crate::Bank;

/// Refresh parameters in controller cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefreshCycles {
    /// Interval between refresh commands (tREFI; DDR3: 7.8 µs).
    pub t_refi: CycleCount,
    /// Duration of one refresh (tRFC; DDR3 4Gb-class: ~300 ns).
    pub t_rfc: CycleCount,
    /// Phase offset of this bank's windows (staggered per-bank refresh).
    pub phase: CycleCount,
    /// Four-activation window (tFAW; DDR3: ~30 ns = 12 cycles).
    pub t_faw: CycleCount,
}

impl RefreshCycles {
    /// DDR3-like refresh on a 400 MHz controller clock: tREFI = 7.8 µs =
    /// 3120 cycles, tRFC = 300 ns = 120 cycles, tFAW = 12 cycles.
    pub fn ddr3_like() -> Self {
        RefreshCycles {
            t_refi: CycleCount::new(3120),
            t_rfc: CycleCount::new(120),
            phase: CycleCount::ZERO,
            t_faw: CycleCount::new(12),
        }
    }

    /// This parameter set phase-shifted for bank `index` of `banks`
    /// (staggered per-bank refresh).
    pub fn staggered(self, index: u32, banks: u32) -> Self {
        let step = self.t_refi.raw() / u64::from(banks.max(1));
        RefreshCycles {
            phase: CycleCount::new(step * u64::from(index)),
            ..self
        }
    }
}

/// Conventional DRAM bank: destructive reads, precharge, refresh.
#[derive(Debug, Clone)]
pub struct DramBank {
    timing: TimingCycles,
    refresh: RefreshCycles,
    policy: RowPolicy,
    row_bits: u64,
    line_bits: u64,
    open_row: Option<u32>,
    /// Instant of the last activate (tRAS reference); `None` on a fresh
    /// (precharged) bank.
    act_at: Option<Cycle>,
    /// Column commands allowed after the activation completes.
    act_done: Cycle,
    /// Next column command slot.
    next_col: Cycle,
    /// All in-flight operations done (precharge may begin).
    quiesce: Cycle,
    stats: BankStats,
}

impl DramBank {
    /// Creates an idle DRAM bank.
    pub fn new(geometry: &Geometry, timing: TimingCycles, refresh: RefreshCycles) -> Self {
        DramBank {
            timing,
            refresh,
            policy: RowPolicy::Open,
            row_bits: u64::from(geometry.row_bytes()) * 8,
            line_bits: u64::from(geometry.line_bytes()) * 8,
            open_row: None,
            act_at: None,
            act_done: Cycle::ZERO,
            next_col: Cycle::ZERO,
            quiesce: Cycle::ZERO,
            stats: BankStats::new(),
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Sets the row-buffer policy (builder-style). Closed-page
    /// auto-precharges after every access: no row hits, but the precharge
    /// overlaps idle time instead of delaying the next activation.
    #[must_use]
    pub fn with_policy(mut self, policy: RowPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// If `now` falls inside a refresh window, the cycle the window ends.
    fn refresh_block(&self, now: Cycle) -> Option<Cycle> {
        let refi = self.refresh.t_refi.raw();
        if refi == 0 {
            return None;
        }
        // Windows start at phase, phase + tREFI, … (staggered per bank).
        let shifted = now.raw().wrapping_sub(self.refresh.phase.raw());
        if now.raw() < self.refresh.phase.raw() {
            return None; // before this bank's first window
        }
        let offset = shifted % refi;
        (offset < self.refresh.t_rfc.raw())
            .then(|| Cycle::new(now.raw() - offset) + self.refresh.t_rfc)
    }

    /// Earliest instant a *different* row can be activated: in-flight ops
    /// done, tRAS satisfied since the last activate, then tRP precharge.
    /// A fresh (precharged) bank activates immediately.
    fn row_switch_ready(&self) -> Cycle {
        match self.act_at {
            None => self.quiesce,
            Some(act_at) => {
                let ras_done = act_at + self.timing.t_ras;
                self.quiesce.max(ras_done) + self.timing.t_rp
            }
        }
    }

    fn column_ready(&self) -> Cycle {
        self.act_done.max(self.next_col)
    }
}

impl Bank for DramBank {
    fn plan(&self, access: &Access, now: Cycle) -> Result<AccessPlan, Blocked> {
        if let Some(until) = self.refresh_block(now) {
            return Err(Blocked {
                reason: BlockReason::BankBusy,
                retry_at: until,
            });
        }
        let t = &self.timing;
        let row_open = self.open_row == Some(access.row);
        let (ready, kind, lead) = if row_open {
            let lead = match access.op {
                Op::Read => t.t_cas,
                Op::Write => t.t_cwd,
            };
            let kind = match access.op {
                Op::Read => PlanKind::RowHit,
                Op::Write => PlanKind::Write,
            };
            (self.column_ready(), kind, lead)
        } else {
            let lead = match access.op {
                Op::Read => t.t_rcd + t.t_cas,
                Op::Write => t.t_rcd + t.t_cwd,
            };
            let kind = match access.op {
                Op::Read => PlanKind::Activate,
                Op::Write => PlanKind::Write,
            };
            (self.row_switch_ready(), kind, lead)
        };
        if now < ready {
            let reason = if row_open {
                BlockReason::ColumnPath
            } else {
                BlockReason::RowLocked
            };
            return Err(Blocked {
                reason,
                retry_at: ready,
            });
        }
        Ok(AccessPlan {
            kind,
            earliest_data: now + lead,
            sense_bits: if kind == PlanKind::Activate {
                self.row_bits
            } else {
                0
            },
        })
    }

    fn commit(
        &mut self,
        access: &Access,
        plan: &AccessPlan,
        now: Cycle,
        data_start: Cycle,
    ) -> Issued {
        assert!(
            data_start >= plan.earliest_data,
            "data burst scheduled before the bank can deliver it"
        );
        let t = self.timing;
        let shift = data_start - plan.earliest_data;
        let cmd = now + shift;
        let data_end = data_start + t.t_burst;
        let row_open = self.open_row == Some(access.row);
        if !row_open {
            // Activation (destructive read): the row must later be
            // restored; tRAS runs from here.
            self.stats.activations += 1;
            self.open_row = Some(access.row);
            self.act_at = Some(cmd);
            self.act_done = cmd + t.t_rcd;
            self.next_col = self.act_done + t.t_ccd;
            if access.op.is_read() {
                self.stats.sensed_bits += plan.sense_bits;
            }
        } else {
            self.next_col = cmd + t.t_ccd;
        }
        let completion = match access.op {
            Op::Read => {
                self.stats.reads += 1;
                if plan.kind == PlanKind::RowHit {
                    self.stats.row_hits += 1;
                }
                data_end
            }
            Op::Write => {
                self.stats.writes += 1;
                self.stats.written_bits += self.line_bits;
                // DRAM write: data burst + write recovery (no tWP).
                data_end + t.t_wr
            }
        };
        self.quiesce = self.quiesce.max(completion);
        if self.policy == RowPolicy::Closed {
            // Auto-precharge. Under closed page every access activates at
            // `cmd`; the precharge may start once the row is restored
            // (tRAS from the ACT) and the column op has handed its data
            // to the I/O FIFO (read-to-precharge ≈ tCCD after the column
            // command; writes must also finish recovery). The burst can
            // still be draining — that is the policy's whole point: tRP
            // runs in the background instead of on the next request's
            // critical path.
            let ras_done = cmd + t.t_ras;
            let pre_start = match access.op {
                Op::Read => ras_done.max(cmd + t.t_rcd + t.t_ccd),
                Op::Write => ras_done.max(completion),
            };
            self.quiesce = self.quiesce.max(pre_start + t.t_rp);
            self.open_row = None;
            self.act_at = None;
        }
        Issued {
            data_start,
            data_end,
            completion,
            sense_bits: plan.sense_bits,
            kind: plan.kind,
            // DRAM is outside the NVM fault model's scope.
            faults: crate::faults::FaultOutcome::default(),
        }
    }

    fn stats(&self) -> &BankStats {
        &self.stats
    }

    fn next_ready_hint(&self, now: Cycle) -> Cycle {
        self.column_ready().min(self.row_switch_ready()).max(now)
    }

    fn plan_class(&self, access: &Access) -> u128 {
        // `plan` reads the access only through the op and whether its row
        // is the open row; refresh windows gate by `now` alone.
        u128::from(access.op.is_read()) | u128::from(self.open_row == Some(access.row)) << 1
    }

    fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("bank.dram");
        w.opt_u32(self.open_row);
        w.opt_u64(self.act_at.map(Cycle::raw));
        w.u64(self.act_done.raw());
        w.u64(self.next_col.raw());
        w.u64(self.quiesce.raw());
        self.stats.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("bank.dram")?;
        self.open_row = r.opt_u32()?;
        self.act_at = r.opt_u64()?.map(Cycle::new);
        self.act_done = Cycle::new(r.u64()?);
        self.next_col = Cycle::new(r.u64()?);
        self.quiesce = Cycle::new(r.u64()?);
        self.stats = BankStats::load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_types::address::TileCoord;
    use fgnvm_types::TimingConfig;

    fn dram() -> DramBank {
        let geom = Geometry::builder().sags(1).cds(1).build().unwrap();
        let timing = TimingConfig::ddr3_like().to_cycles().unwrap();
        DramBank::new(&geom, timing, RefreshCycles::ddr3_like())
    }

    fn read(row: u32, line: u32) -> Access {
        Access {
            op: Op::Read,
            row,
            line,
            coord: TileCoord {
                sag: 0,
                cd_first: 0,
                cd_count: 1,
            },
        }
    }

    #[test]
    fn refresh_window_blocks_the_bank() {
        let b = dram();
        // Cycle 0 is inside the first refresh window (phase 0 < tRFC).
        let blocked = b.plan(&read(0, 0), Cycle::ZERO).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::BankBusy);
        assert_eq!(blocked.retry_at, Cycle::new(120));
        // After the window the bank accepts.
        assert!(b.plan(&read(0, 0), Cycle::new(120)).is_ok());
        // The next window starts at tREFI.
        let blocked = b.plan(&read(0, 0), Cycle::new(3120 + 5)).unwrap_err();
        assert_eq!(blocked.retry_at, Cycle::new(3120 + 120));
    }

    #[test]
    fn dram_reads_are_faster_than_pcm() {
        let mut b = dram();
        let now = Cycle::new(200);
        let a = read(3, 0);
        let p = b.plan(&a, now).unwrap();
        // DDR3-like: tRCD 6 + tCL 6 = 12 cycles to data, far below PCM's 48.
        assert_eq!((p.earliest_data - now).raw(), 12);
        let issued = b.commit(&a, &p, now, p.earliest_data);
        assert!(issued.completion < now + CycleCount::new(20));
    }

    #[test]
    fn row_switch_pays_ras_and_rp() {
        let mut b = dram();
        let now = Cycle::new(200);
        let a = read(3, 0);
        let p = b.plan(&a, now).unwrap();
        b.commit(&a, &p, now, p.earliest_data);
        // A different row must wait for tRAS (from ACT) then tRP.
        let blocked = b.plan(&read(9, 0), Cycle::new(201)).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::RowLocked);
        // The burst ends at 216 (> tRAS at 214); +tRP 6 → 222.
        assert_eq!(blocked.retry_at, Cycle::new(222));
        assert!(b.plan(&read(9, 0), Cycle::new(222)).is_ok());
    }

    #[test]
    fn hits_pipeline_and_sense_once() {
        let mut b = dram();
        let now = Cycle::new(200);
        let a = read(3, 0);
        let p = b.plan(&a, now).unwrap();
        b.commit(&a, &p, now, p.earliest_data);
        let t1 = Cycle::new(212);
        let hit = read(3, 1);
        let p2 = b.plan(&hit, t1).unwrap();
        assert_eq!(p2.kind, PlanKind::RowHit);
        assert_eq!(p2.sense_bits, 0);
        b.commit(&hit, &p2, t1, p2.earliest_data);
        assert_eq!(b.stats().sensed_bits, 8192); // one activation only
        assert_eq!(b.stats().row_hits, 1);
    }

    #[test]
    fn fresh_bank_activates_without_precharge_penalty() {
        let mut b = dram();
        let now = Cycle::new(130); // outside bank 0's refresh window
        let a = read(3, 0);
        let p = b.plan(&a, now).unwrap();
        // No phantom tRAS/tRP on a precharged idle bank.
        assert_eq!(p.earliest_data, now + CycleCount::new(12));
        b.commit(&a, &p, now, p.earliest_data);
        // Subsequent switches do pay tRAS/tRP.
        let blocked = b.plan(&read(9, 0), now + CycleCount::new(1)).unwrap_err();
        assert!(blocked.retry_at > now + CycleCount::new(12));
    }

    #[test]
    fn staggered_refresh_offsets_windows() {
        let geom = Geometry::builder().sags(1).cds(1).build().unwrap();
        let timing = TimingConfig::ddr3_like().to_cycles().unwrap();
        let refresh = RefreshCycles::ddr3_like().staggered(4, 8);
        let b = DramBank::new(&geom, timing, refresh);
        // Bank 4 of 8: phase = 3120/8 × 4 = 1560. Cycle 0 is open...
        assert!(b.plan(&read(0, 0), Cycle::ZERO).is_ok());
        // ...and its window covers 1560..1680.
        let blocked = b.plan(&read(0, 0), Cycle::new(1565)).unwrap_err();
        assert_eq!(blocked.retry_at, Cycle::new(1560 + 120));
    }

    #[test]
    fn closed_page_hides_precharge_but_forfeits_hits() {
        let geom = Geometry::builder().sags(1).cds(1).build().unwrap();
        let timing = TimingConfig::ddr3_like().to_cycles().unwrap();
        let mut b = DramBank::new(&geom, timing, RefreshCycles::ddr3_like())
            .with_policy(fgnvm_types::config::RowPolicy::Closed);
        let now = Cycle::new(200);
        let a = read(3, 0);
        let p = b.plan(&a, now).unwrap();
        b.commit(&a, &p, now, p.earliest_data);
        assert_eq!(b.open_row(), None, "closed page auto-precharges");
        // A *different* row activates as soon as restore + precharge
        // finish in the background: tRAS(14 from ACT at 200) → 214, +tRP
        // 6 → 220, vs 222 under open-page (precharge starts only at the
        // switch, after the burst ends at 216).
        let blocked = b.plan(&read(9, 0), Cycle::new(201)).unwrap_err();
        assert_eq!(blocked.retry_at, Cycle::new(220));
        // The SAME row also re-activates — no hits under closed page.
        let p2 = b.plan(&read(3, 1), Cycle::new(220)).unwrap();
        assert_eq!(p2.kind, PlanKind::Activate);
    }

    #[test]
    fn writes_have_no_program_time() {
        let mut b = dram();
        let now = Cycle::new(200);
        let w = Access {
            op: Op::Write,
            ..read(5, 0)
        };
        let p = b.plan(&w, now).unwrap();
        let issued = b.commit(&w, &p, now, p.earliest_data);
        // tRCD 6 + tCWD 4 + tBURST 4 + tWR 6 = 20 cycles, vs PCM's ~77.
        assert_eq!(issued.completion, now + CycleCount::new(20));
    }
}
