//! The state-of-the-art NVM bank of §3.1 — the paper's baseline.
//!
//! One global wordline decoder selects a single row for the whole bank; an
//! activation senses the *entire* row into the row buffer; writes occupy the
//! whole bank for the full programming time. Consequently every access to a
//! bank is serialized behind any in-flight write, and activation energy is
//! proportional to the full row size regardless of how little data is used.

use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::Op;
use fgnvm_types::time::{Cycle, CycleCount};
use fgnvm_types::TimingCycles;

use crate::access::{Access, AccessPlan, BlockReason, Blocked, Issued, PlanKind};
use crate::faults::{FaultModel, FaultOutcome};
use crate::stats::BankStats;
use crate::Bank;

/// Baseline (undivided) NVM bank model.
///
/// ```
/// use fgnvm_bank::{Access, Bank, BaselineBank};
/// use fgnvm_types::address::TileCoord;
/// use fgnvm_types::geometry::Geometry;
/// use fgnvm_types::request::Op;
/// use fgnvm_types::time::Cycle;
/// use fgnvm_types::TimingConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let geom = Geometry::builder().sags(1).cds(1).build()?;
/// let timing = TimingConfig::paper_pcm().to_cycles()?;
/// let mut bank = BaselineBank::new(&geom, timing);
/// let access = Access {
///     op: Op::Read,
///     row: 7,
///     line: 0,
///     coord: TileCoord { sag: 0, cd_first: 0, cd_count: 1 },
/// };
/// let plan = bank.plan(&access, Cycle::ZERO).expect("idle bank accepts reads");
/// let issued = bank.commit(&access, &plan, Cycle::ZERO, plan.earliest_data);
/// // Row miss: data appears tRCD + tCAS after the command.
/// assert_eq!(issued.data_start, Cycle::new(48));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BaselineBank {
    timing: TimingCycles,
    /// Bits sensed by one (full-row) activation.
    row_bits: u64,
    /// Bits driven by one cache-line write.
    line_bits: u64,
    open_row: Option<u32>,
    /// Column commands allowed once the activation completes.
    act_done: Cycle,
    /// Next column command slot (tCCD spacing; writes push this to their
    /// completion, which is what serializes the bank behind a write).
    next_col: Cycle,
    /// All in-flight operations finished; a new row may be activated.
    quiesce: Cycle,
    /// Device fault injector, when the reliability layer is enabled.
    faults: Option<FaultModel>,
    stats: BankStats,
}

impl BaselineBank {
    /// Creates an idle bank for `geometry` with resolved `timing`.
    pub fn new(geometry: &Geometry, timing: TimingCycles) -> Self {
        BaselineBank {
            timing,
            row_bits: u64::from(geometry.row_bytes()) * 8,
            line_bits: u64::from(geometry.line_bytes()) * 8,
            open_row: None,
            act_done: Cycle::ZERO,
            next_col: Cycle::ZERO,
            quiesce: Cycle::ZERO,
            faults: None,
            stats: BankStats::new(),
        }
    }

    /// Attaches a device fault model (see [`FaultModel`]); without one the
    /// bank behaves exactly as before the reliability layer existed.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Cycle at which the bank is completely idle.
    pub fn quiesce_at(&self) -> Cycle {
        self.quiesce
    }

    fn column_ready(&self) -> Cycle {
        self.act_done.max(self.next_col)
    }
}

impl Bank for BaselineBank {
    fn plan(&self, access: &Access, now: Cycle) -> Result<AccessPlan, Blocked> {
        let t = &self.timing;
        let row_open = self.open_row == Some(access.row);
        match access.op {
            Op::Read => {
                if row_open {
                    let ready = self.column_ready();
                    if now < ready {
                        return Err(Blocked {
                            reason: BlockReason::ColumnPath,
                            retry_at: ready,
                        });
                    }
                    Ok(AccessPlan {
                        kind: PlanKind::RowHit,
                        earliest_data: now + t.t_cas,
                        sense_bits: 0,
                    })
                } else {
                    let ready = self.quiesce + t.t_rp;
                    if now < ready {
                        return Err(Blocked {
                            reason: BlockReason::RowLocked,
                            retry_at: ready,
                        });
                    }
                    Ok(AccessPlan {
                        kind: PlanKind::Activate,
                        earliest_data: now + t.t_rcd + t.t_cas,
                        sense_bits: self.row_bits,
                    })
                }
            }
            Op::Write => {
                if row_open {
                    let ready = self.column_ready();
                    if now < ready {
                        return Err(Blocked {
                            reason: BlockReason::ColumnPath,
                            retry_at: ready,
                        });
                    }
                    Ok(AccessPlan {
                        kind: PlanKind::Write,
                        earliest_data: now + t.t_cwd,
                        sense_bits: 0,
                    })
                } else {
                    let ready = self.quiesce + t.t_rp;
                    if now < ready {
                        return Err(Blocked {
                            reason: BlockReason::RowLocked,
                            retry_at: ready,
                        });
                    }
                    Ok(AccessPlan {
                        kind: PlanKind::Write,
                        earliest_data: now + t.t_rcd + t.t_cwd,
                        sense_bits: 0,
                    })
                }
            }
        }
    }

    fn commit(
        &mut self,
        access: &Access,
        plan: &AccessPlan,
        now: Cycle,
        data_start: Cycle,
    ) -> Issued {
        assert!(
            data_start >= plan.earliest_data,
            "data burst scheduled before the bank can deliver it"
        );
        let t = self.timing;
        // If the controller delayed the burst for bus arbitration, the whole
        // command shifts later by the same amount.
        let shift = data_start - plan.earliest_data;
        let cmd = now + shift;
        let data_end = data_start + t.t_burst;
        let completion;
        let mut faults = FaultOutcome::default();
        match access.op {
            Op::Read => {
                if let Some(model) = &self.faults {
                    let (bit_errors, stuck) =
                        model.read_faults(access.row, access.line, self.stats.reads);
                    faults.bit_errors = bit_errors;
                    faults.stuck_fault = stuck;
                    self.stats.read_bit_errors += u64::from(bit_errors);
                    self.stats.stuck_faults += u64::from(stuck);
                }
                self.stats.reads += 1;
                match plan.kind {
                    PlanKind::RowHit => {
                        self.stats.row_hits += 1;
                        self.next_col = cmd + t.t_ccd;
                    }
                    PlanKind::Activate => {
                        self.stats.activations += 1;
                        self.stats.sensed_bits += plan.sense_bits;
                        self.open_row = Some(access.row);
                        self.act_done = cmd + t.t_rcd;
                        self.next_col = self.act_done + t.t_ccd;
                    }
                    other => unreachable!("baseline read committed with plan kind {other:?}"),
                }
                completion = data_end;
                self.quiesce = self.quiesce.max(data_end);
            }
            Op::Write => {
                if let Some(model) = &mut self.faults {
                    let (retries, verify_failed) =
                        model.write_attempts(access.row, access.line, self.stats.writes);
                    faults.retries = retries;
                    faults.verify_failed = verify_failed;
                    self.stats.write_retries += u64::from(retries);
                    self.stats.verify_failures += u64::from(verify_failed);
                }
                self.stats.writes += 1;
                self.stats.written_bits += self.line_bits;
                if self.open_row != Some(access.row) {
                    // The wordline switches to the written row without
                    // sensing; the row buffer holds nothing afterwards, so
                    // force a re-activation on the next read.
                    self.stats.activations += 1;
                    self.open_row = None;
                    self.act_done = cmd + t.t_rcd;
                } else {
                    // Writing through the open row leaves the buffered data
                    // stale; conservatively close the row.
                    self.open_row = None;
                }
                // Each write-verify retry re-applies a full programming
                // pulse, extending the bank occupancy by one tWP.
                let program = CycleCount::new(t.t_wp.raw() * u64::from(faults.retries + 1));
                completion = data_end + program + t.t_wr;
                // The entire bank is occupied until programming finishes.
                self.next_col = completion;
                self.quiesce = self.quiesce.max(completion);
            }
        }
        Issued {
            data_start,
            data_end,
            completion,
            sense_bits: plan.sense_bits,
            kind: plan.kind,
            faults,
        }
    }

    fn stats(&self) -> &BankStats {
        &self.stats
    }

    fn next_ready_hint(&self, now: Cycle) -> Cycle {
        // Tight bound: mirror exactly the gates `plan` applies. With a row
        // open, a same-row access waits for the column path and a row switch
        // waits for quiesce + tRP; with no row open every access takes the
        // row-switch path. The minimum over those is the earliest instant at
        // which *some* access could issue, and no access can issue sooner.
        let row_switch = self.quiesce + self.timing.t_rp;
        let earliest = if self.open_row.is_some() {
            self.column_ready().min(row_switch)
        } else {
            row_switch
        };
        earliest.max(now)
    }

    fn plan_class(&self, access: &Access) -> u128 {
        // `plan` reads the access only through the op and whether its row
        // is the open row (the monolithic bank has no sub-bank resources).
        u128::from(access.op.is_read()) | u128::from(self.open_row == Some(access.row)) << 1
    }

    fn occupancy(&self) -> crate::OccupancySnapshot {
        // The monolithic bank has one "SAG" (the whole array) and one "CD"
        // (the single column path); a write's lock shows up as the column
        // path being pushed to its completion.
        crate::OccupancySnapshot {
            open_rows: vec![self.open_row],
            sag_locks: vec![self.next_col],
            cd_io_free: vec![self.column_ready()],
            busy_until: self.quiesce,
        }
    }

    fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("bank.baseline");
        w.opt_u32(self.open_row);
        w.u64(self.act_done.raw());
        w.u64(self.next_col.raw());
        w.u64(self.quiesce.raw());
        w.bool(self.faults.is_some());
        if let Some(model) = &self.faults {
            model.save_state(w);
        }
        self.stats.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("bank.baseline")?;
        self.open_row = r.opt_u32()?;
        self.act_done = Cycle::new(r.u64()?);
        self.next_col = Cycle::new(r.u64()?);
        self.quiesce = Cycle::new(r.u64()?);
        let has_faults = r.bool()?;
        if has_faults != self.faults.is_some() {
            return Err(fgnvm_types::SnapshotError::Corrupt(
                "fault-model presence mismatch between checkpoint and config".into(),
            ));
        }
        if let Some(model) = &mut self.faults {
            model.load_state(r)?;
        }
        self.stats = crate::BankStats::load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_types::address::TileCoord;
    use fgnvm_types::time::CycleCount;
    use fgnvm_types::TimingConfig;

    fn bank() -> BaselineBank {
        let geom = Geometry::builder().sags(1).cds(1).build().unwrap();
        BaselineBank::new(&geom, TimingConfig::paper_pcm().to_cycles().unwrap())
    }

    fn read(row: u32, line: u32) -> Access {
        Access {
            op: Op::Read,
            row,
            line,
            coord: TileCoord {
                sag: 0,
                cd_first: 0,
                cd_count: 1,
            },
        }
    }

    fn write(row: u32, line: u32) -> Access {
        Access {
            op: Op::Write,
            ..read(row, line)
        }
    }

    #[test]
    fn cold_read_pays_rcd_plus_cas() {
        let mut b = bank();
        let a = read(5, 0);
        let plan = b.plan(&a, Cycle::ZERO).unwrap();
        assert_eq!(plan.kind, PlanKind::Activate);
        assert_eq!(plan.earliest_data, Cycle::new(10 + 38));
        assert_eq!(plan.sense_bits, 8192); // full 1 KB row
        let issued = b.commit(&a, &plan, Cycle::ZERO, plan.earliest_data);
        assert_eq!(issued.data_end, Cycle::new(48 + 4));
        assert_eq!(b.open_row(), Some(5));
    }

    #[test]
    fn row_hit_pays_only_cas_and_senses_nothing() {
        let mut b = bank();
        let a = read(5, 0);
        let p = b.plan(&a, Cycle::ZERO).unwrap();
        b.commit(&a, &p, Cycle::ZERO, p.earliest_data);
        // Second read to the same row after the bank is free.
        let now = Cycle::new(60);
        let a2 = read(5, 3);
        let p2 = b.plan(&a2, now).unwrap();
        assert_eq!(p2.kind, PlanKind::RowHit);
        assert_eq!(p2.earliest_data, now + CycleCount::new(38));
        assert_eq!(p2.sense_bits, 0);
        let i2 = b.commit(&a2, &p2, now, p2.earliest_data);
        assert_eq!(i2.sense_bits, 0);
        assert_eq!(b.stats().row_hits, 1);
    }

    #[test]
    fn row_switch_waits_for_quiesce() {
        let mut b = bank();
        let a = read(5, 0);
        let p = b.plan(&a, Cycle::ZERO).unwrap();
        let issued = b.commit(&a, &p, Cycle::ZERO, p.earliest_data);
        // A different row cannot activate until the first read's data is out.
        let blocked = b.plan(&read(9, 0), Cycle::new(1)).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::RowLocked);
        assert_eq!(blocked.retry_at, issued.data_end);
        // At quiesce it becomes possible.
        assert!(b.plan(&read(9, 0), issued.data_end).is_ok());
    }

    #[test]
    fn write_blocks_the_whole_bank() {
        let mut b = bank();
        let w = write(5, 0);
        let p = b.plan(&w, Cycle::ZERO).unwrap();
        let issued = b.commit(&w, &p, Cycle::ZERO, p.earliest_data);
        // tRCD(10) + tCWD(3) data start, + tBURST(4) + tWP(60) + tWR(3).
        assert_eq!(issued.data_start, Cycle::new(13));
        assert_eq!(issued.completion, Cycle::new(13 + 4 + 60 + 3));
        // Any read is blocked until the write completes.
        let blocked = b.plan(&read(5, 0), Cycle::new(20)).unwrap_err();
        assert_eq!(blocked.retry_at, issued.completion);
        assert!(b.plan(&read(5, 0), issued.completion).is_ok());
    }

    #[test]
    fn write_closes_the_row() {
        let mut b = bank();
        let w = write(5, 0);
        let p = b.plan(&w, Cycle::ZERO).unwrap();
        let issued = b.commit(&w, &p, Cycle::ZERO, p.earliest_data);
        // A read to the just-written row must re-activate (sense fresh data).
        let p2 = b.plan(&read(5, 0), issued.completion).unwrap();
        assert_eq!(p2.kind, PlanKind::Activate);
    }

    #[test]
    fn ccd_spaces_back_to_back_hits() {
        let mut b = bank();
        let a = read(5, 0);
        let p = b.plan(&a, Cycle::ZERO).unwrap();
        b.commit(&a, &p, Cycle::ZERO, p.earliest_data);
        let t0 = Cycle::new(100);
        let p1 = b.plan(&read(5, 1), t0).unwrap();
        b.commit(&read(5, 1), &p1, t0, p1.earliest_data);
        // Immediately after, the column path is busy for tCCD.
        let blocked = b.plan(&read(5, 2), Cycle::new(101)).unwrap_err();
        assert_eq!(blocked.reason, BlockReason::ColumnPath);
        assert_eq!(blocked.retry_at, Cycle::new(104));
    }

    #[test]
    fn bus_delay_shifts_bank_windows() {
        let mut b = bank();
        let a = read(5, 0);
        let p = b.plan(&a, Cycle::ZERO).unwrap();
        // Controller delays the burst by 6 cycles for bus arbitration.
        let delayed = p.earliest_data + CycleCount::new(6);
        let issued = b.commit(&a, &p, Cycle::ZERO, delayed);
        assert_eq!(issued.data_start, delayed);
        // The activation window shifted accordingly: a hit planned right
        // after must respect the shifted act_done.
        let blocked = b.plan(&read(5, 1), Cycle::new(1)).unwrap_err();
        assert_eq!(blocked.retry_at, Cycle::new(6 + 10 + 4)); // shifted act + tCCD
    }

    #[test]
    #[should_panic(expected = "before the bank can deliver")]
    fn commit_rejects_early_burst() {
        let mut b = bank();
        let a = read(5, 0);
        let p = b.plan(&a, Cycle::ZERO).unwrap();
        b.commit(&a, &p, Cycle::ZERO, Cycle::new(1));
    }

    #[test]
    fn verify_retries_extend_bank_occupancy() {
        let geom = Geometry::builder().sags(1).cds(1).build().unwrap();
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        // Always-fail writes with a retry budget of 2: three pulses total.
        let mut b =
            BaselineBank::new(&geom, timing).with_faults(FaultModel::new(1, 0.0, 1.0, 2, 0, 512));
        let w = write(5, 0);
        let p = b.plan(&w, Cycle::ZERO).unwrap();
        let issued = b.commit(&w, &p, Cycle::ZERO, p.earliest_data);
        assert_eq!(issued.faults.retries, 2);
        assert!(issued.faults.verify_failed);
        // data_end 17, + 3·tWP(180) + tWR(3).
        assert_eq!(issued.completion, Cycle::new(17 + 180 + 3));
        assert_eq!(b.stats().write_retries, 2);
        assert_eq!(b.stats().verify_failures, 1);
        // The bank stays blocked for the whole extended window.
        let blocked = b.plan(&read(5, 0), Cycle::new(50)).unwrap_err();
        assert_eq!(blocked.retry_at, issued.completion);
    }

    #[test]
    fn stats_accumulate() {
        let mut b = bank();
        let a = read(5, 0);
        let p = b.plan(&a, Cycle::ZERO).unwrap();
        b.commit(&a, &p, Cycle::ZERO, p.earliest_data);
        assert_eq!(b.stats().reads, 1);
        assert_eq!(b.stats().activations, 1);
        assert_eq!(b.stats().sensed_bits, 8192);
    }
}
