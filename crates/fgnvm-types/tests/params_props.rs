//! Property test for the parameter-file writer/parser pair:
//! `write_system_config` followed by `parse_system_config` reproduces the
//! original configuration exactly, for any valid configuration.

use proptest::prelude::*;

use fgnvm_types::config::{BankModel, RowPolicy, SchedulerKind, SystemConfig};
use fgnvm_types::geometry::Geometry;
use fgnvm_types::{parse_system_config, write_system_config};

fn config_strategy() -> impl Strategy<Value = SystemConfig> {
    (
        prop::sample::select(vec![1u32, 2]),            // channels
        prop::sample::select(vec![1u32, 2]),            // ranks
        prop::sample::select(vec![4u32, 8, 16]),        // banks
        prop::sample::select(vec![256u32, 1024, 8192]), // rows
        prop::sample::select(vec![1u32, 2, 8, 32]),     // sags
        prop::sample::select(vec![1u32, 2, 8]),         // cds
        0u8..=7,                                        // fgnvm mode bits
        0usize..=3,                                     // bank model pick
        0usize..=3,                                     // scheduler pick
        any::<bool>(),                                  // pausing
        prop::sample::select(vec![1u32, 2, 4]),         // bus width
        any::<bool>(),                                  // closed page (DRAM)
    )
        .prop_filter_map(
            "configuration must validate",
            |(ch, ra, ba, ro, sags, cds, bits, model, sched, pausing, width, closed)| {
                let mut config = SystemConfig::baseline();
                config.bank_model = match model {
                    0 => BankModel::Baseline,
                    1 => BankModel::Dram,
                    _ => BankModel::Fgnvm {
                        partial_activation: bits & 1 != 0,
                        multi_activation: bits & 2 != 0,
                        background_writes: bits & 4 != 0,
                    },
                };
                if config.bank_model == BankModel::Dram {
                    config.timing = fgnvm_types::config::TimingConfig::ddr3_like();
                }
                let (sags, cds) = if config.bank_model.is_fgnvm() {
                    (sags, cds)
                } else {
                    (1, 1)
                };
                config.geometry = Geometry::builder()
                    .channels(ch)
                    .ranks_per_channel(ra)
                    .banks_per_rank(ba)
                    .rows_per_bank(ro)
                    .sags(sags)
                    .cds(cds)
                    .build()
                    .ok()?;
                config.scheduler = [
                    SchedulerKind::Fcfs,
                    SchedulerKind::Frfcfs,
                    SchedulerKind::FrfcfsTlp,
                    SchedulerKind::FrfcfsCap,
                ][sched];
                config.write_pausing = pausing;
                if closed && config.bank_model == BankModel::Dram {
                    config.row_policy = RowPolicy::Closed;
                }
                config.data_bus_width = width;
                config.commands_per_cycle = width;
                config.validate().ok()?;
                Some(config)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn writer_parser_round_trip(config in config_strategy()) {
        let text = write_system_config(&config);
        let parsed = parse_system_config(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
        prop_assert_eq!(parsed, config);
    }

    /// The emitted file is line-oriented `KEY value` text with no
    /// duplicate keys — any tool that understands the format can consume
    /// it without surprises.
    #[test]
    fn written_files_are_well_formed(config in config_strategy()) {
        let text = write_system_config(&config);
        let mut seen = std::collections::HashSet::new();
        for line in text.lines() {
            if line.starts_with(';') || line.trim().is_empty() {
                continue;
            }
            let key = line.split_whitespace().next().expect("non-empty line");
            prop_assert!(
                seen.insert(key.to_ascii_uppercase()),
                "duplicate key {key} in:\n{text}"
            );
            prop_assert!(line.split_whitespace().count() == 2, "bad line: {line}");
        }
    }
}
