//! Property tests for address mapping: decode/encode is a bijection on
//! line-aligned addresses for every scheme and a wide range of geometries.

use proptest::prelude::*;

use fgnvm_types::address::{AddressMapper, MappingScheme, PhysAddr};
use fgnvm_types::geometry::Geometry;

fn geometry_strategy() -> impl Strategy<Value = Geometry> {
    (
        prop::sample::select(vec![1u32, 2]),            // channels
        prop::sample::select(vec![1u32, 2]),            // ranks
        prop::sample::select(vec![4u32, 8, 16]),        // banks
        prop::sample::select(vec![256u32, 1024, 4096]), // rows
        prop::sample::select(vec![512u32, 1024]),       // row bytes
        prop::sample::select(vec![1u32, 2, 4, 8]),      // sags
        prop::sample::select(vec![1u32, 2, 4, 8]),      // cds
    )
        .prop_filter_map(
            "geometry must validate",
            |(ch, ra, ba, ro, rb, sags, cds)| {
                Geometry::builder()
                    .channels(ch)
                    .ranks_per_channel(ra)
                    .banks_per_rank(ba)
                    .rows_per_bank(ro)
                    .row_bytes(rb)
                    .line_bytes(64)
                    .sags(sags)
                    .cds(cds)
                    .build()
                    .ok()
            },
        )
}

fn scheme_strategy() -> impl Strategy<Value = MappingScheme> {
    prop::sample::select(vec![
        MappingScheme::RowRankBankLineChannel,
        MappingScheme::RowLineRankBankChannel,
        MappingScheme::LineRowRankBankChannel,
        MappingScheme::SagInterleaved,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// decode ∘ encode is the identity on line-aligned in-range addresses.
    #[test]
    fn decode_encode_roundtrip(
        geometry in geometry_strategy(),
        scheme in scheme_strategy(),
        raw in any::<u64>(),
    ) {
        let mapper = AddressMapper::new(geometry, scheme);
        let addr = PhysAddr::new(raw % geometry.capacity_bytes()).line_aligned(64);
        let decoded = mapper.decode(addr);
        prop_assert!(decoded.channel < geometry.channels());
        prop_assert!(decoded.rank < geometry.ranks_per_channel());
        prop_assert!(decoded.bank < geometry.banks_per_rank());
        prop_assert!(decoded.row < geometry.rows_per_bank());
        prop_assert!(decoded.line < geometry.lines_per_row());
        prop_assert_eq!(mapper.encode(decoded), addr);
    }

    /// Tile coordinates always stay in range and cover the full line.
    #[test]
    fn tile_coords_in_range(
        geometry in geometry_strategy(),
        scheme in scheme_strategy(),
        raw in any::<u64>(),
    ) {
        let mapper = AddressMapper::new(geometry, scheme);
        let addr = PhysAddr::new(raw % geometry.capacity_bytes()).line_aligned(64);
        let coord = mapper.tile_coord(mapper.decode(addr));
        prop_assert!(coord.sag < geometry.sags());
        prop_assert!(coord.cd_first + coord.cd_count <= geometry.cds());
        prop_assert_eq!(coord.cd_count, geometry.cds_per_line());
    }
}
