//! Time units used throughout the simulator.
//!
//! The memory controller is the master clock: every timing parameter is
//! converted once, at configuration time, from nanoseconds into controller
//! [`Cycle`]s. Two newtypes keep instants and durations from being mixed up:
//!
//! * [`Cycle`] — an absolute point on the controller clock (an *instant*).
//! * [`CycleCount`] — a span of cycles (a *duration*).
//!
//! ```
//! use fgnvm_types::time::{Cycle, CycleCount};
//!
//! let start = Cycle::ZERO;
//! let t_rcd = CycleCount::new(10);
//! let row_open_at = start + t_rcd;
//! assert_eq!(row_open_at - start, t_rcd);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An absolute instant on the memory-controller clock.
///
/// `Cycle` is a strictly increasing simulation timestamp. It supports adding
/// a [`CycleCount`] (producing a later instant) and subtracting another
/// `Cycle` (producing the span between them).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);
    /// An instant later than any the simulator will reach; useful as an
    /// "never" sentinel for busy-until windows.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates an instant at `raw` cycles from the beginning of time.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// The raw cycle number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Cycles from `earlier` to `self`, saturating at zero if `earlier` is
    /// actually later.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> CycleCount {
        CycleCount(self.0.saturating_sub(earlier.0))
    }

    /// Advances this instant by one cycle.
    #[inline]
    pub fn advance(&mut self) {
        self.0 += 1;
    }

    /// Jumps this instant forward to `target` (the fast-forward primitive).
    ///
    /// # Panics
    ///
    /// Panics if `target` is earlier than the current instant — simulated
    /// time never moves backwards.
    #[inline]
    pub fn advance_to(&mut self, target: Cycle) {
        assert!(
            target.0 >= self.0,
            "cannot rewind the clock from {self} to {target}"
        );
        self.0 = target.0;
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cy{}", self.0)
    }
}

/// A span of memory-controller cycles.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct CycleCount(u64);

impl CycleCount {
    /// A zero-length span.
    pub const ZERO: CycleCount = CycleCount(0);
    /// A one-cycle span.
    pub const ONE: CycleCount = CycleCount(1);

    /// Creates a span of `raw` cycles.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        CycleCount(raw)
    }

    /// The raw number of cycles.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The longer of two spans.
    #[inline]
    pub fn max(self, other: CycleCount) -> CycleCount {
        CycleCount(self.0.max(other.0))
    }

    /// True if the span is zero cycles long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for CycleCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl Add<CycleCount> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: CycleCount) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<CycleCount> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: CycleCount) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = CycleCount;

    /// Cycles from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Cycle::saturating_since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Cycle) -> CycleCount {
        debug_assert!(self.0 >= rhs.0, "instant subtraction went negative");
        CycleCount(self.0 - rhs.0)
    }
}

impl Add for CycleCount {
    type Output = CycleCount;
    #[inline]
    fn add(self, rhs: CycleCount) -> CycleCount {
        CycleCount(self.0 + rhs.0)
    }
}

impl AddAssign for CycleCount {
    #[inline]
    fn add_assign(&mut self, rhs: CycleCount) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for CycleCount {
    fn sum<I: Iterator<Item = CycleCount>>(iter: I) -> CycleCount {
        CycleCount(iter.map(|c| c.0).sum())
    }
}

/// Converts a duration in nanoseconds into controller cycles, rounding up so
/// that timing constraints are never violated by truncation.
///
/// ```
/// use fgnvm_types::time::ns_to_cycles;
///
/// // 25 ns at 400 MHz (2.5 ns per cycle) is exactly 10 cycles.
/// assert_eq!(ns_to_cycles(25.0, 400.0).raw(), 10);
/// // 95 ns rounds up to 38 cycles.
/// assert_eq!(ns_to_cycles(95.0, 400.0).raw(), 38);
/// ```
///
/// # Panics
///
/// Panics if `clock_mhz` is not strictly positive or `ns` is negative.
pub fn ns_to_cycles(ns: f64, clock_mhz: f64) -> CycleCount {
    assert!(clock_mhz > 0.0, "clock frequency must be positive");
    assert!(ns >= 0.0, "durations cannot be negative");
    let period_ns = 1000.0 / clock_mhz;
    CycleCount((ns / period_ns).ceil() as u64)
}

/// Converts controller cycles back into nanoseconds for reporting.
pub fn cycles_to_ns(cycles: CycleCount, clock_mhz: f64) -> f64 {
    assert!(clock_mhz > 0.0, "clock frequency must be positive");
    cycles.raw() as f64 * 1000.0 / clock_mhz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_plus_span() {
        let t = Cycle::new(5) + CycleCount::new(7);
        assert_eq!(t, Cycle::new(12));
    }

    #[test]
    fn instant_difference() {
        assert_eq!(Cycle::new(12) - Cycle::new(5), CycleCount::new(7));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            Cycle::new(3).saturating_since(Cycle::new(9)),
            CycleCount::ZERO
        );
    }

    #[test]
    fn ns_conversion_rounds_up() {
        // 2.5 ns period: 1 ns still needs a full cycle.
        assert_eq!(ns_to_cycles(1.0, 400.0).raw(), 1);
        assert_eq!(ns_to_cycles(0.0, 400.0).raw(), 0);
        assert_eq!(ns_to_cycles(150.0, 400.0).raw(), 60);
    }

    #[test]
    fn ns_roundtrip_upper_bound() {
        let cycles = ns_to_cycles(95.0, 400.0);
        assert!(cycles_to_ns(cycles, 400.0) >= 95.0);
    }

    #[test]
    fn ordering_and_max() {
        assert!(Cycle::new(4) < Cycle::new(5));
        assert_eq!(Cycle::new(4).max(Cycle::new(5)), Cycle::new(5));
        assert_eq!(
            CycleCount::new(4).max(CycleCount::new(5)),
            CycleCount::new(5)
        );
    }

    #[test]
    fn sum_of_spans() {
        let total: CycleCount = [1u64, 2, 3].iter().map(|&c| CycleCount::new(c)).sum();
        assert_eq!(total, CycleCount::new(6));
    }

    #[test]
    fn advance_moves_one_cycle() {
        let mut t = Cycle::ZERO;
        t.advance();
        assert_eq!(t, Cycle::new(1));
    }

    #[test]
    #[should_panic(expected = "clock frequency")]
    fn zero_clock_rejected() {
        let _ = ns_to_cycles(5.0, 0.0);
    }
}
