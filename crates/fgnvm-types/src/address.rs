//! Physical addresses and their decomposition onto the memory hierarchy.
//!
//! A [`PhysAddr`] is a flat byte address. An [`AddressMapper`] slices its
//! bits into channel / rank / bank / row / column-line fields according to a
//! chosen [`MappingScheme`], producing a [`DecodedAddr`]. The FgNVM-specific
//! coordinates (subarray group, column divisions) are derived from the row
//! and line via [`Geometry`].
//!
//! ```
//! # fn main() -> Result<(), fgnvm_types::error::ConfigError> {
//! use fgnvm_types::address::{AddressMapper, MappingScheme, PhysAddr};
//! use fgnvm_types::geometry::Geometry;
//!
//! let geom = Geometry::builder().sags(8).cds(2).build()?;
//! let mapper = AddressMapper::new(geom, MappingScheme::RowRankBankLineChannel);
//! let decoded = mapper.decode(PhysAddr::new(0x4_0040));
//! assert_eq!(mapper.encode(decoded), PhysAddr::new(0x4_0040).line_aligned(64));
//! # Ok(())
//! # }
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geometry::Geometry;

/// A flat physical byte address.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates an address from a raw byte offset.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// The raw byte offset.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// This address rounded down to a `line_bytes` boundary.
    #[inline]
    pub const fn line_aligned(self, line_bytes: u32) -> PhysAddr {
        PhysAddr(self.0 & !(line_bytes as u64 - 1))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

impl From<PhysAddr> for u64 {
    fn from(addr: PhysAddr) -> u64 {
        addr.0
    }
}

/// An address decomposed onto the memory hierarchy.
///
/// `line` is the cache-line index within the row (the "column" at
/// cache-line granularity).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Cache-line index within the row.
    pub line: u32,
}

impl fmt::Display for DecodedAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/ra{}/ba{}/row{}/ln{}",
            self.channel, self.rank, self.bank, self.row, self.line
        )
    }
}

/// FgNVM coordinates of an access within a bank: the subarray group plus the
/// contiguous span of column divisions the access occupies.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileCoord {
    /// Subarray group holding the row.
    pub sag: u32,
    /// First column division occupied by the access.
    pub cd_first: u32,
    /// Number of adjacent column divisions occupied (≥ 1).
    pub cd_count: u32,
}

impl TileCoord {
    /// Iterates the column-division indices this access occupies.
    pub fn cds(&self) -> impl Iterator<Item = u32> + '_ {
        self.cd_first..self.cd_first + self.cd_count
    }

    /// True if the two accesses share any column division.
    pub fn cd_overlaps(&self, other: &TileCoord) -> bool {
        self.cd_first < other.cd_first + other.cd_count
            && other.cd_first < self.cd_first + self.cd_count
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sag{}/cd{}+{}", self.sag, self.cd_first, self.cd_count)
    }
}

/// Bit-interleaving scheme mapping flat addresses onto the hierarchy.
///
/// Names read from the most-significant field to the least (the byte offset
/// within a line is always the lowest bits). The paper's evaluation uses a
/// standard DDR-style layout where consecutive lines of a row are adjacent in
/// the address space ([`RowRankBankLineChannel`](Self::RowRankBankLineChannel)),
/// which maximizes row-buffer locality for streaming access.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingScheme {
    /// row : rank : bank : line : channel : offset — row-buffer friendly.
    #[default]
    RowRankBankLineChannel,
    /// row : line : rank : bank : channel : offset — bank-interleaved;
    /// consecutive lines land in different banks, maximizing bank-level
    /// parallelism at the cost of row locality.
    RowLineRankBankChannel,
    /// line : row : rank : bank : channel : offset — pathological
    /// row-thrashing layout, useful for stress tests.
    LineRowRankBankChannel,
    /// row-within-SAG : rank : bank : SAG : line : channel : offset — the
    /// subarray-group index sits in low address bits, so any contiguous
    /// footprint stripes across every SAG (the hardware analogue of
    /// SAG-aware page coloring; maximizes tile-level parallelism without
    /// OS cooperation).
    SagInterleaved,
}

/// Decodes and encodes physical addresses for a fixed [`Geometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapper {
    geometry: Geometry,
    scheme: MappingScheme,
}

impl AddressMapper {
    /// Creates a mapper for `geometry` using `scheme`.
    pub fn new(geometry: Geometry, scheme: MappingScheme) -> Self {
        AddressMapper { geometry, scheme }
    }

    /// The geometry this mapper was built for.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The active mapping scheme.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// Decomposes a physical address. The byte offset within the cache line
    /// is discarded (memory operates at line granularity).
    pub fn decode(&self, addr: PhysAddr) -> DecodedAddr {
        let g = &self.geometry;
        let mut bits = addr.raw() >> g.line_bytes().trailing_zeros();
        let mut take = |count: u32| -> u32 {
            let mask = (1u64 << count) - 1;
            let field = (bits & mask) as u32;
            bits >>= count;
            field
        };
        let ch_bits = g.channels().trailing_zeros();
        let ra_bits = g.ranks_per_channel().trailing_zeros();
        let ba_bits = g.banks_per_rank().trailing_zeros();
        let ln_bits = g.lines_per_row().trailing_zeros();
        let ro_bits = g.rows_per_bank().trailing_zeros();
        match self.scheme {
            MappingScheme::RowRankBankLineChannel => {
                let channel = take(ch_bits);
                let line = take(ln_bits);
                let bank = take(ba_bits);
                let rank = take(ra_bits);
                let row = take(ro_bits);
                DecodedAddr {
                    channel,
                    rank,
                    bank,
                    row,
                    line,
                }
            }
            MappingScheme::RowLineRankBankChannel => {
                let channel = take(ch_bits);
                let bank = take(ba_bits);
                let rank = take(ra_bits);
                let line = take(ln_bits);
                let row = take(ro_bits);
                DecodedAddr {
                    channel,
                    rank,
                    bank,
                    row,
                    line,
                }
            }
            MappingScheme::LineRowRankBankChannel => {
                let channel = take(ch_bits);
                let bank = take(ba_bits);
                let rank = take(ra_bits);
                let row = take(ro_bits);
                let line = take(ln_bits);
                DecodedAddr {
                    channel,
                    rank,
                    bank,
                    row,
                    line,
                }
            }
            MappingScheme::SagInterleaved => {
                let sag_bits = g.sags().trailing_zeros();
                let channel = take(ch_bits);
                let line = take(ln_bits);
                let sag = take(sag_bits);
                let bank = take(ba_bits);
                let rank = take(ra_bits);
                let row_within = take(ro_bits - sag_bits);
                let row = sag * g.rows_per_sag() + row_within;
                DecodedAddr {
                    channel,
                    rank,
                    bank,
                    row,
                    line,
                }
            }
        }
    }

    /// Reassembles a decoded address into the (line-aligned) physical
    /// address it came from. Inverse of [`decode`](Self::decode).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any field exceeds its geometric range.
    pub fn encode(&self, decoded: DecodedAddr) -> PhysAddr {
        let g = &self.geometry;
        debug_assert!(decoded.channel < g.channels());
        debug_assert!(decoded.rank < g.ranks_per_channel());
        debug_assert!(decoded.bank < g.banks_per_rank());
        debug_assert!(decoded.row < g.rows_per_bank());
        debug_assert!(decoded.line < g.lines_per_row());
        let mut bits: u64 = 0;
        let mut shift: u32 = 0;
        let mut put = |field: u32, count: u32| {
            bits |= u64::from(field) << shift;
            shift += count;
        };
        let ch_bits = g.channels().trailing_zeros();
        let ra_bits = g.ranks_per_channel().trailing_zeros();
        let ba_bits = g.banks_per_rank().trailing_zeros();
        let ln_bits = g.lines_per_row().trailing_zeros();
        let ro_bits = g.rows_per_bank().trailing_zeros();
        match self.scheme {
            MappingScheme::RowRankBankLineChannel => {
                put(decoded.channel, ch_bits);
                put(decoded.line, ln_bits);
                put(decoded.bank, ba_bits);
                put(decoded.rank, ra_bits);
                put(decoded.row, ro_bits);
            }
            MappingScheme::RowLineRankBankChannel => {
                put(decoded.channel, ch_bits);
                put(decoded.bank, ba_bits);
                put(decoded.rank, ra_bits);
                put(decoded.line, ln_bits);
                put(decoded.row, ro_bits);
            }
            MappingScheme::LineRowRankBankChannel => {
                put(decoded.channel, ch_bits);
                put(decoded.bank, ba_bits);
                put(decoded.rank, ra_bits);
                put(decoded.row, ro_bits);
                put(decoded.line, ln_bits);
            }
            MappingScheme::SagInterleaved => {
                let sag_bits = g.sags().trailing_zeros();
                let sag = g.sag_of_row(decoded.row);
                let row_within = decoded.row % g.rows_per_sag();
                put(decoded.channel, ch_bits);
                put(decoded.line, ln_bits);
                put(sag, sag_bits);
                put(decoded.bank, ba_bits);
                put(decoded.rank, ra_bits);
                put(row_within, ro_bits - sag_bits);
            }
        }
        PhysAddr::new(bits << g.line_bytes().trailing_zeros())
    }

    /// FgNVM tile coordinates of a decoded access.
    pub fn tile_coord(&self, decoded: DecodedAddr) -> TileCoord {
        let sag = self.geometry.sag_of_row(decoded.row);
        let (cd_first, cd_count) = self.geometry.cds_of_line(decoded.line);
        TileCoord {
            sag,
            cd_first,
            cd_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper(scheme: MappingScheme) -> AddressMapper {
        let geom = Geometry::builder()
            .channels(2)
            .ranks_per_channel(2)
            .banks_per_rank(8)
            .rows_per_bank(1024)
            .sags(8)
            .cds(2)
            .build()
            .unwrap();
        AddressMapper::new(geom, scheme)
    }

    #[test]
    fn decode_encode_roundtrip_all_schemes() {
        for scheme in [
            MappingScheme::RowRankBankLineChannel,
            MappingScheme::RowLineRankBankChannel,
            MappingScheme::LineRowRankBankChannel,
            MappingScheme::SagInterleaved,
        ] {
            let m = mapper(scheme);
            // Capacity is 2^19 lines of 64 B; stay within range.
            let capacity = m.geometry().capacity_bytes();
            for raw in [0u64, 64, 4096, 0x00de_adc0, capacity - 64] {
                let addr = PhysAddr::new(raw).line_aligned(64);
                let decoded = m.decode(addr);
                assert_eq!(m.encode(decoded), addr, "{scheme:?} {raw:#x}");
            }
        }
    }

    #[test]
    fn offset_within_line_is_discarded() {
        let m = mapper(MappingScheme::RowRankBankLineChannel);
        assert_eq!(m.decode(PhysAddr::new(63)), m.decode(PhysAddr::new(0)));
        assert_ne!(m.decode(PhysAddr::new(64)), m.decode(PhysAddr::new(0)));
    }

    #[test]
    fn row_friendly_scheme_keeps_lines_in_one_row() {
        let m = mapper(MappingScheme::RowRankBankLineChannel);
        // Consecutive lines on the same channel differ only in `line`.
        let a = m.decode(PhysAddr::new(0));
        let b = m.decode(PhysAddr::new(2 * 64)); // skip channel bit
        assert_eq!((a.row, a.bank, a.rank), (b.row, b.bank, b.rank));
        assert_ne!(a.line, b.line);
    }

    #[test]
    fn bank_interleaved_scheme_spreads_banks() {
        let m = mapper(MappingScheme::RowLineRankBankChannel);
        let a = m.decode(PhysAddr::new(0));
        let b = m.decode(PhysAddr::new(2 * 64));
        assert_ne!(a.bank, b.bank);
    }

    #[test]
    fn sag_interleaved_stripes_contiguous_footprints() {
        let m = mapper(MappingScheme::SagInterleaved);
        // Walk a contiguous region one "row unit" at a time (line+sag bits
        // above the line field): consecutive row-units land in different
        // SAGs of the same bank.
        let geom = *m.geometry();
        let row_unit = u64::from(geom.line_bytes() * geom.lines_per_row());
        let sags: Vec<u32> = (0..8u64)
            .map(|i| geom.sag_of_row(m.decode(PhysAddr::new(i * row_unit * 2)).row))
            .collect();
        let distinct: std::collections::HashSet<u32> = sags.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            geom.sags() as usize,
            "sags visited: {sags:?}"
        );
    }

    #[test]
    fn tile_coord_uses_geometry() {
        let m = mapper(MappingScheme::RowRankBankLineChannel);
        let decoded = DecodedAddr {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 300,
            line: 9,
        };
        let tc = m.tile_coord(decoded);
        assert_eq!(tc.sag, 300 / (1024 / 8));
        // 2 CDs over 16 lines: 8 lines per CD.
        assert_eq!((tc.cd_first, tc.cd_count), (1, 1));
    }

    #[test]
    fn cd_overlap_detection() {
        let a = TileCoord {
            sag: 0,
            cd_first: 0,
            cd_count: 2,
        };
        let b = TileCoord {
            sag: 1,
            cd_first: 1,
            cd_count: 1,
        };
        let c = TileCoord {
            sag: 2,
            cd_first: 2,
            cd_count: 2,
        };
        assert!(a.cd_overlaps(&b));
        assert!(!a.cd_overlaps(&c));
        assert!(b.cd_overlaps(&a));
    }

    #[test]
    fn line_aligned_masks_low_bits() {
        assert_eq!(PhysAddr::new(0x7f).line_aligned(64), PhysAddr::new(0x40));
    }

    #[test]
    fn display_formats() {
        let addr = PhysAddr::new(0x40);
        assert_eq!(addr.to_string(), "0x40");
        assert_eq!(format!("{addr:x}"), "40");
        let d = DecodedAddr {
            channel: 1,
            rank: 0,
            bank: 2,
            row: 3,
            line: 4,
        };
        assert_eq!(d.to_string(), "ch1/ra0/ba2/row3/ln4");
    }
}
