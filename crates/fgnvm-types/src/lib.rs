//! Shared vocabulary types for the FgNVM simulator family.
//!
//! This crate defines the units, addresses, requests, and configuration
//! structures used by every other `fgnvm-*` crate. It reproduces the
//! parameters of *"Fine-Granularity Tile-Level Parallelism in Non-volatile
//! Memory Architecture with Two-Dimensional Bank Subdivision"* (DAC 2016):
//! the geometry of a two-dimensionally subdivided NVM bank (subarray groups ×
//! column divisions), the paper's PCM timing and energy constants, and the
//! system presets compared in its evaluation.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), fgnvm_types::error::ConfigError> {
//! use fgnvm_types::config::SystemConfig;
//!
//! // The paper's 8×2 FgNVM design and its baseline, ready to simulate.
//! let fgnvm = SystemConfig::fgnvm(8, 2)?;
//! let baseline = SystemConfig::baseline();
//! assert!(fgnvm.geometry.sensed_bytes_per_activation()
//!     < baseline.geometry.sensed_bytes_per_activation());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod config;
pub mod error;
pub mod geometry;
pub mod hist;
pub mod params;
pub mod request;
pub mod snapshot;
pub mod time;

pub use address::{AddressMapper, DecodedAddr, MappingScheme, PhysAddr, TileCoord};
pub use config::{
    BankModel, EnergyConfig, ReliabilityConfig, SchedulerKind, SystemConfig, TimingConfig,
    TimingCycles,
};
pub use error::{ConfigError, SimError};
pub use geometry::Geometry;
pub use params::{parse_system_config, write_system_config, ParseParamsError};
pub use request::{Completion, Op, Priority, Request, RequestId};
pub use snapshot::{fnv1a64, SnapshotError, SnapshotReader, SnapshotWriter, SNAPSHOT_VERSION};
pub use time::{Cycle, CycleCount};
