//! Versioned, hand-rolled binary snapshot encoding for checkpoint/restore.
//!
//! Every mutable piece of simulation state serializes itself through
//! [`SnapshotWriter`] and rebuilds from [`SnapshotReader`]. The format is
//! deliberately simple and fully deterministic:
//!
//! * an 8-byte magic (`FGNVMCK1`) and a `u32` format version up front;
//! * little-endian fixed-width primitives, length-prefixed strings and
//!   byte blobs;
//! * structure tags (short ASCII strings) at every aggregate boundary, so
//!   a reader that drifts out of sync fails with [`SnapshotError::BadTag`]
//!   instead of silently misinterpreting bytes;
//! * an FNV-1a 64-bit checksum trailer over everything before it.
//!
//! Maps and sets must be written in sorted key order by their owners —
//! the writer cannot enforce that, but the checkpoint differential tests
//! do: a nondeterministic iteration order would break the bit-identical
//! resume invariant.
//!
//! Compatibility rule: the version is bumped on *any* layout change, and
//! readers reject every version other than their own ([`SNAPSHOT_VERSION`]).
//! Checkpoints are short-lived artifacts of one experiment, not archival
//! interchange; refusing to guess beats silently corrupting a resumed run.

use std::error::Error;
use std::fmt;

/// Leading magic bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"FGNVMCK1";

/// Current snapshot format version. Bump on any layout change.
///
/// v2: the observer section gained optional telemetry state (time-series
/// engine + flight recorder) and the serve section gained the telemetry
/// cursor and SLO burn counters.
///
/// v3: multi-tenant serving — pending requests, controller events,
/// attribution records, system stats, telemetry windows, the QoS
/// scheduler, and the serve driver all gained per-tenant state.
///
/// v4: issue audit — the observer section gained an optional scheduler
/// decision-audit log and telemetry windows gained the per-window
/// co-issue opportunity counter.
pub const SNAPSHOT_VERSION: u32 = 4;

/// Why a snapshot could not be decoded.
///
/// Every variant is a structured, recoverable error: corrupted or
/// truncated checkpoint files must surface as `Err`, never as a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the expected data.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes that remained.
        available: usize,
    },
    /// The leading magic bytes did not match [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    BadVersion {
        /// Version found in the stream.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A structure tag did not match what the decoder expected — the
    /// stream is misaligned or from a different object graph.
    BadTag {
        /// Tag the decoder expected.
        expected: String,
        /// Tag actually present.
        found: String,
    },
    /// The stream failed its checksum or carried an invalid encoding
    /// (bad discriminant, non-UTF-8 string, impossible length).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated {
                expected,
                available,
            } => write!(
                f,
                "snapshot truncated: needed {expected} bytes, {available} remain"
            ),
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic bytes"),
            SnapshotError::BadVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            SnapshotError::BadTag { expected, found } => {
                write!(
                    f,
                    "snapshot structure mismatch: expected tag `{expected}`, found `{found}`"
                )
            }
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl Error for SnapshotError {}

/// FNV-1a 64-bit hash (checksum trailer and config fingerprints).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Appends snapshot state to a growing byte buffer.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        SnapshotWriter::new()
    }
}

impl SnapshotWriter {
    /// Starts a snapshot: writes the magic and format version.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        SnapshotWriter { buf }
    }

    /// Seals the snapshot: appends the checksum trailer and returns the
    /// finished byte stream.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }

    /// Writes a structure tag (decoder cross-checks it with
    /// [`SnapshotReader::tag`]).
    pub fn tag(&mut self, name: &str) {
        self.str(name);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` by its IEEE-754 bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an optional `u32` (presence byte + value).
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u32(x);
            }
            None => self.bool(false),
        }
    }

    /// Writes an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Decodes a byte stream produced by [`SnapshotWriter`].
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Opens a snapshot: verifies length, checksum trailer, magic, and
    /// format version before any field is decoded.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] when the stream is truncated, fails its
    /// checksum, carries the wrong magic, or was written by an
    /// incompatible version.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let header = SNAPSHOT_MAGIC.len() + 4;
        if bytes.len() < header + 8 {
            return Err(SnapshotError::Truncated {
                expected: header + 8,
                available: bytes.len(),
            });
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("trailer is 8 bytes"));
        if fnv1a64(payload) != stored {
            return Err(SnapshotError::Corrupt("checksum mismatch".into()));
        }
        if payload[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = SnapshotReader {
            buf: payload,
            pos: SNAPSHOT_MAGIC.len(),
        };
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(SnapshotError::Truncated {
                expected: n,
                available,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads and verifies a structure tag.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::BadTag`] if the stream carries a different
    /// tag at this position.
    pub fn tag(&mut self, expected: &str) -> Result<(), SnapshotError> {
        let found = self.str()?;
        if found != expected {
            return Err(SnapshotError::BadTag {
                expected: expected.into(),
                found,
            });
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the stream ends.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting any byte other than 0 or 1.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on truncation or an invalid encoding.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the stream ends.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the stream ends.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the stream ends.
    pub fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on truncation or a value too large for
    /// this platform's word size.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the stream ends.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an optional `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on truncation or an invalid encoding.
    pub fn opt_u32(&mut self) -> Result<Option<u32>, SnapshotError> {
        if self.bool()? {
            Ok(Some(self.u32()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an optional `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on truncation or an invalid encoding.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads a length-prefixed byte blob.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the stream ends.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Verifies the whole payload was consumed (trailing garbage means
    /// the reader and writer disagree about the layout).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        let remaining = self.buf.len() - self.pos;
        if remaining != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{remaining} unread bytes after the last field"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapshotWriter::new();
        w.tag("test");
        w.u8(7);
        w.bool(true);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.u128(u128::MAX / 3);
        w.usize(12345);
        w.f64(-0.125);
        w.opt_u32(Some(9));
        w.opt_u32(None);
        w.opt_u64(Some(u64::MAX));
        w.str("hello");
        w.bytes(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.tag("test").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.opt_u32().unwrap(), Some(9));
        assert_eq!(r.opt_u32().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(u64::MAX));
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_a_structured_error() {
        let mut w = SnapshotWriter::new();
        w.u64(42);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let err = match SnapshotReader::new(&bytes[..cut]) {
                Err(e) => e,
                Ok(mut r) => match r.u64().and_then(|_| {
                    r.expect_end()?;
                    Ok(())
                }) {
                    Err(e) => e,
                    Ok(()) => panic!("truncated stream at {cut} decoded cleanly"),
                },
            };
            // Every truncation yields a structured error, never a panic.
            let _ = err.to_string();
        }
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let mut w = SnapshotWriter::new();
        w.u64(42);
        let mut bytes = w.finish();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            SnapshotReader::new(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut w = SnapshotWriter::new();
        w.u32(1);
        let mut bytes = w.finish();
        // Corrupt the magic but re-seal the checksum so only the magic is
        // at fault.
        bytes[0] = b'X';
        let len = bytes.len();
        let sum = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SnapshotReader::new(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut w = SnapshotWriter::new();
        w.u32(1);
        let mut bytes = w.finish();
        bytes[8] = 0xfe; // version byte
        let len = bytes.len();
        let sum = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            SnapshotReader::new(&bytes),
            Err(SnapshotError::BadVersion { .. })
        ));
    }

    #[test]
    fn tag_mismatch_is_reported() {
        let mut w = SnapshotWriter::new();
        w.tag("controller");
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let err = r.tag("bank").unwrap_err();
        assert!(matches!(err, SnapshotError::BadTag { .. }));
        assert!(err.to_string().contains("bank"));
    }
}
