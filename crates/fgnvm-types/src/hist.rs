//! Shared power-of-two (log2) histogram arithmetic.
//!
//! Several layers keep latency histograms with the same bucketing — the
//! memory system's [`SystemStats`](../../fgnvm_mem/stats/index.html), the
//! observability layer's per-component breakdowns, and the CLI's ASCII
//! renderers. This module is the single definition of that bucketing so the
//! bucket math, bounds, and percentile extraction cannot drift apart.
//!
//! Bucketing rule: bucket 0 holds exactly the value 0; bucket *i* ≥ 1 holds
//! values in `[2^(i-1), 2^i)`. The top bucket additionally clamps everything
//! at or above `2^(HIST_BUCKETS-2)`, so it is open-ended.
//!
//! Approximation error: reporting a bucket's inclusive upper bound
//! overstates a value inside bucket *i* ≥ 1 by strictly less than 2× (the
//! bucket spans one octave). Bucket 0 is exact (only the value 0 lands
//! there). The top bucket's reported bound understates clamped outliers —
//! callers that care track the true maximum separately.

/// Number of histogram buckets used across the simulator (values up to
/// ~512 Ki cycles resolve exactly; larger ones clamp into the top bucket).
pub const HIST_BUCKETS: usize = 20;

/// The bucket index for `value`: 0 for 0, otherwise its bit length, clamped
/// to the top bucket.
///
/// ```
/// use fgnvm_types::hist::latency_bucket;
/// assert_eq!(latency_bucket(0), 0);
/// assert_eq!(latency_bucket(1), 1);
/// assert_eq!(latency_bucket(40), 6); // 32..=63
/// assert_eq!(latency_bucket(u64::MAX), 19);
/// ```
#[inline]
pub const fn latency_bucket(value: u64) -> usize {
    let bits = (u64::BITS - value.leading_zeros()) as usize;
    if bits < HIST_BUCKETS {
        bits
    } else {
        HIST_BUCKETS - 1
    }
}

/// The inclusive `(low, high)` value range of `bucket`. The top bucket is
/// open-ended upward; its nominal `high` of `2^(HIST_BUCKETS-1) - 1`
/// understates clamped values.
///
/// ```
/// use fgnvm_types::hist::bucket_bounds;
/// assert_eq!(bucket_bounds(0), (0, 0));
/// assert_eq!(bucket_bounds(6), (32, 63));
/// ```
///
/// # Panics
///
/// Panics if `bucket >= HIST_BUCKETS`.
#[inline]
pub const fn bucket_bounds(bucket: usize) -> (u64, u64) {
    assert!(bucket < HIST_BUCKETS, "bucket out of range");
    if bucket == 0 {
        (0, 0)
    } else {
        (1 << (bucket - 1), (1 << bucket) - 1)
    }
}

/// The inclusive upper bound of `bucket` (see [`bucket_bounds`]).
#[inline]
pub const fn bucket_upper_bound(bucket: usize) -> u64 {
    bucket_bounds(bucket).1
}

/// The `p`-th percentile (p in `[0, 1]`) of a histogram, reported as the
/// inclusive upper bound of the bucket containing the rank-`⌈p·n⌉` sample.
/// Zero when the histogram is empty. The per-bucket approximation error is
/// documented in the [module docs](self).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn percentile_from_hist(counts: &[u64], p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "percentile out of range");
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (p * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (bucket, &count) in counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return bucket_upper_bound(bucket);
        }
    }
    unreachable!("rank {rank} exceeds histogram total {total}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        // Every value lands in exactly the bucket whose bounds contain it
        // (or the top bucket when it clamps).
        for v in (0u64..4096).chain([1 << 18, (1 << 19) - 1, 1 << 19, u64::MAX]) {
            let b = latency_bucket(v);
            let (lo, hi) = bucket_bounds(b);
            if b < HIST_BUCKETS - 1 {
                assert!(lo <= v && v <= hi, "value {v} outside bucket {b}");
            } else {
                assert!(v >= lo, "clamped value {v} below top bucket's floor");
            }
        }
    }

    #[test]
    fn bucket_zero_is_exact() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_upper_bound(0), 0);
    }

    #[test]
    fn upper_bound_error_is_below_2x() {
        for v in 1u64..(1 << 12) {
            let bound = bucket_upper_bound(latency_bucket(v));
            assert!(bound >= v);
            assert!(bound < v * 2, "bound {bound} ≥ 2× value {v}");
        }
    }

    #[test]
    fn percentile_of_zero_latency_is_zero() {
        // The regression this module exists to pin: a run whose every
        // sample is 0 must report percentile 0, not 1.
        let mut counts = [0u64; HIST_BUCKETS];
        counts[0] = 10;
        assert_eq!(percentile_from_hist(&counts, 0.99), 0);
    }

    /// Regression pin for the bucket-0 percentile bound fix: a histogram
    /// whose samples all fall in one bucket must report that bucket's upper
    /// bound at every percentile — in particular bucket 0 (the exact value
    /// 0) must report 0, not the pre-fix `1`.
    #[test]
    fn single_bucket_percentiles_are_that_buckets_bound() {
        for (bucket, expect) in [
            (0usize, 0u64),
            (1, 1),
            (6, 63),
            (HIST_BUCKETS - 1, (1 << (HIST_BUCKETS - 1)) - 1),
        ] {
            let mut counts = vec![0u64; HIST_BUCKETS];
            counts[bucket] = 1000;
            for p in [0.50, 0.95, 0.99] {
                assert_eq!(
                    percentile_from_hist(&counts, p),
                    expect,
                    "bucket {bucket} at p{}",
                    p * 100.0
                );
            }
        }
    }

    /// Regression pin: the empty histogram reports 0 at every percentile
    /// instead of panicking or returning a bucket bound.
    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let counts = vec![0u64; HIST_BUCKETS];
        for p in [0.0, 0.50, 0.95, 0.99, 1.0] {
            assert_eq!(percentile_from_hist(&counts, p), 0);
        }
        // Degenerate but legal: a zero-length counts slice is also empty.
        assert_eq!(percentile_from_hist(&[], 0.99), 0);
    }

    #[test]
    fn percentile_walks_the_distribution() {
        let mut counts = [0u64; HIST_BUCKETS];
        counts[6] = 90; // 32..=63
        counts[10] = 10; // 512..=1023
        assert_eq!(percentile_from_hist(&counts, 0.5), 63);
        assert_eq!(percentile_from_hist(&counts, 0.9), 63);
        assert_eq!(percentile_from_hist(&counts, 0.99), 1023);
        assert_eq!(percentile_from_hist(&[0; HIST_BUCKETS], 0.99), 0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn out_of_range_percentile_rejected() {
        let _ = percentile_from_hist(&[1], 1.5);
    }
}
