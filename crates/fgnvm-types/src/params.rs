//! NVMain-style parameter files.
//!
//! NVMain (the simulator the paper builds on) is configured with plain
//! text files of `KEY value` lines. This module parses that format into a
//! [`SystemConfig`], so existing workflows can configure the simulator
//! without writing Rust:
//!
//! ```text
//! ; FgNVM 8x2 on the paper's PCM timings
//! BankModel FGNVM
//! SAGs 8
//! CDs 2
//! tRCD 25
//! tCAS 95
//! tWP 150
//! Scheduler FRFCFS_TLP
//! ```
//!
//! Unknown keys are an error (catching typos beats silently ignoring
//! them); keys are case-insensitive; `;` and `#` start comments.

use std::error::Error;
use std::fmt;

use crate::config::{BankModel, RowPolicy, SchedulerKind, SystemConfig};
use crate::geometry::Geometry;

/// Error produced while parsing a parameter file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParamsError {
    /// 1-based line number of the offending line (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parameter file invalid: {}", self.message)
        } else {
            write!(f, "parameter file line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseParamsError {}

fn err(line: usize, message: impl Into<String>) -> ParseParamsError {
    ParseParamsError {
        line,
        message: message.into(),
    }
}

/// Parses an NVMain-style parameter file into a validated [`SystemConfig`].
///
/// Every field defaults to the paper's baseline configuration; lines
/// override individual parameters. The final configuration (geometry
/// divisibility, timing positivity, bank-model/geometry agreement) is
/// validated before returning.
///
/// ```
/// # fn main() -> Result<(), fgnvm_types::ParseParamsError> {
/// use fgnvm_types::parse_system_config;
///
/// let config = parse_system_config("BankModel FGNVM\nSAGs 8\nCDs 2")?;
/// assert_eq!((config.geometry.sags(), config.geometry.cds()), (8, 2));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`ParseParamsError`] naming the offending line for syntax
/// errors, unknown keys, or unparsable values, and line 0 for whole-file
/// consistency failures.
pub fn parse_system_config(text: &str) -> Result<SystemConfig, ParseParamsError> {
    let mut config = SystemConfig::baseline();
    // Geometry fields are gathered and rebuilt at the end.
    let g = config.geometry;
    let mut channels = g.channels();
    let mut ranks = g.ranks_per_channel();
    let mut banks = g.banks_per_rank();
    let mut rows = g.rows_per_bank();
    let mut row_bytes = g.row_bytes();
    let mut line_bytes = g.line_bytes();
    let mut sags = 1u32;
    let mut cds = 1u32;

    for (index, raw_line) in text.lines().enumerate() {
        let lineno = index + 1;
        let line = raw_line.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(lineno, format!("expected `KEY value`, got `{line}`")))?;
        let value = value.trim();
        let parse_u32 = |v: &str| -> Result<u32, ParseParamsError> {
            v.parse()
                .map_err(|_| err(lineno, format!("`{v}` is not an integer")))
        };
        let parse_u64 = |v: &str| -> Result<u64, ParseParamsError> {
            v.parse()
                .map_err(|_| err(lineno, format!("`{v}` is not an integer")))
        };
        let parse_f64 = |v: &str| -> Result<f64, ParseParamsError> {
            v.parse()
                .map_err(|_| err(lineno, format!("`{v}` is not a number")))
        };
        let parse_bool = |v: &str| -> Result<bool, ParseParamsError> {
            match v.to_ascii_lowercase().as_str() {
                "1" | "true" | "yes" | "on" => Ok(true),
                "0" | "false" | "no" | "off" => Ok(false),
                _ => Err(err(lineno, format!("`{v}` is not a boolean"))),
            }
        };
        match key.to_ascii_uppercase().as_str() {
            "CLK" => config.timing.clock_mhz = parse_f64(value)?,
            "TRCD" => config.timing.t_rcd_ns = parse_f64(value)?,
            "TCAS" | "TCL" => config.timing.t_cas_ns = parse_f64(value)?,
            "TRP" => config.timing.t_rp_ns = parse_f64(value)?,
            "TRAS" => config.timing.t_ras_ns = parse_f64(value)?,
            "TCCD" => config.timing.t_ccd_cycles = parse_u64(value)?,
            "TBURST" => config.timing.t_burst_cycles = parse_u64(value)?,
            "TCWD" => config.timing.t_cwd_ns = parse_f64(value)?,
            "TWP" => config.timing.t_wp_ns = parse_f64(value)?,
            "TWR" => config.timing.t_wr_ns = parse_f64(value)?,
            "EREADBIT" => config.energy.read_pj_per_bit = parse_f64(value)?,
            "EWRITEBIT" => config.energy.write_pj_per_bit = parse_f64(value)?,
            "EBACKGROUND" => config.energy.background_pj_per_bit = parse_f64(value)?,
            "CHANNELS" => channels = parse_u32(value)?,
            "RANKS" => ranks = parse_u32(value)?,
            "BANKS" => banks = parse_u32(value)?,
            "ROWS" => rows = parse_u32(value)?,
            "ROWSIZE" => row_bytes = parse_u32(value)?,
            "LINESIZE" => line_bytes = parse_u32(value)?,
            "SAGS" => sags = parse_u32(value)?,
            "CDS" => cds = parse_u32(value)?,
            "QUEUEENTRIES" => config.queue_entries = parse_u32(value)? as usize,
            "WRITEQUEUEENTRIES" => config.write_queue_entries = parse_u32(value)? as usize,
            "COMMANDSPERCYCLE" => config.commands_per_cycle = parse_u32(value)?,
            "DATABUSWIDTH" => config.data_bus_width = parse_u32(value)?,
            "WRITEPAUSING" => config.write_pausing = parse_bool(value)?,
            "ROWPOLICY" => {
                config.row_policy = match value.to_ascii_uppercase().as_str() {
                    "OPEN" => RowPolicy::Open,
                    "CLOSED" => RowPolicy::Closed,
                    other => return Err(err(lineno, format!("unknown row policy `{other}`"))),
                }
            }
            "SCHEDULER" => {
                config.scheduler = match value.to_ascii_uppercase().as_str() {
                    "FCFS" => SchedulerKind::Fcfs,
                    "FRFCFS" => SchedulerKind::Frfcfs,
                    "FRFCFS_TLP" | "FRFCFSTLP" => SchedulerKind::FrfcfsTlp,
                    "FRFCFS_CAP" | "FRFCFSCAP" => SchedulerKind::FrfcfsCap,
                    "FRFCFS_QOS" | "FRFCFSQOS" => SchedulerKind::FrfcfsQos,
                    other => return Err(err(lineno, format!("unknown scheduler `{other}`"))),
                }
            }
            "BANKMODEL" => {
                config.bank_model = match value.to_ascii_uppercase().as_str() {
                    "BASELINE" => BankModel::Baseline,
                    "FGNVM" => BankModel::fgnvm(),
                    "DRAM" => BankModel::Dram,
                    other => return Err(err(lineno, format!("unknown bank model `{other}`"))),
                }
            }
            // Individual FgNVM access modes (for ablation configs). Only
            // meaningful after `BankModel FGNVM`.
            "PARTIALACTIVATION" | "MULTIACTIVATION" | "BACKGROUNDWRITES" => {
                let BankModel::Fgnvm {
                    mut partial_activation,
                    mut multi_activation,
                    mut background_writes,
                } = config.bank_model
                else {
                    return Err(err(
                        lineno,
                        format!("`{key}` requires `BankModel FGNVM` first"),
                    ));
                };
                let flag = parse_bool(value)?;
                match key.to_ascii_uppercase().as_str() {
                    "PARTIALACTIVATION" => partial_activation = flag,
                    "MULTIACTIVATION" => multi_activation = flag,
                    _ => background_writes = flag,
                }
                config.bank_model = BankModel::Fgnvm {
                    partial_activation,
                    multi_activation,
                    background_writes,
                };
            }
            "RELIABILITY" => config.reliability.enabled = parse_bool(value)?,
            "FAULTSEED" => config.reliability.fault_seed = parse_u64(value)?,
            "RBER" => config.reliability.rber = parse_f64(value)?,
            "WRITEFAILPROB" => config.reliability.write_fail_prob = parse_f64(value)?,
            "MAXWRITERETRIES" => config.reliability.max_write_retries = parse_u32(value)?,
            "ECCCORRECTABLEBITS" => config.reliability.ecc_correctable_bits = parse_u32(value)?,
            "ECCDECODEPENALTY" => config.reliability.ecc_decode_penalty_cycles = parse_u64(value)?,
            "WEARSTUCKTHRESHOLD" => config.reliability.wear_stuck_threshold = parse_u64(value)?,
            "SPAREROWSPERBANK" => config.reliability.spare_rows_per_bank = parse_u32(value)?,
            "READONLYROWTHRESHOLD" => {
                config.reliability.read_only_row_threshold = parse_u32(value)?;
            }
            "CAPACITYEXHAUSTEDBANKS" => {
                config.reliability.capacity_exhausted_banks = parse_u32(value)?;
            }
            other => return Err(err(lineno, format!("unknown parameter `{other}`"))),
        }
    }

    // Undivided bank models always use a 1×1 geometry.
    if !config.bank_model.is_fgnvm() {
        sags = 1;
        cds = 1;
    }
    config.geometry = Geometry::builder()
        .channels(channels)
        .ranks_per_channel(ranks)
        .banks_per_rank(banks)
        .rows_per_bank(rows)
        .row_bytes(row_bytes)
        .line_bytes(line_bytes)
        .sags(sags)
        .cds(cds)
        .build()
        .map_err(|e| err(0, e.to_string()))?;
    config.validate().map_err(|e| err(0, e.to_string()))?;
    Ok(config)
}

/// Renders a [`SystemConfig`] as an NVMain-style parameter file — the
/// inverse of [`parse_system_config`]. Every effective parameter is
/// emitted, so the output is a complete, self-contained record of a run's
/// configuration (the role of NVMain's config dump).
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use fgnvm_types::config::SystemConfig;
/// use fgnvm_types::{parse_system_config, write_system_config};
///
/// let config = SystemConfig::fgnvm_with_pausing(8, 8)?;
/// let text = write_system_config(&config);
/// assert_eq!(parse_system_config(&text)?, config);
/// # Ok(())
/// # }
/// ```
pub fn write_system_config(config: &SystemConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let g = &config.geometry;
    let t = &config.timing;
    let e = &config.energy;
    out.push_str("; generated by fgnvm (write_system_config)\n");
    let model = match config.bank_model {
        BankModel::Baseline => "BASELINE",
        BankModel::Dram => "DRAM",
        BankModel::Fgnvm { .. } => "FGNVM",
    };
    let _ = writeln!(out, "BankModel {model}");
    if let BankModel::Fgnvm {
        partial_activation,
        multi_activation,
        background_writes,
    } = config.bank_model
    {
        let _ = writeln!(out, "SAGs {}", g.sags());
        let _ = writeln!(out, "CDs {}", g.cds());
        let _ = writeln!(out, "PartialActivation {}", u8::from(partial_activation));
        let _ = writeln!(out, "MultiActivation {}", u8::from(multi_activation));
        let _ = writeln!(out, "BackgroundWrites {}", u8::from(background_writes));
    }
    let _ = writeln!(out, "Channels {}", g.channels());
    let _ = writeln!(out, "Ranks {}", g.ranks_per_channel());
    let _ = writeln!(out, "Banks {}", g.banks_per_rank());
    let _ = writeln!(out, "Rows {}", g.rows_per_bank());
    let _ = writeln!(out, "RowSize {}", g.row_bytes());
    let _ = writeln!(out, "LineSize {}", g.line_bytes());
    let _ = writeln!(out, "CLK {}", t.clock_mhz);
    let _ = writeln!(out, "tRCD {}", t.t_rcd_ns);
    let _ = writeln!(out, "tCAS {}", t.t_cas_ns);
    let _ = writeln!(out, "tRP {}", t.t_rp_ns);
    let _ = writeln!(out, "tRAS {}", t.t_ras_ns);
    let _ = writeln!(out, "tCCD {}", t.t_ccd_cycles);
    let _ = writeln!(out, "tBURST {}", t.t_burst_cycles);
    let _ = writeln!(out, "tCWD {}", t.t_cwd_ns);
    let _ = writeln!(out, "tWP {}", t.t_wp_ns);
    let _ = writeln!(out, "tWR {}", t.t_wr_ns);
    let _ = writeln!(out, "EReadBit {}", e.read_pj_per_bit);
    let _ = writeln!(out, "EWriteBit {}", e.write_pj_per_bit);
    let _ = writeln!(out, "EBackground {}", e.background_pj_per_bit);
    let scheduler = match config.scheduler {
        SchedulerKind::Fcfs => "FCFS",
        SchedulerKind::Frfcfs => "FRFCFS",
        SchedulerKind::FrfcfsTlp => "FRFCFS_TLP",
        SchedulerKind::FrfcfsCap => "FRFCFS_CAP",
        SchedulerKind::FrfcfsQos => "FRFCFS_QOS",
    };
    let _ = writeln!(out, "Scheduler {scheduler}");
    let _ = writeln!(out, "QueueEntries {}", config.queue_entries);
    let _ = writeln!(out, "WriteQueueEntries {}", config.write_queue_entries);
    let _ = writeln!(out, "CommandsPerCycle {}", config.commands_per_cycle);
    let _ = writeln!(out, "DataBusWidth {}", config.data_bus_width);
    let _ = writeln!(out, "WritePausing {}", u8::from(config.write_pausing));
    let policy = match config.row_policy {
        RowPolicy::Open => "OPEN",
        RowPolicy::Closed => "CLOSED",
    };
    let _ = writeln!(out, "RowPolicy {policy}");
    let r = &config.reliability;
    let _ = writeln!(out, "Reliability {}", u8::from(r.enabled));
    let _ = writeln!(out, "FaultSeed {}", r.fault_seed);
    let _ = writeln!(out, "RBER {}", r.rber);
    let _ = writeln!(out, "WriteFailProb {}", r.write_fail_prob);
    let _ = writeln!(out, "MaxWriteRetries {}", r.max_write_retries);
    let _ = writeln!(out, "EccCorrectableBits {}", r.ecc_correctable_bits);
    let _ = writeln!(out, "EccDecodePenalty {}", r.ecc_decode_penalty_cycles);
    let _ = writeln!(out, "WearStuckThreshold {}", r.wear_stuck_threshold);
    let _ = writeln!(out, "SpareRowsPerBank {}", r.spare_rows_per_bank);
    let _ = writeln!(out, "ReadOnlyRowThreshold {}", r.read_only_row_threshold);
    let _ = writeln!(out, "CapacityExhaustedBanks {}", r.capacity_exhausted_banks);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fgnvm_config_parses() {
        let text = "\
; FgNVM 8x2 on the paper's PCM timings
BankModel FGNVM
SAGs 8
CDs 2          ; two column divisions
tRCD 25
tCAS 95
tWP 150
Scheduler FRFCFS_TLP
";
        let config = parse_system_config(text).unwrap();
        assert_eq!(config.geometry.sags(), 8);
        assert_eq!(config.geometry.cds(), 2);
        assert_eq!(config.scheduler, SchedulerKind::FrfcfsTlp);
        assert!(config.bank_model.is_fgnvm());
        assert_eq!(config, SystemConfig::fgnvm(8, 2).unwrap());
    }

    #[test]
    fn empty_file_is_the_baseline() {
        let config = parse_system_config("").unwrap();
        assert_eq!(config, SystemConfig::baseline());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let config = parse_system_config("\n; comment\n# another\n  \nBanks 16\n").unwrap();
        assert_eq!(config.geometry.banks_per_rank(), 16);
    }

    #[test]
    fn keys_are_case_insensitive() {
        let a = parse_system_config("banks 16").unwrap();
        let b = parse_system_config("BANKS 16").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_key_names_the_line() {
        let e = parse_system_config("Banks 16\nBogus 3").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().to_lowercase().contains("bogus"), "{e}");
    }

    #[test]
    fn bad_value_names_the_line() {
        let e = parse_system_config("tRCD fast").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("fast"));
    }

    #[test]
    fn missing_value_rejected() {
        let e = parse_system_config("Banks").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn inconsistent_geometry_fails_validation() {
        // 3 banks: not a power of two.
        let e = parse_system_config("Banks 3").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn non_fgnvm_models_force_1x1() {
        let config = parse_system_config("BankModel BASELINE\nSAGs 8\nCDs 8").unwrap();
        assert_eq!((config.geometry.sags(), config.geometry.cds()), (1, 1));
        config.validate().unwrap();
    }

    #[test]
    fn dram_and_pausing_and_cap_parse() {
        let config =
            parse_system_config("BankModel DRAM\ntRP 13.75\ntRAS 35\nScheduler FRFCFS_CAP")
                .unwrap();
        assert_eq!(config.bank_model, BankModel::Dram);
        assert_eq!(config.scheduler, SchedulerKind::FrfcfsCap);
        let config = parse_system_config("WritePausing on").unwrap();
        assert!(config.write_pausing);
    }

    #[test]
    fn ablation_mode_keys_parse() {
        let config = parse_system_config(
            "BankModel FGNVM\nSAGs 8\nCDs 8\nPartialActivation 0\nMultiActivation 1\nBackgroundWrites 0",
        )
        .unwrap();
        assert_eq!(
            config.bank_model,
            BankModel::Fgnvm {
                partial_activation: false,
                multi_activation: true,
                background_writes: false,
            }
        );
    }

    #[test]
    fn mode_key_without_fgnvm_model_errors() {
        let e = parse_system_config("PartialActivation 0").unwrap_err();
        assert!(e.to_string().contains("BankModel FGNVM"), "{e}");
    }

    #[test]
    fn writer_round_trips_every_preset() {
        let presets = [
            SystemConfig::baseline(),
            SystemConfig::fgnvm(8, 2).unwrap(),
            SystemConfig::fgnvm(32, 32).unwrap(),
            SystemConfig::fgnvm_multi_issue(8, 8, 4).unwrap(),
            SystemConfig::fgnvm_with_pausing(8, 8).unwrap(),
            SystemConfig::many_banks_matching(8, 2).unwrap(),
            SystemConfig::dram(),
        ];
        for config in presets {
            let text = write_system_config(&config);
            let parsed = parse_system_config(&text)
                .unwrap_or_else(|e| panic!("round trip failed for {config:?}: {e}"));
            assert_eq!(parsed, config);
        }
    }

    #[test]
    fn reliability_keys_parse_and_round_trip() {
        let text = "BankModel FGNVM\nSAGs 8\nCDs 2\nScheduler FRFCFS_TLP\n\
                    Reliability on\nFaultSeed 99\nRBER 1e-3\nWriteFailProb 0.25\n\
                    MaxWriteRetries 4\nEccCorrectableBits 2\nEccDecodePenalty 10\n\
                    WearStuckThreshold 100000\n";
        let config = parse_system_config(text).unwrap();
        let r = config.reliability;
        assert!(r.enabled);
        assert_eq!(r.fault_seed, 99);
        assert!((r.rber - 1e-3).abs() < 1e-15);
        assert!((r.write_fail_prob - 0.25).abs() < 1e-15);
        assert_eq!(r.max_write_retries, 4);
        assert_eq!(r.ecc_correctable_bits, 2);
        assert_eq!(r.ecc_decode_penalty_cycles, 10);
        assert_eq!(r.wear_stuck_threshold, 100_000);
        let reparsed = parse_system_config(&write_system_config(&config)).unwrap();
        assert_eq!(reparsed, config);
    }

    #[test]
    fn out_of_range_fault_rates_are_rejected() {
        // The parser validates before returning, so hostile rates never
        // reach a simulation.
        for line in ["RBER 1.5", "RBER -0.1", "WriteFailProb 2", "RBER NaN"] {
            assert!(
                parse_system_config(line).is_err(),
                "`{line}` should be rejected"
            );
        }
    }

    #[test]
    fn writer_round_trips_ablation_modes() {
        for bits in 0u8..8 {
            let mut config = SystemConfig::fgnvm(8, 8).unwrap();
            config.bank_model = BankModel::Fgnvm {
                partial_activation: bits & 1 != 0,
                multi_activation: bits & 2 != 0,
                background_writes: bits & 4 != 0,
            };
            let parsed = parse_system_config(&write_system_config(&config)).unwrap();
            assert_eq!(parsed, config);
        }
    }
}
