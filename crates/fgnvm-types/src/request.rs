//! Memory requests as seen at the controller boundary.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::address::PhysAddr;
use crate::time::Cycle;

/// Unique, monotonically increasing request identifier.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates an identifier from a raw counter value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw counter value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Urgency class of a request: demand misses stall the core, prefetches
/// are speculative and may be deprioritized or dropped under load.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Priority {
    /// A demand access the core is (or will be) waiting on.
    #[default]
    Demand,
    /// A speculative prefetch; losing it costs performance, not
    /// correctness.
    Prefetch,
}

/// Whether a request reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// A demand read (load miss); latency-critical.
    Read,
    /// A writeback; posted, drained from the write queue in the background.
    Write,
}

impl Op {
    /// True for [`Op::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, Op::Read)
    }

    /// True for [`Op::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, Op::Write)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Read => "R",
            Op::Write => "W",
        })
    }
}

/// A cache-line-granularity memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Unique identifier assigned at enqueue time.
    pub id: RequestId,
    /// Read or write.
    pub op: Op,
    /// Line-aligned physical address.
    pub addr: PhysAddr,
    /// Cycle the request arrived at the controller.
    pub arrival: Cycle,
    /// Demand or prefetch.
    pub priority: Priority,
    /// Tenant the request belongs to (0 is the default/anonymous tenant,
    /// so single-stream callers never have to think about it).
    pub tenant: u16,
}

impl Request {
    /// Creates a demand request arriving `arrival` with identity `id`,
    /// owned by the default tenant 0.
    pub fn new(id: RequestId, op: Op, addr: PhysAddr, arrival: Cycle) -> Self {
        Request {
            id,
            op,
            addr,
            arrival,
            priority: Priority::Demand,
            tenant: 0,
        }
    }

    /// Returns this request marked as a prefetch.
    pub fn as_prefetch(mut self) -> Self {
        self.priority = Priority::Prefetch;
        self
    }

    /// Returns this request tagged as belonging to `tenant`.
    pub fn with_tenant(mut self, tenant: u16) -> Self {
        self.tenant = tenant;
        self
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} @{} (arr {})",
            self.id, self.op, self.addr, self.arrival
        )
    }
}

/// Record of a finished request, reported back to the front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Completion {
    /// The request's identifier.
    pub id: RequestId,
    /// Read or write.
    pub op: Op,
    /// Arrival cycle at the controller.
    pub arrival: Cycle,
    /// Cycle the data burst finished (read) or the write was accepted into
    /// the array (write).
    pub finished: Cycle,
    /// Tenant the request belonged to (0 for untagged traffic).
    pub tenant: u16,
}

impl Completion {
    /// End-to-end controller latency in cycles.
    pub fn latency(&self) -> crate::time::CycleCount {
        self.finished - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::CycleCount;

    #[test]
    fn op_predicates() {
        assert!(Op::Read.is_read() && !Op::Read.is_write());
        assert!(Op::Write.is_write() && !Op::Write.is_read());
    }

    #[test]
    fn completion_latency() {
        let c = Completion {
            id: RequestId::new(1),
            op: Op::Read,
            arrival: Cycle::new(10),
            finished: Cycle::new(52),
            tenant: 0,
        };
        assert_eq!(c.latency(), CycleCount::new(42));
    }

    #[test]
    fn display_is_informative() {
        let r = Request::new(
            RequestId::new(7),
            Op::Write,
            PhysAddr::new(0x80),
            Cycle::new(3),
        );
        let s = r.to_string();
        assert!(s.contains("req#7") && s.contains('W') && s.contains("0x80"));
    }
}
