//! Error types shared by the FgNVM crates.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied to a builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A structural parameter must be a positive power of two.
    NotPowerOfTwo {
        /// The offending field name.
        field: &'static str,
        /// The supplied value.
        value: u32,
    },
    /// A parameter violates a relationship with another parameter.
    Invalid {
        /// The offending field name.
        field: &'static str,
        /// Human-readable constraint that was violated.
        reason: &'static str,
    },
    /// A numeric parameter was outside its legal range.
    OutOfRange {
        /// The offending field name.
        field: &'static str,
        /// Human-readable description of the legal range.
        expected: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a positive power of two, got {value}")
            }
            ConfigError::Invalid { field, reason } => write!(f, "invalid {field}: {reason}"),
            ConfigError::OutOfRange { field, expected } => {
                write!(f, "{field} out of range: expected {expected}")
            }
        }
    }
}

impl Error for ConfigError {}

/// Unified error taxonomy for whole-simulation failures.
///
/// Everything a user can provoke from a configuration file or the command
/// line funnels into this type: invalid configurations, malformed parameter
/// files, I/O failures, unknown workload names, and — new with the
/// reliability layer — watchdog trips when a simulation stops making
/// forward progress (for example a wedged write-verify loop).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An invalid configuration (wraps [`ConfigError`]).
    Config(ConfigError),
    /// A parameter file failed to parse (wraps [`crate::ParseParamsError`]).
    Params(crate::params::ParseParamsError),
    /// A file could not be read or written.
    Io {
        /// Path of the file involved.
        path: String,
        /// The underlying OS error rendered as text.
        message: String,
    },
    /// A workload name did not match any known profile.
    UnknownWorkload(String),
    /// The simulation watchdog tripped: no request completed for
    /// `stall_cycles` consecutive cycles while work remained queued.
    Watchdog {
        /// The configured no-progress threshold, in memory cycles.
        stall_cycles: u64,
        /// Cycle at which the watchdog fired.
        now: u64,
        /// Requests still waiting in read queues.
        read_queue: usize,
        /// Requests still waiting in write queues.
        write_queue: usize,
        /// Human-readable dump of per-channel queue and bank state.
        state: String,
    },
    /// The wear-out escalation ladder reached its final stage: enough
    /// banks have dropped to read-only mode that the device can no longer
    /// satisfy its configured capacity floor (see
    /// `ReliabilityConfig::capacity_exhausted_banks`).
    CapacityExhausted {
        /// Banks currently in read-only mode, device-wide.
        read_only_banks: u32,
        /// Configured bank threshold that was crossed.
        threshold: u32,
        /// Rows retired (remapped or lost) device-wide.
        retired_rows: u64,
        /// Cycle at which the ladder escalated.
        now: u64,
    },
    /// A checkpoint could not be decoded (wraps
    /// [`SnapshotError`](crate::snapshot::SnapshotError)).
    Snapshot(crate::snapshot::SnapshotError),
    /// A request-queue operation named an entry index that does not exist.
    /// Scheduler picks are derived from the queue they are applied to, so
    /// this is unreachable through the public API; it is reported as a
    /// structured error (rather than a panic) so a scheduler bug degrades
    /// into a diagnosable stall instead of aborting a long run.
    QueueIndex {
        /// The offending entry index.
        index: usize,
        /// Live entries in the queue at the time of the call.
        len: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "configuration error: {e}"),
            SimError::Params(e) => write!(f, "parameter file error: {e}"),
            SimError::Io { path, message } => write!(f, "i/o error on {path}: {message}"),
            SimError::UnknownWorkload(name) => write!(f, "unknown workload profile: {name}"),
            SimError::Watchdog {
                stall_cycles,
                now,
                read_queue,
                write_queue,
                state,
            } => write!(
                f,
                "watchdog: no request completed for {stall_cycles} cycles \
                 (now cy{now}, {read_queue} reads + {write_queue} writes pending)\n{state}"
            ),
            SimError::CapacityExhausted {
                read_only_banks,
                threshold,
                retired_rows,
                now,
            } => write!(
                f,
                "capacity exhausted: {read_only_banks} banks read-only \
                 (threshold {threshold}), {retired_rows} rows retired, at cy{now}"
            ),
            SimError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
            SimError::QueueIndex { index, len } => {
                write!(f, "queue index {index} out of range ({len} entries queued)")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Params(e) => Some(e),
            SimError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::snapshot::SnapshotError> for SimError {
    fn from(e: crate::snapshot::SnapshotError) -> Self {
        SimError::Snapshot(e)
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<crate::params::ParseParamsError> for SimError {
    fn from(e: crate::params::ParseParamsError) -> Self {
        SimError::Params(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ConfigError::NotPowerOfTwo {
            field: "sags",
            value: 3,
        };
        assert_eq!(e.to_string(), "sags must be a positive power of two, got 3");
        let e = ConfigError::Invalid {
            field: "cds",
            reason: "too many",
        };
        assert_eq!(e.to_string(), "invalid cds: too many");
        let e = ConfigError::OutOfRange {
            field: "queue",
            expected: "1..=1024",
        };
        assert_eq!(e.to_string(), "queue out of range: expected 1..=1024");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ConfigError>();
    }
}
