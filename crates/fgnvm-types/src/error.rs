//! Error types shared by the FgNVM crates.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied to a builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A structural parameter must be a positive power of two.
    NotPowerOfTwo {
        /// The offending field name.
        field: &'static str,
        /// The supplied value.
        value: u32,
    },
    /// A parameter violates a relationship with another parameter.
    Invalid {
        /// The offending field name.
        field: &'static str,
        /// Human-readable constraint that was violated.
        reason: &'static str,
    },
    /// A numeric parameter was outside its legal range.
    OutOfRange {
        /// The offending field name.
        field: &'static str,
        /// Human-readable description of the legal range.
        expected: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a positive power of two, got {value}")
            }
            ConfigError::Invalid { field, reason } => write!(f, "invalid {field}: {reason}"),
            ConfigError::OutOfRange { field, expected } => {
                write!(f, "{field} out of range: expected {expected}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ConfigError::NotPowerOfTwo {
            field: "sags",
            value: 3,
        };
        assert_eq!(e.to_string(), "sags must be a positive power of two, got 3");
        let e = ConfigError::Invalid {
            field: "cds",
            reason: "too many",
        };
        assert_eq!(e.to_string(), "invalid cds: too many");
        let e = ConfigError::OutOfRange {
            field: "queue",
            expected: "1..=1024",
        };
        assert_eq!(e.to_string(), "queue out of range: expected 1..=1024");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ConfigError>();
    }
}
