//! Physical organization of the simulated memory system.
//!
//! The hierarchy follows the paper's §2: channels contain ranks, ranks
//! contain banks, and a bank is a matrix of rows and columns. FgNVM further
//! subdivides each bank in two dimensions into [`sags`](Geometry::sags)
//! (subarray groups — groups of tile rows sharing a local row decoder) and
//! [`cds`](Geometry::cds) (column divisions — groups of tile columns sharing
//! local I/O lines).

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// Static geometry of the memory system.
///
/// Construct via [`Geometry::builder`]; the builder validates every
/// power-of-two and divisibility constraint before producing a value, so a
/// `Geometry` in hand is always internally consistent.
///
/// ```
/// # fn main() -> Result<(), fgnvm_types::error::ConfigError> {
/// use fgnvm_types::geometry::Geometry;
///
/// let geom = Geometry::builder().sags(8).cds(2).build()?;
/// assert_eq!(geom.lines_per_row(), 16);
/// assert_eq!(geom.sensed_bytes_per_activation(), 512); // 1 KB row / 2 CDs
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    channels: u32,
    ranks_per_channel: u32,
    banks_per_rank: u32,
    rows_per_bank: u32,
    row_bytes: u32,
    line_bytes: u32,
    sags: u32,
    cds: u32,
}

impl Geometry {
    /// Starts building a geometry from the paper's Table 2 defaults:
    /// 1 channel, 1 rank, 8 banks, 32 Ki rows, 1 KB sensed row, 64 B lines,
    /// 4 SAGs × 4 CDs.
    pub fn builder() -> GeometryBuilder {
        GeometryBuilder::new()
    }

    /// Number of independent memory channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Ranks sharing each channel bus.
    pub fn ranks_per_channel(&self) -> u32 {
        self.ranks_per_channel
    }

    /// Banks within each rank.
    pub fn banks_per_rank(&self) -> u32 {
        self.banks_per_rank
    }

    /// Rows in each bank.
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// Bytes sensed by a full (baseline) row activation.
    pub fn row_bytes(&self) -> u32 {
        self.row_bytes
    }

    /// Bytes per cache line (one column command transfers one line).
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Subarray groups per bank (vertical subdivision; 1 = no subdivision).
    pub fn sags(&self) -> u32 {
        self.sags
    }

    /// Column divisions per bank (horizontal subdivision; 1 = no subdivision).
    pub fn cds(&self) -> u32 {
        self.cds
    }

    /// Cache lines held by one row.
    pub fn lines_per_row(&self) -> u32 {
        self.row_bytes / self.line_bytes
    }

    /// Rows mapped to each subarray group.
    pub fn rows_per_sag(&self) -> u32 {
        self.rows_per_bank / self.sags
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Total addressable bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.total_banks()) * u64::from(self.rows_per_bank) * u64::from(self.row_bytes)
    }

    /// Bytes sensed by one (partial) activation: the slice of the row owned
    /// by a single column division. The baseline (1 CD) senses the full row.
    ///
    /// ```
    /// # fn main() -> Result<(), fgnvm_types::error::ConfigError> {
    /// use fgnvm_types::geometry::Geometry;
    /// // The paper's Fig. 5 arithmetic: 1 KB row, 8 CDs → 128 B sensed.
    /// let geom = Geometry::builder().sags(8).cds(8).build()?;
    /// assert_eq!(geom.sensed_bytes_per_activation(), 128);
    /// # Ok(())
    /// # }
    /// ```
    pub fn sensed_bytes_per_activation(&self) -> u32 {
        self.row_bytes / self.cds
    }

    /// How many adjacent column divisions one cache-line access occupies.
    ///
    /// When a CD holds at least one full line this is 1; when CDs subdivide
    /// below the line size (e.g. 32 CDs over a 16-line row) a single line
    /// spans `cds / lines_per_row` CDs, all of which must be sensed.
    pub fn cds_per_line(&self) -> u32 {
        (self.cds / self.lines_per_row()).max(1)
    }

    /// Bytes actually sensed to serve one cache-line read:
    /// `cds_per_line × sensed_bytes_per_activation`, never less than a line.
    pub fn sensed_bytes_per_line_access(&self) -> u32 {
        (self.cds_per_line() * self.sensed_bytes_per_activation()).max(self.line_bytes)
    }

    /// The subarray group owning `row`.
    ///
    /// Rows are block-partitioned across SAGs (row `r` lives in SAG
    /// `r / rows_per_sag`), mirroring the per-subarray row decoders of §5.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `row` is out of range.
    pub fn sag_of_row(&self, row: u32) -> u32 {
        debug_assert!(row < self.rows_per_bank, "row {row} out of range");
        row / self.rows_per_sag()
    }

    /// The first column division and the number of adjacent CDs occupied by
    /// an access to cache line `line` of a row.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line` is out of range.
    pub fn cds_of_line(&self, line: u32) -> (u32, u32) {
        let lines = self.lines_per_row();
        debug_assert!(line < lines, "line {line} out of range");
        if self.cds >= lines {
            let width = self.cds / lines;
            (line * width, width)
        } else {
            let lines_per_cd = lines / self.cds;
            (line / lines_per_cd, 1)
        }
    }

    /// Returns a copy of this geometry resized to `sags` × `cds`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the new subdivision violates geometry
    /// constraints.
    pub fn with_subdivision(&self, sags: u32, cds: u32) -> Result<Geometry, ConfigError> {
        GeometryBuilder {
            inner: Geometry { sags, cds, ..*self },
        }
        .build()
    }

    /// Returns a copy with `banks_per_rank` banks (used by the 128-bank
    /// comparison design, which trades subdivision for more, smaller banks).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the bank count is not a positive power of
    /// two or rows cannot be evenly re-partitioned.
    pub fn with_banks(&self, banks_per_rank: u32) -> Result<Geometry, ConfigError> {
        GeometryBuilder {
            inner: Geometry {
                banks_per_rank,
                sags: 1,
                cds: 1,
                ..*self
            },
        }
        .build()
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::builder()
            .build()
            .expect("default geometry is valid")
    }
}

/// Builder for [`Geometry`]; see [`Geometry::builder`].
#[derive(Debug, Clone)]
pub struct GeometryBuilder {
    inner: Geometry,
}

impl GeometryBuilder {
    /// Creates a builder seeded with the paper's Table 2 configuration.
    pub fn new() -> Self {
        GeometryBuilder {
            inner: Geometry {
                channels: 1,
                ranks_per_channel: 1,
                banks_per_rank: 8,
                rows_per_bank: 32_768,
                row_bytes: 1024,
                line_bytes: 64,
                sags: 4,
                cds: 4,
            },
        }
    }

    /// Sets the channel count.
    pub fn channels(mut self, channels: u32) -> Self {
        self.inner.channels = channels;
        self
    }

    /// Sets ranks per channel.
    pub fn ranks_per_channel(mut self, ranks: u32) -> Self {
        self.inner.ranks_per_channel = ranks;
        self
    }

    /// Sets banks per rank.
    pub fn banks_per_rank(mut self, banks: u32) -> Self {
        self.inner.banks_per_rank = banks;
        self
    }

    /// Sets rows per bank.
    pub fn rows_per_bank(mut self, rows: u32) -> Self {
        self.inner.rows_per_bank = rows;
        self
    }

    /// Sets the sensed row size in bytes.
    pub fn row_bytes(mut self, bytes: u32) -> Self {
        self.inner.row_bytes = bytes;
        self
    }

    /// Sets the cache-line size in bytes.
    pub fn line_bytes(mut self, bytes: u32) -> Self {
        self.inner.line_bytes = bytes;
        self
    }

    /// Sets the number of subarray groups.
    pub fn sags(mut self, sags: u32) -> Self {
        self.inner.sags = sags;
        self
    }

    /// Sets the number of column divisions.
    pub fn cds(mut self, cds: u32) -> Self {
        self.inner.cds = cds;
        self
    }

    /// Validates and produces the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any field is zero, not a power of two,
    /// or when the subdivision does not evenly partition rows/lines.
    pub fn build(self) -> Result<Geometry, ConfigError> {
        let g = self.inner;
        let pow2 = |name: &'static str, v: u32| -> Result<(), ConfigError> {
            if v == 0 || !v.is_power_of_two() {
                Err(ConfigError::NotPowerOfTwo {
                    field: name,
                    value: v,
                })
            } else {
                Ok(())
            }
        };
        pow2("channels", g.channels)?;
        pow2("ranks_per_channel", g.ranks_per_channel)?;
        pow2("banks_per_rank", g.banks_per_rank)?;
        pow2("rows_per_bank", g.rows_per_bank)?;
        pow2("row_bytes", g.row_bytes)?;
        pow2("line_bytes", g.line_bytes)?;
        pow2("sags", g.sags)?;
        pow2("cds", g.cds)?;
        if g.line_bytes > g.row_bytes {
            return Err(ConfigError::Invalid {
                field: "line_bytes",
                reason: "cache line larger than row",
            });
        }
        if g.sags > g.rows_per_bank {
            return Err(ConfigError::Invalid {
                field: "sags",
                reason: "more subarray groups than rows",
            });
        }
        let lines = g.row_bytes / g.line_bytes;
        // CDs must evenly partition lines, or lines must evenly span CDs.
        if g.cds <= lines {
            if !lines.is_multiple_of(g.cds) {
                return Err(ConfigError::Invalid {
                    field: "cds",
                    reason: "column divisions do not evenly partition row lines",
                });
            }
        } else if !g.cds.is_multiple_of(lines) {
            return Err(ConfigError::Invalid {
                field: "cds",
                reason: "cache lines do not evenly span column divisions",
            });
        }
        if g.cds > g.row_bytes / 8 {
            return Err(ConfigError::Invalid {
                field: "cds",
                reason: "a column division must hold at least one byte of I/O width",
            });
        }
        Ok(g)
    }
}

impl Default for GeometryBuilder {
    fn default() -> Self {
        GeometryBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table2() {
        let g = Geometry::default();
        assert_eq!(g.banks_per_rank(), 8);
        assert_eq!(g.row_bytes(), 1024);
        assert_eq!(g.lines_per_row(), 16);
        assert_eq!(g.sags(), 4);
        assert_eq!(g.cds(), 4);
    }

    #[test]
    fn sensed_bytes_match_figure5_text() {
        // Paper §6: 1 KB baseline, 512 B for 8×2, 128 B for 8×8, 32 B for 8×32.
        let base = Geometry::builder().sags(1).cds(1).build().unwrap();
        assert_eq!(base.sensed_bytes_per_activation(), 1024);
        for (cds, bytes) in [(2, 512), (8, 128), (32, 32)] {
            let g = Geometry::builder().sags(8).cds(cds).build().unwrap();
            assert_eq!(g.sensed_bytes_per_activation(), bytes, "cds={cds}");
        }
    }

    #[test]
    fn line_access_never_senses_below_line() {
        // 8×32: each CD is 32 B, but a 64 B line occupies 2 CDs.
        let g = Geometry::builder().sags(8).cds(32).build().unwrap();
        assert_eq!(g.cds_per_line(), 2);
        assert_eq!(g.sensed_bytes_per_line_access(), 64);
        // 8×8: one CD covers 2 lines; a line access still senses 128 B.
        let g = Geometry::builder().sags(8).cds(8).build().unwrap();
        assert_eq!(g.cds_per_line(), 1);
        assert_eq!(g.sensed_bytes_per_line_access(), 128);
    }

    #[test]
    fn sag_partitioning_is_block_wise() {
        let g = Geometry::builder()
            .rows_per_bank(64)
            .sags(4)
            .build()
            .unwrap();
        assert_eq!(g.rows_per_sag(), 16);
        assert_eq!(g.sag_of_row(0), 0);
        assert_eq!(g.sag_of_row(15), 0);
        assert_eq!(g.sag_of_row(16), 1);
        assert_eq!(g.sag_of_row(63), 3);
    }

    #[test]
    fn cd_assignment_wide_and_narrow() {
        // 4 CDs over 16 lines: 4 lines per CD.
        let g = Geometry::builder().cds(4).build().unwrap();
        assert_eq!(g.cds_of_line(0), (0, 1));
        assert_eq!(g.cds_of_line(3), (0, 1));
        assert_eq!(g.cds_of_line(4), (1, 1));
        assert_eq!(g.cds_of_line(15), (3, 1));
        // 32 CDs over 16 lines: each line spans 2 CDs.
        let g = Geometry::builder().sags(8).cds(32).build().unwrap();
        assert_eq!(g.cds_of_line(0), (0, 2));
        assert_eq!(g.cds_of_line(1), (2, 2));
        assert_eq!(g.cds_of_line(15), (30, 2));
    }

    #[test]
    fn builder_rejects_non_power_of_two() {
        let err = Geometry::builder().sags(3).build().unwrap_err();
        assert!(matches!(
            err,
            ConfigError::NotPowerOfTwo { field: "sags", .. }
        ));
    }

    #[test]
    fn builder_rejects_line_bigger_than_row() {
        let err = Geometry::builder()
            .row_bytes(64)
            .line_bytes(128)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::Invalid {
                field: "line_bytes",
                ..
            }
        ));
    }

    #[test]
    fn builder_rejects_too_many_sags() {
        let err = Geometry::builder()
            .rows_per_bank(4)
            .sags(8)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Invalid { field: "sags", .. }));
    }

    #[test]
    fn with_subdivision_and_with_banks() {
        let g = Geometry::default();
        let g2 = g.with_subdivision(8, 32).unwrap();
        assert_eq!((g2.sags(), g2.cds()), (8, 32));
        let many = g.with_banks(128).unwrap();
        assert_eq!(many.banks_per_rank(), 128);
        assert_eq!((many.sags(), many.cds()), (1, 1));
    }

    #[test]
    fn capacity_is_product() {
        let g = Geometry::builder()
            .rows_per_bank(1024)
            .banks_per_rank(8)
            .build()
            .unwrap();
        assert_eq!(g.capacity_bytes(), 8 * 1024 * 1024);
    }
}
