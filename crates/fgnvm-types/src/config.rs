//! Timing, energy, and whole-system configuration.
//!
//! Defaults reproduce Table 2 of the paper:
//!
//! > 512-byte row buffer, FRFCFS, 64 write drivers, 32 queue entries,
//! > 4 column divisions, 4 subarray groups, tRCD=25ns, tCAS=95ns, tRAS=0ns,
//! > tRP=0ns, tCCD=4cy, tBURST=4cy, tCWD=7.5ns, tWP=150ns, tWR=7.5ns
//!
//! (The 512 B row buffer is per device; eight ×8 devices per rank make the
//! rank-visible sensed row 1 KB as used by the paper's Fig. 5 arithmetic —
//! "1KB of data must be sensed compared to 512B for 8×2".)

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::geometry::Geometry;
use crate::time::{ns_to_cycles, CycleCount};

/// PCM device timing parameters in physical units.
///
/// Converted once into [`TimingCycles`] at the controller clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Memory-controller clock in MHz (command/address clock).
    pub clock_mhz: f64,
    /// Activate-to-column-command delay (wordline select + bitline settle).
    pub t_rcd_ns: f64,
    /// Column-command-to-data delay (current-mode sense time).
    pub t_cas_ns: f64,
    /// Precharge time. Zero for NVM: reads are non-destructive, nothing to
    /// restore.
    pub t_rp_ns: f64,
    /// Minimum activate-to-precharge. Zero for NVM.
    pub t_ras_ns: f64,
    /// Column-to-column command spacing, in controller cycles.
    pub t_ccd_cycles: u64,
    /// Data burst length on the channel, in controller cycles.
    pub t_burst_cycles: u64,
    /// Column-write-command-to-data delay.
    pub t_cwd_ns: f64,
    /// Cell write (program) time — the dominant PCM cost.
    pub t_wp_ns: f64,
    /// Write recovery after the data burst.
    pub t_wr_ns: f64,
}

impl TimingConfig {
    /// The paper's PCM timings (Table 2) on a 400 MHz controller clock.
    pub fn paper_pcm() -> Self {
        TimingConfig {
            clock_mhz: 400.0,
            t_rcd_ns: 25.0,
            t_cas_ns: 95.0,
            t_rp_ns: 0.0,
            t_ras_ns: 0.0,
            t_ccd_cycles: 4,
            t_burst_cycles: 4,
            t_cwd_ns: 7.5,
            t_wp_ns: 150.0,
            t_wr_ns: 7.5,
        }
    }

    /// Representative multi-level-cell (MLC, 2 bits/cell) PCM timings on
    /// the same controller clock. MLC reads need multi-reference sensing
    /// (~2× SLC read latency) and writes use iterative program-and-verify
    /// (~4× SLC program time) — the standard trade for doubled density.
    /// Values are representative of published MLC PCM characterizations,
    /// not taken from the paper (which evaluates the SLC prototype \[13\]).
    pub fn paper_pcm_mlc() -> Self {
        TimingConfig {
            t_cas_ns: 190.0,
            t_wp_ns: 600.0,
            ..TimingConfig::paper_pcm()
        }
    }

    /// DDR3-1600-like timings on the same 400 MHz controller clock, used
    /// by the DRAM-contrast bank model: tRCD = tCL = tRP = 13.75 ns,
    /// tRAS = 35 ns, tCWD = 10 ns, tWR = 15 ns, and no cell-program time
    /// (tWP = 0; DRAM writes complete with the burst and recovery).
    pub fn ddr3_like() -> Self {
        TimingConfig {
            clock_mhz: 400.0,
            t_rcd_ns: 13.75,
            t_cas_ns: 13.75,
            t_rp_ns: 13.75,
            t_ras_ns: 35.0,
            t_ccd_cycles: 4,
            t_burst_cycles: 4,
            t_cwd_ns: 10.0,
            t_wp_ns: 0.0,
            t_wr_ns: 15.0,
        }
    }

    /// Converts every parameter into controller cycles (rounding up).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the clock is non-positive or any duration
    /// is negative.
    pub fn to_cycles(&self) -> Result<TimingCycles, ConfigError> {
        // NaN must fail too, hence the negated comparison.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.clock_mhz > 0.0) {
            return Err(ConfigError::OutOfRange {
                field: "clock_mhz",
                expected: "a positive frequency",
            });
        }
        for (field, v) in [
            ("t_rcd_ns", self.t_rcd_ns),
            ("t_cas_ns", self.t_cas_ns),
            ("t_rp_ns", self.t_rp_ns),
            ("t_ras_ns", self.t_ras_ns),
            ("t_cwd_ns", self.t_cwd_ns),
            ("t_wp_ns", self.t_wp_ns),
            ("t_wr_ns", self.t_wr_ns),
        ] {
            // NaN must fail too, hence the negated comparison.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(v >= 0.0) {
                return Err(ConfigError::OutOfRange {
                    field,
                    expected: "a non-negative duration",
                });
            }
        }
        Ok(TimingCycles {
            t_rcd: ns_to_cycles(self.t_rcd_ns, self.clock_mhz),
            t_cas: ns_to_cycles(self.t_cas_ns, self.clock_mhz),
            t_rp: ns_to_cycles(self.t_rp_ns, self.clock_mhz),
            t_ras: ns_to_cycles(self.t_ras_ns, self.clock_mhz),
            t_ccd: CycleCount::new(self.t_ccd_cycles),
            t_burst: CycleCount::new(self.t_burst_cycles),
            t_cwd: ns_to_cycles(self.t_cwd_ns, self.clock_mhz),
            t_wp: ns_to_cycles(self.t_wp_ns, self.clock_mhz),
            t_wr: ns_to_cycles(self.t_wr_ns, self.clock_mhz),
        })
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::paper_pcm()
    }
}

/// Device timings resolved to controller cycles. See [`TimingConfig`] for
/// field meanings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct TimingCycles {
    pub t_rcd: CycleCount,
    pub t_cas: CycleCount,
    pub t_rp: CycleCount,
    pub t_ras: CycleCount,
    pub t_ccd: CycleCount,
    pub t_burst: CycleCount,
    pub t_cwd: CycleCount,
    pub t_wp: CycleCount,
    pub t_wr: CycleCount,
}

impl TimingCycles {
    /// Read latency from activate to first data beat: tRCD + tCAS.
    pub fn act_to_data(&self) -> CycleCount {
        self.t_rcd + self.t_cas
    }

    /// Total bank occupancy of one write: tCWD + tBURST + tWP + tWR.
    pub fn write_occupancy(&self) -> CycleCount {
        self.t_cwd + self.t_burst + self.t_wp + self.t_wr
    }
}

/// Per-bit energy constants (§6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Energy to sense one bit during activation (pJ). Paper: 2 pJ.
    pub read_pj_per_bit: f64,
    /// Energy to program one bit (pJ). Paper: 16 pJ.
    pub write_pj_per_bit: f64,
    /// Background energy constant (pJ per bit of open-bank state per
    /// activation epoch). Paper: 0.08 pJ; the paper gives no time base, so
    /// the simulator charges it per open-row bit per activation window —
    /// calibration documented in `fgnvm-mem/src/energy.rs`.
    pub background_pj_per_bit: f64,
}

impl EnergyConfig {
    /// The paper's energy constants.
    pub fn paper_pcm() -> Self {
        EnergyConfig {
            read_pj_per_bit: 2.0,
            write_pj_per_bit: 16.0,
            background_pj_per_bit: 0.08,
        }
    }

    /// Representative MLC PCM energy: iterative programming roughly
    /// doubles the write energy per bit; sensing costs a little more for
    /// the extra reference comparisons.
    pub fn paper_pcm_mlc() -> Self {
        EnergyConfig {
            read_pj_per_bit: 2.5,
            write_pj_per_bit: 32.0,
            background_pj_per_bit: 0.08,
        }
    }

    /// Validates that every constant is non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any constant is negative or NaN.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, v) in [
            ("read_pj_per_bit", self.read_pj_per_bit),
            ("write_pj_per_bit", self.write_pj_per_bit),
            ("background_pj_per_bit", self.background_pj_per_bit),
        ] {
            // NaN must fail too, hence the negated comparison.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(v >= 0.0) {
                return Err(ConfigError::OutOfRange {
                    field,
                    expected: "a non-negative energy",
                });
            }
        }
        Ok(())
    }
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig::paper_pcm()
    }
}

/// Which bank architecture the memory system instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankModel {
    /// State-of-the-art NVM bank (§3.1): one open row per bank, full-row
    /// sensing, writes occupy the whole bank.
    Baseline,
    /// Conventional DRAM bank: destructive reads (tRAS restore + tRP
    /// precharge) and periodic refresh windows. Used for the paper's
    /// motivating NVM-vs-DRAM contrast; requires DRAM timings
    /// ([`TimingConfig::ddr3_like`]) and a 1×1 geometry.
    Dram,
    /// FgNVM bank (§3.2): two-dimensional subdivision with Partial-Activation,
    /// Multi-Activation, and Backgrounded Writes. Individual modes can be
    /// disabled for ablation studies.
    Fgnvm {
        /// Allow sensing only the requested column division(s).
        partial_activation: bool,
        /// Allow concurrent accesses on distinct (SAG, CD) pairs.
        multi_activation: bool,
        /// Allow reads to proceed during writes in other (SAG, CD) pairs.
        background_writes: bool,
    },
}

impl BankModel {
    /// FgNVM with all three access modes enabled.
    pub const fn fgnvm() -> Self {
        BankModel::Fgnvm {
            partial_activation: true,
            multi_activation: true,
            background_writes: true,
        }
    }

    /// True for any FgNVM variant.
    pub const fn is_fgnvm(&self) -> bool {
        matches!(self, BankModel::Fgnvm { .. })
    }
}

impl Default for BankModel {
    fn default() -> Self {
        BankModel::fgnvm()
    }
}

/// Request scheduling policy at the controller.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Strict arrival order.
    Fcfs,
    /// First-ready, first-come-first-serve (Rixner et al.): row hits first,
    /// then oldest.
    #[default]
    Frfcfs,
    /// FRFCFS augmented with tile-level-parallelism awareness: among equally
    /// ready requests, prefer those whose (SAG, CD) resources are free and
    /// schedule reads under backgrounded writes.
    FrfcfsTlp,
    /// FRFCFS with a row-hit streak cap (BLISS-style): after four
    /// consecutive row-hit grants the oldest issuable request goes first,
    /// bounding how long hit streams can starve row-miss requests.
    FrfcfsCap,
    /// FRFCFS with tenant fairness: among issuable requests, the tenant
    /// with the least service so far (granted commands) goes first; ties
    /// fall back to row-hit-first then oldest within the chosen tenant.
    /// Write drain applies the same least-service pick so one tenant's
    /// write burst cannot monopolize the drain window.
    FrfcfsQos,
}

/// Row-buffer management policy for DRAM banks.
///
/// Open-page leaves the activated row latched, betting the next access
/// hits it; closed-page auto-precharges after every access, hiding tRP
/// off the critical path at the cost of all row hits. The choice is a
/// knob *only for DRAM*: the paper's PCM has tRP = tRAS = 0 and
/// non-destructive reads, so closing a row early buys nothing — one more
/// controller complication the NVM substrate dissolves (see the
/// `fgnvm-repro -- policy` study).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowPolicy {
    /// Leave the row open after each access (row hits possible).
    #[default]
    Open,
    /// Auto-precharge after each access (every access re-activates, but
    /// precharge never sits on the critical path).
    Closed,
}

/// Device fault model and write-verify/ECC parameters.
///
/// Models the three failure mechanisms of PCM-class cells: transient read
/// disturbances (a raw bit error rate applied per sensed line), stochastic
/// write failures caught by the device's write-verify step (each failed
/// verify re-occupies the tile for another `tWP` programming pulse), and
/// permanent stuck-at faults that appear once a row's write count crosses
/// an endurance threshold. The controller layers ECC on top: correctable
/// errors cost decode latency, uncorrectable ones trigger bad-row
/// remapping to spare rows.
///
/// The default configuration disables every mechanism; a disabled model is
/// bit-identical in behaviour and statistics to a build without the
/// reliability layer (the zero-cost invariant, enforced by a property
/// test).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityConfig {
    /// Master switch; when false every other knob is ignored.
    pub enabled: bool,
    /// Seed for the deterministic fault streams (decorrelated per bank).
    pub fault_seed: u64,
    /// Raw bit error rate: expected transient bit flips per sensed bit.
    pub rber: f64,
    /// Probability that one programming pulse fails its verify step.
    pub write_fail_prob: f64,
    /// Write-verify retry budget per write (0 = single attempt, no retry).
    pub max_write_retries: u32,
    /// Bit errors per line the controller's ECC can correct.
    pub ecc_correctable_bits: u32,
    /// Decode latency added to a read that needed correction (cycles).
    pub ecc_decode_penalty_cycles: u64,
    /// Per-row write count after which reads see a stuck-at fault
    /// (0 disables wear-induced faults).
    pub wear_stuck_threshold: u64,
    /// Spare rows reserved at the top of each bank for bad-row remapping
    /// (stage 1 of the wear-out escalation ladder).
    pub spare_rows_per_bank: u32,
    /// Rows retired *without* a spare (stage 2) a bank tolerates before it
    /// drops to read-only mode (stage 3). 0 disables read-only escalation.
    pub read_only_row_threshold: u32,
    /// Read-only banks, device-wide, at which the system reports
    /// `SimError::CapacityExhausted` (stage 4). 0 disables the final stage.
    pub capacity_exhausted_banks: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            enabled: false,
            fault_seed: 0,
            rber: 0.0,
            write_fail_prob: 0.0,
            max_write_retries: 0,
            ecc_correctable_bits: 0,
            ecc_decode_penalty_cycles: 0,
            wear_stuck_threshold: 0,
            spare_rows_per_bank: 64,
            read_only_row_threshold: 0,
            capacity_exhausted_banks: 0,
        }
    }
}

impl ReliabilityConfig {
    /// Validates probabilities and rates.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if a probability is outside `[0, 1]` or NaN.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, v) in [
            ("rber", self.rber),
            ("write_fail_prob", self.write_fail_prob),
        ] {
            // `contains` is false for NaN, so NaN fails validation too.
            if !(0.0..=1.0).contains(&v) {
                return Err(ConfigError::OutOfRange {
                    field,
                    expected: "a probability in [0, 1]",
                });
            }
        }
        Ok(())
    }
}

/// Complete configuration of one memory system instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Physical organization.
    pub geometry: Geometry,
    /// Device timings.
    pub timing: TimingConfig,
    /// Energy constants.
    pub energy: EnergyConfig,
    /// Bank architecture.
    pub bank_model: BankModel,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Read/transaction queue entries per channel (Table 2: 32).
    pub queue_entries: usize,
    /// Write queue entries per channel (Table 2: 64 write drivers).
    pub write_queue_entries: usize,
    /// Commands the controller may issue per cycle (1 = standard command
    /// bus; >1 models the paper's Multi-Issue variant).
    pub commands_per_cycle: u32,
    /// Concurrent data bursts the channel can carry (1 = standard bus; >1
    /// models Multi-Issue's "larger data bus").
    pub data_bus_width: u32,
    /// Write pausing (Zhou et al., the paper's reference \[12\]): an
    /// in-flight PCM write may be paused to service a read that would
    /// otherwise wait out the full tWP, paying a small pause/resume
    /// overhead and delaying the write's completion.
    pub write_pausing: bool,
    /// Row-buffer management policy (DRAM only; see [`RowPolicy`]).
    pub row_policy: RowPolicy,
    /// Device fault model, write-verify, and ECC parameters.
    pub reliability: ReliabilityConfig,
}

impl SystemConfig {
    /// Baseline NVM system: one undivided bank FSM per bank, FRFCFS.
    pub fn baseline() -> Self {
        SystemConfig {
            geometry: Geometry::builder()
                .sags(1)
                .cds(1)
                .build()
                .expect("baseline geometry is valid"),
            timing: TimingConfig::paper_pcm(),
            energy: EnergyConfig::paper_pcm(),
            bank_model: BankModel::Baseline,
            scheduler: SchedulerKind::Frfcfs,
            queue_entries: 32,
            write_queue_entries: 64,
            commands_per_cycle: 1,
            data_bus_width: 1,
            write_pausing: false,
            row_policy: RowPolicy::Open,
            reliability: ReliabilityConfig::default(),
        }
    }

    /// FgNVM system with `sags` × `cds` subdivision and the TLP-aware
    /// scheduler, all access modes enabled.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the subdivision is invalid for the default
    /// geometry.
    pub fn fgnvm(sags: u32, cds: u32) -> Result<Self, ConfigError> {
        Ok(SystemConfig {
            geometry: Geometry::builder().sags(sags).cds(cds).build()?,
            bank_model: BankModel::fgnvm(),
            scheduler: SchedulerKind::FrfcfsTlp,
            ..SystemConfig::baseline()
        })
    }

    /// The paper's Multi-Issue FgNVM variant: `width` commands per cycle and
    /// `width` concurrent data bursts.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the subdivision or width is invalid.
    pub fn fgnvm_multi_issue(sags: u32, cds: u32, width: u32) -> Result<Self, ConfigError> {
        if width == 0 {
            return Err(ConfigError::OutOfRange {
                field: "commands_per_cycle",
                expected: "at least 1",
            });
        }
        Ok(SystemConfig {
            commands_per_cycle: width,
            data_bus_width: width,
            ..SystemConfig::fgnvm(sags, cds)?
        })
    }

    /// Converts this configuration to MLC cells (see
    /// [`TimingConfig::paper_pcm_mlc`]): slower reads, much slower writes,
    /// higher write energy. Geometry is unchanged — callers wanting the
    /// density benefit double `rows_per_bank` themselves.
    pub fn with_mlc_cells(self) -> Self {
        SystemConfig {
            timing: TimingConfig::paper_pcm_mlc(),
            energy: EnergyConfig::paper_pcm_mlc(),
            ..self
        }
    }

    /// FgNVM with write pausing enabled on top of the three access modes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the subdivision is invalid.
    pub fn fgnvm_with_pausing(sags: u32, cds: u32) -> Result<Self, ConfigError> {
        Ok(SystemConfig {
            write_pausing: true,
            ..SystemConfig::fgnvm(sags, cds)?
        })
    }

    /// Returns this configuration with the given reliability model attached.
    pub fn with_reliability(self, reliability: ReliabilityConfig) -> Self {
        SystemConfig {
            reliability,
            ..self
        }
    }

    /// A conventional DRAM system with DDR3-like timings and refresh,
    /// for the paper's motivating technology contrast. Note the energy
    /// constants remain the PCM ones — DRAM energy is not comparable and
    /// should not be read off this configuration.
    pub fn dram() -> Self {
        SystemConfig {
            timing: TimingConfig::ddr3_like(),
            bank_model: BankModel::Dram,
            ..SystemConfig::baseline()
        }
    }

    /// The paper's 128-banks-per-rank comparison design: many small
    /// independent baseline banks, no subdivision.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `banks` is not a positive power of two.
    pub fn many_banks(banks: u32) -> Result<Self, ConfigError> {
        let base = SystemConfig::baseline();
        Ok(SystemConfig {
            geometry: base.geometry.with_banks(banks)?,
            ..base
        })
    }

    /// The size-matched many-banks comparison of Figure 4: each bank is
    /// "sized to be the same as any (SAG, CD) pair" of an `sags × cds`
    /// FgNVM, so the bank count multiplies by `sags × cds` while rows and
    /// row bytes shrink accordingly. Total capacity and address space are
    /// unchanged, making IPC directly comparable.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the shrunken bank geometry is invalid
    /// (e.g. the per-CD row slice would drop below one cache line).
    pub fn many_banks_matching(sags: u32, cds: u32) -> Result<Self, ConfigError> {
        let base = SystemConfig::baseline();
        let g = base.geometry;
        let geometry = Geometry::builder()
            .channels(g.channels())
            .ranks_per_channel(g.ranks_per_channel())
            .banks_per_rank(g.banks_per_rank() * sags * cds)
            .rows_per_bank(g.rows_per_bank() / sags.max(1))
            .row_bytes(g.row_bytes() / cds.max(1))
            .line_bytes(g.line_bytes())
            .sags(1)
            .cds(1)
            .build()?;
        Ok(SystemConfig { geometry, ..base })
    }

    /// Validates the complete configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in timing, energy, queue
    /// sizing, or bank-model/geometry agreement.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.timing.to_cycles()?;
        self.energy.validate()?;
        self.reliability.validate()?;
        if self.queue_entries == 0 {
            return Err(ConfigError::OutOfRange {
                field: "queue_entries",
                expected: "at least 1",
            });
        }
        if self.write_queue_entries == 0 {
            return Err(ConfigError::OutOfRange {
                field: "write_queue_entries",
                expected: "at least 1",
            });
        }
        if self.commands_per_cycle == 0 {
            return Err(ConfigError::OutOfRange {
                field: "commands_per_cycle",
                expected: "at least 1",
            });
        }
        if self.data_bus_width == 0 {
            return Err(ConfigError::OutOfRange {
                field: "data_bus_width",
                expected: "at least 1",
            });
        }
        if matches!(self.bank_model, BankModel::Baseline | BankModel::Dram)
            && (self.geometry.sags() != 1 || self.geometry.cds() != 1)
        {
            return Err(ConfigError::Invalid {
                field: "bank_model",
                reason: "undivided (baseline/DRAM) banks must use a 1×1 geometry",
            });
        }
        if self.row_policy == RowPolicy::Closed && self.bank_model != BankModel::Dram {
            return Err(ConfigError::Invalid {
                field: "row_policy",
                reason: "closed-page is a DRAM knob; NVM has no precharge to hide",
            });
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::fgnvm(4, 4).expect("default fgnvm config is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timings_convert_at_400mhz() {
        let t = TimingConfig::paper_pcm().to_cycles().unwrap();
        assert_eq!(t.t_rcd.raw(), 10); // 25 ns / 2.5 ns
        assert_eq!(t.t_cas.raw(), 38); // 95 ns / 2.5 ns
        assert_eq!(t.t_rp.raw(), 0);
        assert_eq!(t.t_ras.raw(), 0);
        assert_eq!(t.t_ccd.raw(), 4);
        assert_eq!(t.t_burst.raw(), 4);
        assert_eq!(t.t_cwd.raw(), 3); // 7.5 ns rounds up
        assert_eq!(t.t_wp.raw(), 60); // 150 ns
        assert_eq!(t.t_wr.raw(), 3);
    }

    #[test]
    fn derived_latencies() {
        let t = TimingConfig::paper_pcm().to_cycles().unwrap();
        assert_eq!(t.act_to_data().raw(), 48);
        assert_eq!(t.write_occupancy().raw(), 70);
    }

    #[test]
    fn negative_timing_rejected() {
        let mut cfg = TimingConfig::paper_pcm();
        cfg.t_wp_ns = -1.0;
        assert!(cfg.to_cycles().is_err());
    }

    #[test]
    fn energy_validation() {
        assert!(EnergyConfig::paper_pcm().validate().is_ok());
        let bad = EnergyConfig {
            read_pj_per_bit: -2.0,
            ..EnergyConfig::paper_pcm()
        };
        assert!(bad.validate().is_err());
        let nan = EnergyConfig {
            write_pj_per_bit: f64::NAN,
            ..EnergyConfig::paper_pcm()
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn mlc_presets_are_slower_and_hungrier() {
        let slc = TimingConfig::paper_pcm().to_cycles().unwrap();
        let mlc = TimingConfig::paper_pcm_mlc().to_cycles().unwrap();
        assert!(mlc.t_cas > slc.t_cas);
        assert!(mlc.t_wp.raw() >= slc.t_wp.raw() * 4);
        let cfg = SystemConfig::fgnvm(8, 8).unwrap().with_mlc_cells();
        cfg.validate().unwrap();
        assert!(cfg.energy.write_pj_per_bit > EnergyConfig::paper_pcm().write_pj_per_bit);
    }

    #[test]
    fn ddr3_timings_convert() {
        let t = TimingConfig::ddr3_like().to_cycles().unwrap();
        assert_eq!(t.t_rcd.raw(), 6);
        assert_eq!(t.t_cas.raw(), 6);
        assert_eq!(t.t_rp.raw(), 6);
        assert_eq!(t.t_ras.raw(), 14);
        assert_eq!(t.t_wp.raw(), 0);
    }

    #[test]
    fn dram_preset_validates_and_requires_1x1() {
        let cfg = SystemConfig::dram();
        cfg.validate().unwrap();
        let mut bad = cfg;
        bad.geometry = Geometry::builder().sags(4).cds(4).build().unwrap();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn presets_validate() {
        SystemConfig::baseline().validate().unwrap();
        SystemConfig::fgnvm(8, 2).unwrap().validate().unwrap();
        SystemConfig::fgnvm_multi_issue(8, 2, 2)
            .unwrap()
            .validate()
            .unwrap();
        SystemConfig::many_banks(128).unwrap().validate().unwrap();
        SystemConfig::default().validate().unwrap();
    }

    #[test]
    fn many_banks_matching_preserves_capacity() {
        let base = SystemConfig::baseline();
        let many = SystemConfig::many_banks_matching(8, 2).unwrap();
        assert_eq!(many.geometry.banks_per_rank(), 128);
        assert_eq!(
            many.geometry.capacity_bytes(),
            base.geometry.capacity_bytes()
        );
        assert_eq!(many.geometry.row_bytes(), 512);
        assert_eq!(many.geometry.rows_per_bank(), 4096);
        many.validate().unwrap();
        // 8×32 would shrink the row below one line.
        assert!(SystemConfig::many_banks_matching(8, 32).is_err());
    }

    #[test]
    fn many_banks_preset_shape() {
        let cfg = SystemConfig::many_banks(128).unwrap();
        assert_eq!(cfg.geometry.banks_per_rank(), 128);
        assert_eq!(cfg.bank_model, BankModel::Baseline);
        assert_eq!((cfg.geometry.sags(), cfg.geometry.cds()), (1, 1));
    }

    #[test]
    fn baseline_with_subdivided_geometry_rejected() {
        let mut cfg = SystemConfig::fgnvm(4, 4).unwrap();
        cfg.bank_model = BankModel::Baseline;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn multi_issue_zero_width_rejected() {
        assert!(SystemConfig::fgnvm_multi_issue(8, 2, 0).is_err());
    }

    #[test]
    fn ablation_flags_accessible() {
        let m = BankModel::fgnvm();
        assert!(m.is_fgnvm());
        if let BankModel::Fgnvm {
            partial_activation,
            multi_activation,
            background_writes,
        } = m
        {
            assert!(partial_activation && multi_activation && background_writes);
        }
        assert!(!BankModel::Baseline.is_fgnvm());
    }
}
