//! Combining and perturbing traces for what-if studies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fgnvm_cpu::{Trace, TraceRecord};
use fgnvm_types::request::Op;

/// Interleaves several traces round-robin into one, preserving each
/// source's internal order. Useful for modeling multi-programmed or
/// multi-threaded pressure on a single channel.
pub fn interleave(name: impl Into<String>, traces: &[Trace]) -> Trace {
    let total: usize = traces.iter().map(Trace::len).sum();
    let mut records: Vec<TraceRecord> = Vec::with_capacity(total);
    let mut cursors = vec![0usize; traces.len()];
    let mut remaining = total;
    while remaining > 0 {
        for (trace, cursor) in traces.iter().zip(cursors.iter_mut()) {
            if *cursor < trace.len() {
                records.push(trace.records()[*cursor]);
                *cursor += 1;
                remaining -= 1;
            }
        }
    }
    Trace::new(name, records)
}

/// Concatenates traces back to back (phase behaviour).
pub fn concat(name: impl Into<String>, traces: &[Trace]) -> Trace {
    let records = traces
        .iter()
        .flat_map(|t| t.records().iter().copied())
        .collect();
    Trace::new(name, records)
}

/// Rewrites the trace's operations so that approximately `fraction` of
/// them are writes (deterministic for a given `seed`); addresses, gaps,
/// and dependence flags are preserved. Useful for write-intensity what-if
/// studies on an otherwise fixed access pattern.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn with_write_fraction(trace: &Trace, fraction: f64, seed: u64) -> Trace {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let records = trace
        .records()
        .iter()
        .map(|r| {
            let is_write = rng.random_bool(fraction);
            TraceRecord {
                op: if is_write { Op::Write } else { Op::Read },
                dependent: r.dependent && !is_write,
                ..*r
            }
        })
        .collect();
    Trace::new(
        format!("{}-w{:.0}", trace.name(), fraction * 100.0),
        records,
    )
}

/// Scales every record's non-memory instruction gap by `factor` (rounding
/// to nearest), changing the workload's memory intensity without touching
/// its access pattern.
///
/// # Panics
///
/// Panics if `factor` is negative or not finite.
pub fn scale_gaps(trace: &Trace, factor: f64) -> Trace {
    assert!(
        factor.is_finite() && factor >= 0.0,
        "factor must be a non-negative number"
    );
    let records = trace
        .records()
        .iter()
        .map(|r| TraceRecord {
            gap: (f64::from(r.gap) * factor).round() as u32,
            ..*r
        })
        .collect();
    Trace::new(format!("{}-x{factor:.2}", trace.name()), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_types::address::PhysAddr;

    fn trace(name: &str, addrs: &[u64]) -> Trace {
        Trace::new(
            name,
            addrs
                .iter()
                .map(|&a| TraceRecord::read(0, PhysAddr::new(a)))
                .collect(),
        )
    }

    #[test]
    fn interleave_round_robins() {
        let a = trace("a", &[0, 64, 128]);
        let b = trace("b", &[1024]);
        let mixed = interleave("mix", &[a, b]);
        let addrs: Vec<u64> = mixed.records().iter().map(|r| r.addr.raw()).collect();
        assert_eq!(addrs, vec![0, 1024, 64, 128]);
    }

    #[test]
    fn concat_preserves_order() {
        let a = trace("a", &[0, 64]);
        let b = trace("b", &[1024]);
        let joined = concat("phases", &[a, b]);
        let addrs: Vec<u64> = joined.records().iter().map(|r| r.addr.raw()).collect();
        assert_eq!(addrs, vec![0, 64, 1024]);
    }

    #[test]
    fn write_fraction_rewrite() {
        let t = trace("a", &(0..500u64).map(|i| i * 64).collect::<Vec<_>>());
        let rewritten = with_write_fraction(&t, 0.4, 9);
        assert_eq!(rewritten.len(), t.len());
        assert!((rewritten.write_fraction() - 0.4).abs() < 0.08);
        // Addresses preserved in order.
        assert!(rewritten
            .records()
            .iter()
            .zip(t.records())
            .all(|(a, b)| a.addr == b.addr && a.gap == b.gap));
        // Deterministic.
        assert_eq!(with_write_fraction(&t, 0.4, 9), rewritten);
    }

    #[test]
    fn gap_scaling_changes_mpki() {
        let t = Trace::new(
            "g",
            (0..100u64)
                .map(|i| TraceRecord::read(40, PhysAddr::new(i * 64)))
                .collect(),
        );
        let denser = scale_gaps(&t, 0.5);
        let sparser = scale_gaps(&t, 2.0);
        assert!(denser.mpki() > t.mpki());
        assert!(sparser.mpki() < t.mpki());
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn bad_fraction_rejected() {
        let t = trace("a", &[0]);
        let _ = with_write_fraction(&t, 1.5, 0);
    }

    #[test]
    fn empty_inputs() {
        assert!(interleave("m", &[]).is_empty());
        assert!(concat("c", &[trace("a", &[])]).is_empty());
    }
}
