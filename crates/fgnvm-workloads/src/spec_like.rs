//! Synthetic stand-ins for the paper's SPEC CPU2006 workloads.
//!
//! The paper evaluates Simpoint slices of the memory-intensive SPEC2006
//! benchmarks (last-level-cache MPKI ≥ 10). Those traces are proprietary,
//! so each benchmark is replaced by a parameterized generator named after
//! it — `mcf_like`, `lbm_like`, … — whose *memory characteristics* (miss
//! intensity, write fraction, row-buffer locality, memory-level
//! parallelism, and pointer-chasing dependence) follow the published
//! behaviour of the original. Relative results across memory designs
//! depend on exactly these characteristics, which is what makes the
//! substitution sound for reproducing the paper's Figures 4 and 5; see
//! DESIGN.md for the substitution rationale.

use rand::Rng;
use serde::{Deserialize, Serialize};

use fgnvm_cpu::Trace;
use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::Op;

use crate::primitives::PatternBuilder;

/// How the OS maps a workload's logical pages onto physical rows — the
/// placement decides which subarray groups a footprint can exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Logical rows map to physical rows directly: a small footprint sits
    /// entirely inside the first subarray group(s) — the TLP worst case.
    Identity,
    /// Odd-multiplier hash over the whole bank (the default): models a
    /// buddy-allocator's effectively random placement.
    Scattered,
    /// SAG-striped coloring: consecutive logical rows round-robin across
    /// `sags` subarray groups — an OS that knows the bank geometry can
    /// guarantee maximal tile-level parallelism for any footprint.
    SagStriped {
        /// Subarray groups of the target design.
        sags: u32,
    },
}

/// Memory-behaviour parameters of one synthetic benchmark.
///
/// ```
/// use fgnvm_types::Geometry;
/// use fgnvm_workloads::profile;
///
/// let lbm = profile("lbm_like").expect("known benchmark");
/// let trace = lbm.generate(Geometry::default(), 42, 5000);
/// // The generated trace matches the profile's parameters.
/// assert!((trace.write_fraction() - lbm.write_fraction).abs() < 0.05);
/// assert!((trace.mpki() - lbm.mpki).abs() / lbm.mpki < 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Benchmark-like name (e.g. `"mcf_like"`).
    pub name: &'static str,
    /// Target LLC misses per kilo-instruction (paper selects ≥ 10).
    pub mpki: f64,
    /// Fraction of memory operations that are writebacks.
    pub write_fraction: f64,
    /// Probability that an access continues sequentially within the
    /// current row (row-buffer locality).
    pub row_locality: f64,
    /// Concurrent access streams (spatial memory-level parallelism).
    pub streams: u32,
    /// Fraction of reads that depend on the previous load (pointer
    /// chasing; suppresses MLP).
    pub dependent_fraction: f64,
    /// Rows touched per bank (footprint; small = hot working set).
    pub footprint_rows: u32,
}

impl Profile {
    /// Returns this profile with a different miss intensity.
    pub fn with_mpki(mut self, mpki: f64) -> Self {
        self.mpki = mpki;
        self
    }

    /// Returns this profile with a different write fraction.
    pub fn with_write_fraction(mut self, write_fraction: f64) -> Self {
        self.write_fraction = write_fraction;
        self
    }

    /// Returns this profile with a different row-buffer locality.
    pub fn with_row_locality(mut self, row_locality: f64) -> Self {
        self.row_locality = row_locality;
        self
    }

    /// Returns this profile with a different stream count.
    pub fn with_streams(mut self, streams: u32) -> Self {
        self.streams = streams;
        self
    }

    /// Mean non-memory instruction gap between misses implied by the MPKI.
    pub fn mean_gap(&self) -> f64 {
        (1000.0 / self.mpki - 1.0).max(0.0)
    }

    /// Generates `ops` memory operations over `geometry` with a
    /// deterministic `seed`, using the default [`PagePolicy::Scattered`]
    /// placement.
    pub fn generate(&self, geometry: Geometry, seed: u64, ops: usize) -> Trace {
        self.generate_with_policy(geometry, PagePolicy::Scattered, seed, ops)
    }

    /// Generates `ops` memory operations with an explicit page-placement
    /// policy (see [`PagePolicy`]).
    pub fn generate_with_policy(
        &self,
        geometry: Geometry,
        policy: PagePolicy,
        seed: u64,
        ops: usize,
    ) -> Trace {
        let mut builder = PatternBuilder::new(geometry, seed ^ fxhash(self.name));
        let banks = geometry.banks_per_rank();
        let lines = geometry.lines_per_row();
        let footprint = self.footprint_rows.min(geometry.rows_per_bank());
        let rows_total = geometry.rows_per_bank();
        let rows_mask = rows_total - 1;
        let scatter = move |row: u32| -> u32 {
            match policy {
                PagePolicy::Identity => row & rows_mask,
                PagePolicy::Scattered => row.wrapping_mul(0x9E37_79B1) & rows_mask,
                PagePolicy::SagStriped { sags } => {
                    let sags = sags.max(1).min(rows_total);
                    let rows_per_sag = rows_total / sags;
                    // Round-robin across SAGs, walking rows within each.
                    let sag = row % sags;
                    let within = (row / sags) % rows_per_sag;
                    sag * rows_per_sag + within
                }
            }
        };
        // Per-stream cursors: (bank, row, line).
        let mut cursors: Vec<(u32, u32, u32)> = (0..self.streams)
            .map(|s| (s % banks, (s * 37) % footprint, 0))
            .collect();
        let mean_gap = self.mean_gap();
        let mut records = Vec::with_capacity(ops);
        for i in 0..ops {
            let s = (i as u32 % self.streams) as usize;
            let rng = builder.rng();
            // Jitter the gap ±50 % around the MPKI-implied mean.
            let gap = (mean_gap * rng.random_range(0.5..1.5)).round() as u32;
            let sequential = rng.random_bool(self.row_locality);
            let is_write = rng.random_bool(self.write_fraction);
            let dependent = !is_write && rng.random_bool(self.dependent_fraction);
            let (bank, row, line) = &mut cursors[s];
            if sequential {
                *line += 1;
                if *line >= lines {
                    *line = 0;
                    *row = (*row + 1) % footprint;
                }
            } else {
                *bank = rng.random_range(0..banks);
                *row = rng.random_range(0..footprint);
                *line = rng.random_range(0..lines);
            }
            let op = if is_write { Op::Write } else { Op::Read };
            records.push(builder.record(op, *bank, scatter(*row), *line, gap, dependent));
        }
        Trace::new(self.name, records)
    }
}

/// Tiny deterministic string hash to decorrelate per-profile seeds.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// The twelve memory-intensive SPEC2006-like profiles used throughout the
/// reproduction (MPKI ≥ 10, mirroring the paper's selection criterion).
pub fn all_profiles() -> Vec<Profile> {
    vec![
        // Pointer-chasing graph workload: extreme MPKI, little locality,
        // limited (but non-zero) MLP from independent chains.
        Profile {
            name: "mcf_like",
            mpki: 90.0,
            write_fraction: 0.22,
            row_locality: 0.10,
            streams: 4,
            dependent_fraction: 0.45,
            footprint_rows: 8192,
        },
        // Fluid dynamics: streaming, write-heavy, many concurrent arrays.
        Profile {
            name: "lbm_like",
            mpki: 45.0,
            write_fraction: 0.45,
            row_locality: 0.70,
            streams: 12,
            dependent_fraction: 0.0,
            footprint_rows: 16384,
        },
        // Lattice QCD: large strided sweeps, moderate locality.
        Profile {
            name: "milc_like",
            mpki: 35.0,
            write_fraction: 0.30,
            row_locality: 0.30,
            streams: 8,
            dependent_fraction: 0.05,
            footprint_rows: 16384,
        },
        // Quantum simulation: almost perfectly sequential streams.
        Profile {
            name: "libquantum_like",
            mpki: 35.0,
            write_fraction: 0.25,
            row_locality: 0.90,
            streams: 2,
            dependent_fraction: 0.0,
            footprint_rows: 8192,
        },
        // Discrete-event simulation: scattered heap traffic.
        Profile {
            name: "omnetpp_like",
            mpki: 25.0,
            write_fraction: 0.30,
            row_locality: 0.20,
            streams: 6,
            dependent_fraction: 0.25,
            footprint_rows: 8192,
        },
        // LP solver: sparse matrix sweeps.
        Profile {
            name: "soplex_like",
            mpki: 30.0,
            write_fraction: 0.20,
            row_locality: 0.40,
            streams: 6,
            dependent_fraction: 0.10,
            footprint_rows: 8192,
        },
        // FDTD solver: multi-array streaming.
        Profile {
            name: "gemsfdtd_like",
            mpki: 25.0,
            write_fraction: 0.30,
            row_locality: 0.60,
            streams: 8,
            dependent_fraction: 0.0,
            footprint_rows: 16384,
        },
        // CFD: streaming with several concurrent arrays.
        Profile {
            name: "leslie3d_like",
            mpki: 22.0,
            write_fraction: 0.35,
            row_locality: 0.60,
            streams: 8,
            dependent_fraction: 0.0,
            footprint_rows: 16384,
        },
        // Speech recognition: read-dominated scans.
        Profile {
            name: "sphinx3_like",
            mpki: 15.0,
            write_fraction: 0.10,
            row_locality: 0.50,
            streams: 4,
            dependent_fraction: 0.05,
            footprint_rows: 8192,
        },
        // Path-finding: pointer-heavy, small footprint.
        Profile {
            name: "astar_like",
            mpki: 12.0,
            write_fraction: 0.25,
            row_locality: 0.25,
            streams: 3,
            dependent_fraction: 0.35,
            footprint_rows: 4096,
        },
        // Spectral CFD: wide streaming.
        Profile {
            name: "bwaves_like",
            mpki: 28.0,
            write_fraction: 0.30,
            row_locality: 0.75,
            streams: 10,
            dependent_fraction: 0.0,
            footprint_rows: 16384,
        },
        // Magnetohydrodynamics: blocked stencil sweeps.
        Profile {
            name: "zeusmp_like",
            mpki: 15.0,
            write_fraction: 0.30,
            row_locality: 0.50,
            streams: 6,
            dependent_fraction: 0.05,
            footprint_rows: 16384,
        },
    ]
}

/// Looks up a profile by its `name` field.
pub fn profile(name: &str) -> Option<Profile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_profiles_all_memory_intensive() {
        let profiles = all_profiles();
        assert_eq!(profiles.len(), 12);
        for p in &profiles {
            assert!(p.mpki >= 10.0, "{} below the paper's MPKI cut", p.name);
            assert!(p.streams >= 1);
            assert!((0.0..=1.0).contains(&p.write_fraction));
        }
    }

    #[test]
    fn generated_trace_matches_mpki_roughly() {
        let p = profile("lbm_like").unwrap();
        let trace = p.generate(Geometry::default(), 1, 4000);
        let mpki = trace.mpki();
        assert!(
            (mpki - p.mpki).abs() / p.mpki < 0.15,
            "{}: generated {mpki:.1} vs target {}",
            p.name,
            p.mpki
        );
    }

    #[test]
    fn generated_write_fraction_roughly_matches() {
        let p = profile("lbm_like").unwrap();
        let trace = p.generate(Geometry::default(), 1, 4000);
        assert!((trace.write_fraction() - p.write_fraction).abs() < 0.05);
    }

    #[test]
    fn dependence_matches_profile() {
        let chase = profile("mcf_like")
            .unwrap()
            .generate(Geometry::default(), 1, 2000);
        let stream = profile("libquantum_like")
            .unwrap()
            .generate(Geometry::default(), 1, 2000);
        let chase_dep =
            chase.records().iter().filter(|r| r.dependent).count() as f64 / chase.len() as f64;
        let stream_dep = stream.records().iter().filter(|r| r.dependent).count();
        // mcf_like: 45 % of reads (78 % of ops) chase pointers.
        assert!(chase_dep > 0.25, "mcf_like dependence {chase_dep}");
        assert_eq!(stream_dep, 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile("milc_like").unwrap();
        let a = p.generate(Geometry::default(), 9, 500);
        let b = p.generate(Geometry::default(), 9, 500);
        assert_eq!(a.records(), b.records());
        let c = p.generate(Geometry::default(), 10, 500);
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn page_policies_shape_sag_coverage() {
        let p = profile("omnetpp_like").unwrap();
        let geom = Geometry::default();
        let sag_of = |addr: u64| (addr >> 13) as u32 / (geom.rows_per_bank() / 8);
        let count_sags = |policy| {
            let t = p.generate_with_policy(geom, policy, 3, 1000);
            let sags: std::collections::HashSet<u32> =
                t.records().iter().map(|r| sag_of(r.addr.raw())).collect();
            sags.len()
        };
        // Identity: an 8192-row footprint covers 2 of 8 SAGs.
        assert!(count_sags(PagePolicy::Identity) <= 2);
        // Scattered and striped cover all of them.
        assert_eq!(count_sags(PagePolicy::Scattered), 8);
        assert_eq!(count_sags(PagePolicy::SagStriped { sags: 8 }), 8);
    }

    #[test]
    fn sag_striping_is_injective() {
        let p = profile("astar_like").unwrap();
        let geom = Geometry::builder().rows_per_bank(64).build().unwrap();
        // Distinct logical rows within the footprint map to distinct rows.
        let policy = PagePolicy::SagStriped { sags: 4 };
        let t = p.generate_with_policy(geom, policy, 3, 2000);
        // Sanity: trace generated and rows stay in range.
        assert!(t.records().iter().all(|r| (r.addr.raw() >> 13) < 64));
    }

    #[test]
    fn tweakers_override_fields() {
        let p = profile("mcf_like")
            .unwrap()
            .with_mpki(40.0)
            .with_write_fraction(0.5)
            .with_row_locality(0.6)
            .with_streams(6);
        assert_eq!(p.mpki, 40.0);
        assert_eq!(p.write_fraction, 0.5);
        assert_eq!(p.row_locality, 0.6);
        assert_eq!(p.streams, 6);
        let t = p.generate(Geometry::default(), 1, 2000);
        assert!((t.write_fraction() - 0.5).abs() < 0.05);
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile("mcf_like").is_some());
        assert!(profile("nonexistent").is_none());
    }

    #[test]
    fn streaming_profile_has_high_locality() {
        let p = profile("libquantum_like").unwrap();
        let trace = p.generate(Geometry::default(), 3, 2000);
        // Records interleave the profile's streams round-robin, so compare
        // records one stream-stride apart: same-row pairs should dominate.
        let stride = p.streams as usize;
        let rows: Vec<u64> = trace.records().iter().map(|r| r.addr.raw() >> 13).collect();
        let same_row = rows
            .windows(stride + 1)
            .filter(|w| w[0] == w[stride])
            .count();
        assert!(
            same_row as f64 / trace.len() as f64 > 0.6,
            "only {same_row} sequential same-row pairs"
        );
    }
}
