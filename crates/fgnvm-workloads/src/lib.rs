//! Synthetic SPEC2006-like memory trace generators for the FgNVM simulator.
//!
//! The paper's evaluation replays Simpoint slices of memory-intensive
//! SPEC CPU2006 benchmarks (LLC MPKI ≥ 10). Those traces cannot be
//! redistributed, so this crate provides deterministic synthetic
//! generators with matching memory characteristics: the
//! [`spec_like`] module carries twelve named benchmark profiles
//! (`mcf_like`, `lbm_like`, …) and the [`primitives`] module the raw
//! patterns (streaming, uniform random, pointer chase, bank conflict,
//! Zipf) they compose.
//!
//! # Example
//!
//! ```
//! use fgnvm_types::geometry::Geometry;
//! use fgnvm_workloads::spec_like;
//!
//! let profile = spec_like::profile("mcf_like").expect("known benchmark");
//! let trace = profile.generate(Geometry::default(), 42, 10_000);
//! assert!(trace.mpki() >= 10.0); // the paper's selection criterion
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod mix;
pub mod primitives;
pub mod spec_like;
pub mod tenant;

pub use primitives::PatternBuilder;
pub use spec_like::{all_profiles, profile, PagePolicy, Profile};
pub use tenant::{parse_tenants, render_tenants, ArrivalKind, TenantSpec, TenantStream};
