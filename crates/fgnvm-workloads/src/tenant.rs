//! Multi-tenant open-loop arrival processes.
//!
//! A serve run hosts N tenants, each an independent open-loop request
//! stream with its own arrival process (Poisson or a 2-state MMPP for
//! burstiness), address mix, read fraction, and read-p99 SLO target.
//! Every stream is a pure function of `(seed, tenant index)` and carries
//! integer-only generator state ([`TenantStream`]) that snapshots and
//! restores exactly, so a killed multi-tenant run resumes with every
//! per-tenant stream byte-identical to the uninterrupted run.
//!
//! The CLI spec format (one string describes the whole tenant set) is
//! parsed by [`parse_tenants`] and rendered back by [`render_tenants`];
//! the two round-trip so fuzz cases and experiment scripts can persist
//! tenant sets as plain text.

use std::fmt;

use fgnvm_types::request::Op;
use fgnvm_types::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Arrival process of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Never generates an arrival (a provisioned-but-idle tenant; its
    /// accounting must still exist and stay at zero).
    Off,
    /// Poisson arrivals: exponential inter-arrival gaps with the given
    /// mean, in cycles.
    Poisson {
        /// Mean inter-arrival gap in cycles (≥ 1).
        mean_gap: u64,
    },
    /// 2-state Markov-modulated Poisson process: the stream alternates
    /// between a calm and a burst phase, each exponentially dwelled, with
    /// a different mean gap in each — the standard model for bursty
    /// tenants.
    Mmpp {
        /// Mean inter-arrival gap while calm, in cycles (≥ 1).
        gap_calm: u64,
        /// Mean inter-arrival gap while bursting, in cycles (≥ 1).
        gap_burst: u64,
        /// Mean dwell time of the calm phase, in cycles (≥ 1).
        dwell_calm: u64,
        /// Mean dwell time of the burst phase, in cycles (≥ 1).
        dwell_burst: u64,
    },
}

/// Address mix of one tenant, over the device's line space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressMix {
    /// Three quarters of traffic on the first `hot_lines` lines, the tail
    /// uniform over the whole space (the serve driver's classic shape).
    Hot {
        /// Size of the hot set in lines.
        hot_lines: u64,
    },
    /// Uniform over the whole line space.
    Uniform,
    /// Uniform over a percent slice `[lo_pct, hi_pct)` of the line space
    /// — disjoint slices give tenants disjoint footprints.
    Range {
        /// Inclusive lower bound, percent of the line space.
        lo_pct: u8,
        /// Exclusive upper bound, percent of the line space.
        hi_pct: u8,
    },
}

/// Full description of one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Human-readable tenant name (letters/digits/`_`/`-`).
    pub name: String,
    /// Arrival process.
    pub arrival: ArrivalKind,
    /// Address mix.
    pub mix: AddressMix,
    /// Percent of arrivals that are reads (0..=100).
    pub read_pct: u8,
    /// Read-latency p99 SLO target in cycles (0 disables SLO tracking
    /// for this tenant).
    pub slo_read_p99: u64,
}

impl TenantSpec {
    /// A Poisson tenant with the hot-set mix — the common baseline.
    pub fn poisson(name: &str, mean_gap: u64) -> Self {
        TenantSpec {
            name: name.to_string(),
            arrival: ArrivalKind::Poisson { mean_gap },
            mix: AddressMix::Hot { hot_lines: 64 },
            read_pct: 65,
            slo_read_p99: 0,
        }
    }

    /// A bursty MMPP tenant with the hot-set mix.
    pub fn bursty(name: &str, gap_calm: u64, gap_burst: u64, dwell: u64) -> Self {
        TenantSpec {
            name: name.to_string(),
            arrival: ArrivalKind::Mmpp {
                gap_calm,
                gap_burst,
                dwell_calm: dwell,
                dwell_burst: dwell / 4,
            },
            mix: AddressMix::Hot { hot_lines: 64 },
            read_pct: 65,
            slo_read_p99: 0,
        }
    }
}

/// splitmix64 — the same generator the serve driver's anonymous stream
/// uses, duplicated here so the workloads crate stays a leaf.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws an exponential variate with the given integer mean, clamped to
/// ≥ 1 cycle. The draw consumes exactly one rng step, so generator state
/// stays a single u64.
fn exp_gap(rng: &mut u64, mean: u64) -> u64 {
    // 53 uniform mantissa bits in (0, 1]; -ln(u) * mean is the standard
    // inverse-CDF sample. f64 arithmetic is deterministic for a fixed
    // build, and no float ever enters checkpointed state.
    let u = ((splitmix64(rng) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let g = (-u.ln() * mean as f64).round() as u64;
    g.max(1)
}

/// Integer-only, snapshotable state of one tenant's stream: the rng word
/// plus the MMPP phase. Everything an interrupted run needs to continue
/// the stream exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStream {
    rng: u64,
    /// True while the MMPP is in its burst phase (always false for
    /// Poisson/Off).
    burst: bool,
    /// Absolute cycle the current MMPP phase ends at.
    phase_until: u64,
}

impl TenantStream {
    /// A fresh stream for tenant `index` under run `seed` — a pure
    /// function of the pair, so streams are independent and reproducible.
    pub fn new(seed: u64, index: u16) -> Self {
        let mut s = seed ^ (u64::from(index) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Warm the mixer so adjacent tenant indices decorrelate.
        let _ = splitmix64(&mut s);
        TenantStream {
            rng: s,
            burst: false,
            phase_until: 0,
        }
    }

    /// Draws the gap from `now` to this tenant's next arrival, advancing
    /// MMPP phase state as simulated time passes. `None` for a zero-rate
    /// tenant.
    pub fn next_gap(&mut self, arrival: &ArrivalKind, now: u64) -> Option<u64> {
        match *arrival {
            ArrivalKind::Off => None,
            ArrivalKind::Poisson { mean_gap } => Some(exp_gap(&mut self.rng, mean_gap.max(1))),
            ArrivalKind::Mmpp {
                gap_calm,
                gap_burst,
                dwell_calm,
                dwell_burst,
            } => {
                // Catch the phase clock up to `now`: each expired dwell
                // flips the phase and draws the next dwell.
                while now >= self.phase_until {
                    self.burst = !self.burst;
                    let dwell = if self.burst { dwell_burst } else { dwell_calm };
                    self.phase_until = self
                        .phase_until
                        .saturating_add(exp_gap(&mut self.rng, dwell.max(1)));
                }
                let gap = if self.burst { gap_burst } else { gap_calm };
                Some(exp_gap(&mut self.rng, gap.max(1)))
            }
        }
    }

    /// Draws the op and line index of this tenant's next request.
    pub fn next_op(&mut self, spec: &TenantSpec, lines: u64) -> (Op, u64) {
        let lines = lines.max(1);
        let op = if splitmix64(&mut self.rng) % 100 < u64::from(spec.read_pct) {
            Op::Read
        } else {
            Op::Write
        };
        let line = match spec.mix {
            AddressMix::Hot { hot_lines } => {
                if splitmix64(&mut self.rng) % 4 < 3 {
                    splitmix64(&mut self.rng) % hot_lines.max(1).min(lines)
                } else {
                    splitmix64(&mut self.rng) % lines
                }
            }
            AddressMix::Uniform => splitmix64(&mut self.rng) % lines,
            AddressMix::Range { lo_pct, hi_pct } => {
                let lo = lines * u64::from(lo_pct) / 100;
                let hi = (lines * u64::from(hi_pct) / 100).max(lo + 1).min(lines);
                lo + splitmix64(&mut self.rng) % (hi - lo).max(1)
            }
        };
        (op, line.min(lines - 1))
    }

    /// Serializes the stream state (tag `"tstream"`).
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.tag("tstream");
        w.u64(self.rng);
        w.bool(self.burst);
        w.u64(self.phase_until);
    }

    /// Restores a stream written by [`TenantStream::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on a truncated or mistagged stream.
    pub fn load_state(r: &mut SnapshotReader<'_>) -> Result<TenantStream, SnapshotError> {
        r.tag("tstream")?;
        Ok(TenantStream {
            rng: r.u64()?,
            burst: r.bool()?,
            phase_until: r.u64()?,
        })
    }
}

/// Error from [`parse_tenants`]: the offending fragment and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpecError {
    /// The fragment that failed to parse.
    pub fragment: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for TenantSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad tenant spec `{}`: {}", self.fragment, self.message)
    }
}

impl std::error::Error for TenantSpecError {}

fn err(fragment: &str, message: impl Into<String>) -> TenantSpecError {
    TenantSpecError {
        fragment: fragment.to_string(),
        message: message.into(),
    }
}

fn parse_u64(fragment: &str, key: &str, val: &str) -> Result<u64, TenantSpecError> {
    val.parse::<u64>()
        .map_err(|_| err(fragment, format!("`{key}` wants an integer, got `{val}`")))
}

/// Parses a tenant-set spec string.
///
/// Grammar: tenants are comma-separated; each tenant is colon-separated
/// fields `name:kind[:key=value]...` where `kind` is `off`, `poisson`,
/// or `mmpp`. Keys: `gap` (poisson mean gap), `calm`/`burst` (mmpp mean
/// gaps), `dwell-calm`/`dwell-burst` (mmpp mean dwells), `read` (read
/// percent, default 65), `slo` (read-p99 SLO cycles, default 0), `mix`
/// (`hot`, `hot<N>`, `uniform`, or `<lo>-<hi>` percent range).
///
/// ```
/// use fgnvm_workloads::tenant::parse_tenants;
/// let set = parse_tenants(
///     "a:poisson:gap=12:slo=400,b:mmpp:calm=60:burst=4:dwell-calm=2000:dwell-burst=400",
/// ).expect("valid spec");
/// assert_eq!(set.len(), 2);
/// assert_eq!(set[0].name, "a");
/// ```
///
/// # Errors
///
/// Returns a [`TenantSpecError`] naming the bad fragment on unknown
/// kinds, unknown keys, malformed numbers, missing required keys, or an
/// out-of-range tenant count (1..=64).
pub fn parse_tenants(spec: &str) -> Result<Vec<TenantSpec>, TenantSpecError> {
    let mut out = Vec::new();
    for frag in spec.split(',') {
        let frag = frag.trim();
        if frag.is_empty() {
            continue;
        }
        let mut fields = frag.split(':');
        let name = fields.next().unwrap_or("").trim();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_alphanumeric() || "_-".contains(c))
        {
            return Err(err(frag, "tenant name must be [alnum_-]+"));
        }
        let kind = fields.next().unwrap_or("").trim();
        let mut gap = None;
        let mut calm = None;
        let mut burst = None;
        let mut dwell_calm = None;
        let mut dwell_burst = None;
        let mut read_pct = 65u8;
        let mut slo = 0u64;
        let mut mix = AddressMix::Hot { hot_lines: 64 };
        for field in fields {
            let Some((key, val)) = field.split_once('=') else {
                return Err(err(frag, format!("field `{field}` is not key=value")));
            };
            match key {
                "gap" => gap = Some(parse_u64(frag, key, val)?),
                "calm" => calm = Some(parse_u64(frag, key, val)?),
                "burst" => burst = Some(parse_u64(frag, key, val)?),
                "dwell-calm" => dwell_calm = Some(parse_u64(frag, key, val)?),
                "dwell-burst" => dwell_burst = Some(parse_u64(frag, key, val)?),
                "read" => {
                    let v = parse_u64(frag, key, val)?;
                    if v > 100 {
                        return Err(err(frag, "`read` is a percent (0..=100)"));
                    }
                    read_pct = v as u8;
                }
                "slo" => slo = parse_u64(frag, key, val)?,
                "mix" => {
                    mix = if val == "uniform" {
                        AddressMix::Uniform
                    } else if val == "hot" {
                        AddressMix::Hot { hot_lines: 64 }
                    } else if let Some(n) = val.strip_prefix("hot") {
                        AddressMix::Hot {
                            hot_lines: parse_u64(frag, key, n)?.max(1),
                        }
                    } else if let Some((lo, hi)) = val.split_once('-') {
                        let lo = parse_u64(frag, key, lo)?;
                        let hi = parse_u64(frag, key, hi)?;
                        if lo >= hi || hi > 100 {
                            return Err(err(frag, "`mix` range wants 0 <= lo < hi <= 100"));
                        }
                        AddressMix::Range {
                            lo_pct: lo as u8,
                            hi_pct: hi as u8,
                        }
                    } else {
                        return Err(err(frag, format!("unknown mix `{val}`")));
                    };
                }
                _ => return Err(err(frag, format!("unknown key `{key}`"))),
            }
        }
        let arrival = match kind {
            "off" => ArrivalKind::Off,
            "poisson" => ArrivalKind::Poisson {
                mean_gap: gap
                    .ok_or_else(|| err(frag, "poisson wants `gap=<cycles>`"))?
                    .max(1),
            },
            "mmpp" => ArrivalKind::Mmpp {
                gap_calm: calm
                    .ok_or_else(|| err(frag, "mmpp wants `calm=<cycles>`"))?
                    .max(1),
                gap_burst: burst
                    .ok_or_else(|| err(frag, "mmpp wants `burst=<cycles>`"))?
                    .max(1),
                dwell_calm: dwell_calm
                    .ok_or_else(|| err(frag, "mmpp wants `dwell-calm=<cycles>`"))?
                    .max(1),
                dwell_burst: dwell_burst
                    .ok_or_else(|| err(frag, "mmpp wants `dwell-burst=<cycles>`"))?
                    .max(1),
            },
            other => {
                return Err(err(
                    frag,
                    format!("unknown arrival kind `{other}` (off|poisson|mmpp)"),
                ))
            }
        };
        out.push(TenantSpec {
            name: name.to_string(),
            arrival,
            mix,
            read_pct,
            slo_read_p99: slo,
        });
    }
    if out.is_empty() || out.len() > 64 {
        return Err(err(spec, "tenant count must be 1..=64"));
    }
    Ok(out)
}

/// Renders a tenant set back into the [`parse_tenants`] grammar. The two
/// round-trip exactly, so tenant sets persist as plain text in fuzz
/// cases and experiment scripts.
pub fn render_tenants(set: &[TenantSpec]) -> String {
    let mut frags = Vec::with_capacity(set.len());
    for t in set {
        let mut f = t.name.clone();
        match t.arrival {
            ArrivalKind::Off => f.push_str(":off"),
            ArrivalKind::Poisson { mean_gap } => {
                f.push_str(&format!(":poisson:gap={mean_gap}"));
            }
            ArrivalKind::Mmpp {
                gap_calm,
                gap_burst,
                dwell_calm,
                dwell_burst,
            } => {
                f.push_str(&format!(
                    ":mmpp:calm={gap_calm}:burst={gap_burst}:dwell-calm={dwell_calm}:dwell-burst={dwell_burst}"
                ));
            }
        }
        f.push_str(&format!(":read={}", t.read_pct));
        if t.slo_read_p99 > 0 {
            f.push_str(&format!(":slo={}", t.slo_read_p99));
        }
        match t.mix {
            AddressMix::Hot { hot_lines } => f.push_str(&format!(":mix=hot{hot_lines}")),
            AddressMix::Uniform => f.push_str(":mix=uniform"),
            AddressMix::Range { lo_pct, hi_pct } => {
                f.push_str(&format!(":mix={lo_pct}-{hi_pct}"));
            }
        }
        frags.push(f);
    }
    frags.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_render() {
        let spec = "a:poisson:gap=12:read=65:slo=400:mix=hot64,\
                    b:mmpp:calm=60:burst=4:dwell-calm=2000:dwell-burst=400:read=50:mix=uniform,\
                    idle:off:read=65:mix=10-20";
        let set = parse_tenants(spec).expect("valid");
        assert_eq!(set.len(), 3);
        assert_eq!(set[0].slo_read_p99, 400);
        assert_eq!(set[1].read_pct, 50);
        assert_eq!(set[2].arrival, ArrivalKind::Off);
        assert_eq!(
            set[2].mix,
            AddressMix::Range {
                lo_pct: 10,
                hi_pct: 20
            }
        );
        let rendered = render_tenants(&set);
        assert_eq!(parse_tenants(&rendered).expect("re-parse"), set);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_tenants("").is_err());
        assert!(parse_tenants("a:warp").is_err());
        assert!(parse_tenants("a:poisson").is_err(), "gap is required");
        assert!(parse_tenants("a:poisson:gap=x").is_err());
        assert!(parse_tenants("a:poisson:gap=5:bogus=1").is_err());
        assert!(parse_tenants("a b:poisson:gap=5").is_err(), "bad name");
        assert!(parse_tenants("a:poisson:gap=5:mix=40-30").is_err());
        assert!(
            parse_tenants("a:mmpp:calm=10:burst=2").is_err(),
            "dwells required"
        );
    }

    #[test]
    fn poisson_gaps_have_roughly_the_requested_mean() {
        let spec = TenantSpec::poisson("t", 20);
        let mut s = TenantStream::new(99, 0);
        let n = 4000u64;
        let total: u64 = (0..n)
            .map(|_| s.next_gap(&spec.arrival, 0).expect("poisson emits"))
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 20.0).abs() < 2.0, "mean gap {mean}");
    }

    #[test]
    fn mmpp_bursts_are_denser_than_calm() {
        let arrival = ArrivalKind::Mmpp {
            gap_calm: 100,
            gap_burst: 4,
            dwell_calm: 5_000,
            dwell_burst: 2_000,
        };
        let mut s = TenantStream::new(7, 1);
        // Walk simulated time along the arrivals; gaps drawn while the
        // phase clock says "burst" must be shorter on average.
        let mut now = 0u64;
        let (mut calm_sum, mut calm_n, mut burst_sum, mut burst_n) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..20_000 {
            let was_burst_at = |s: &TenantStream, t: u64| s.phase_until > t && s.burst;
            let gap = s.next_gap(&arrival, now).expect("mmpp emits");
            if was_burst_at(&s, now) {
                burst_sum += gap;
                burst_n += 1;
            } else {
                calm_sum += gap;
                calm_n += 1;
            }
            now += gap;
        }
        assert!(calm_n > 100 && burst_n > 100, "{calm_n} {burst_n}");
        let calm_mean = calm_sum as f64 / calm_n as f64;
        let burst_mean = burst_sum as f64 / burst_n as f64;
        assert!(
            burst_mean * 4.0 < calm_mean,
            "burst {burst_mean} calm {calm_mean}"
        );
    }

    #[test]
    fn off_tenant_never_arrives() {
        let mut s = TenantStream::new(3, 2);
        assert_eq!(s.next_gap(&ArrivalKind::Off, 0), None);
    }

    #[test]
    fn stream_state_snapshot_round_trips_mid_sequence() {
        let spec = TenantSpec::bursty("b", 50, 5, 1_000);
        let mut s = TenantStream::new(42, 3);
        let mut now = 0;
        for _ in 0..100 {
            now += s.next_gap(&spec.arrival, now).expect("emits");
            let _ = s.next_op(&spec, 1 << 20);
        }
        let mut w = SnapshotWriter::new();
        s.save_state(&mut w);
        let blob = w.finish();
        let mut r = SnapshotReader::new(&blob).expect("header");
        let mut restored = TenantStream::load_state(&mut r).expect("decodes");
        r.expect_end().expect("no trailing bytes");
        assert_eq!(restored, s);
        // And the continuation is identical.
        for _ in 0..100 {
            let a = s.next_gap(&spec.arrival, now);
            let b = restored.next_gap(&spec.arrival, now);
            assert_eq!(a, b);
            assert_eq!(s.next_op(&spec, 4096), restored.next_op(&spec, 4096));
            now += a.expect("emits");
        }
    }

    #[test]
    fn range_mix_stays_inside_its_slice() {
        let spec = TenantSpec {
            name: "r".into(),
            arrival: ArrivalKind::Poisson { mean_gap: 10 },
            mix: AddressMix::Range {
                lo_pct: 25,
                hi_pct: 50,
            },
            read_pct: 50,
            slo_read_p99: 0,
        };
        let mut s = TenantStream::new(1, 0);
        let lines = 1000u64;
        for _ in 0..500 {
            let (_, line) = s.next_op(&spec, lines);
            assert!((250..500).contains(&line), "line {line}");
        }
    }

    #[test]
    fn streams_are_pure_functions_of_seed_and_index() {
        let a = TenantStream::new(5, 0);
        let b = TenantStream::new(5, 0);
        assert_eq!(a, b);
        assert_ne!(TenantStream::new(5, 0), TenantStream::new(5, 1));
        assert_ne!(TenantStream::new(5, 0), TenantStream::new(6, 0));
    }
}
