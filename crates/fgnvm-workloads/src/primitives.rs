//! Low-level access-pattern generators.
//!
//! These produce [`TraceRecord`] streams over a given [`Geometry`] by
//! composing decoded coordinates (bank, row, line) and encoding them with
//! the system's [`AddressMapper`], so every pattern lands exactly where it
//! intends regardless of the address-mapping scheme.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fgnvm_cpu::TraceRecord;
use fgnvm_types::address::{AddressMapper, DecodedAddr, MappingScheme};
use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::Op;

/// Deterministic source of addresses within a geometry.
///
/// ```
/// use fgnvm_types::Geometry;
/// use fgnvm_workloads::PatternBuilder;
///
/// let mut patterns = PatternBuilder::new(Geometry::default(), 7);
/// // Sweep two full rows of bank 3, then add a burst of random reads.
/// let mut records = patterns.stream(3, 100, 2, 20);
/// records.extend(patterns.random(50, 1024, 0));
/// assert_eq!(records.len(), 2 * 16 + 50);
/// ```
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    mapper: AddressMapper,
    rng: StdRng,
}

impl PatternBuilder {
    /// Creates a builder over `geometry` with a deterministic `seed`.
    pub fn new(geometry: Geometry, seed: u64) -> Self {
        PatternBuilder {
            mapper: AddressMapper::new(geometry, MappingScheme::default()),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The geometry being targeted.
    pub fn geometry(&self) -> &Geometry {
        self.mapper.geometry()
    }

    /// Encodes explicit coordinates into a record.
    pub fn record(
        &self,
        op: Op,
        bank: u32,
        row: u32,
        line: u32,
        gap: u32,
        dependent: bool,
    ) -> TraceRecord {
        let decoded = DecodedAddr {
            channel: 0,
            rank: 0,
            bank,
            row,
            line,
        };
        TraceRecord {
            gap,
            op,
            addr: self.mapper.encode(decoded),
            dependent,
        }
    }

    /// Sequential full-row sweep: reads every line of `rows` consecutive
    /// rows of one bank — maximal row-buffer locality.
    pub fn stream(&mut self, bank: u32, start_row: u32, rows: u32, gap: u32) -> Vec<TraceRecord> {
        let lines = self.geometry().lines_per_row();
        let mut out = Vec::with_capacity((rows * lines) as usize);
        for r in 0..rows {
            for l in 0..lines {
                out.push(self.record(Op::Read, bank, start_row + r, l, gap, false));
            }
        }
        out
    }

    /// Uniform random reads over `footprint_rows` rows of all banks — the
    /// row-thrashing extreme.
    pub fn random(&mut self, count: usize, footprint_rows: u32, gap: u32) -> Vec<TraceRecord> {
        let banks = self.geometry().banks_per_rank();
        let lines = self.geometry().lines_per_row();
        (0..count)
            .map(|_| {
                let bank = self.rng.random_range(0..banks);
                let row = self.rng.random_range(0..footprint_rows);
                let line = self.rng.random_range(0..lines);
                self.record(Op::Read, bank, row, line, gap, false)
            })
            .collect()
    }

    /// Pointer chase: dependent random reads — no memory-level parallelism.
    pub fn pointer_chase(
        &mut self,
        count: usize,
        footprint_rows: u32,
        gap: u32,
    ) -> Vec<TraceRecord> {
        let banks = self.geometry().banks_per_rank();
        let lines = self.geometry().lines_per_row();
        (0..count)
            .map(|_| {
                let bank = self.rng.random_range(0..banks);
                let row = self.rng.random_range(0..footprint_rows);
                let line = self.rng.random_range(0..lines);
                self.record(Op::Read, bank, row, line, gap, true)
            })
            .collect()
    }

    /// All accesses hammer a single bank across different rows — maximal
    /// bank conflict, where tile-level parallelism shines.
    pub fn bank_conflict(&mut self, count: usize, bank: u32, gap: u32) -> Vec<TraceRecord> {
        let rows = self.geometry().rows_per_bank();
        let lines = self.geometry().lines_per_row();
        (0..count)
            .map(|_| {
                let row = self.rng.random_range(0..rows);
                let line = self.rng.random_range(0..lines);
                self.record(Op::Read, bank, row, line, gap, false)
            })
            .collect()
    }

    /// A Zipf-distributed row popularity pattern: a few hot rows absorb
    /// most accesses (`theta` near 1 = very skewed, 0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not in `[0, 1)` or `footprint_rows` is zero.
    pub fn zipf(
        &mut self,
        count: usize,
        footprint_rows: u32,
        theta: f64,
        gap: u32,
    ) -> Vec<TraceRecord> {
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        assert!(footprint_rows > 0, "footprint must be non-empty");
        // Inverse-CDF sampling of a zipf-like distribution over rows.
        let n = f64::from(footprint_rows);
        let banks = self.geometry().banks_per_rank();
        let lines = self.geometry().lines_per_row();
        (0..count)
            .map(|_| {
                let u: f64 = self.rng.random_range(0.0..1.0);
                // Approximate inverse CDF of P(rank) ∝ rank^-theta.
                let row = (n * u.powf(1.0 / (1.0 - theta))) as u32 % footprint_rows;
                let bank = self.rng.random_range(0..banks);
                let line = self.rng.random_range(0..lines);
                self.record(Op::Read, bank, row, line, gap, false)
            })
            .collect()
    }

    /// Direct access to the deterministic RNG for composite generators.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_types::address::PhysAddr;

    fn builder() -> PatternBuilder {
        PatternBuilder::new(Geometry::default(), 42)
    }

    fn decode(b: &PatternBuilder, r: &TraceRecord) -> DecodedAddr {
        let mapper = AddressMapper::new(*b.geometry(), MappingScheme::default());
        mapper.decode(r.addr)
    }

    #[test]
    fn stream_visits_rows_in_order() {
        let mut b = builder();
        let recs = b.stream(2, 10, 2, 50);
        assert_eq!(recs.len(), 32); // 2 rows × 16 lines
        let first = decode(&b, &recs[0]);
        let last = decode(&b, recs.last().unwrap());
        assert_eq!((first.bank, first.row, first.line), (2, 10, 0));
        assert_eq!((last.bank, last.row, last.line), (2, 11, 15));
    }

    #[test]
    fn random_stays_in_footprint() {
        let mut b = builder();
        for r in b.random(200, 8, 10) {
            let d = decode(&b, &r);
            assert!(d.row < 8);
            assert!(!r.dependent);
        }
    }

    #[test]
    fn pointer_chase_is_dependent() {
        let mut b = builder();
        assert!(b.pointer_chase(50, 16, 10).iter().all(|r| r.dependent));
    }

    #[test]
    fn bank_conflict_targets_one_bank() {
        let mut b = builder();
        for r in b.bank_conflict(100, 5, 0) {
            assert_eq!(decode(&b, &r).bank, 5);
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let mut b = builder();
        let recs = b.zipf(2000, 64, 0.9, 0);
        let hot = recs.iter().filter(|r| decode(&b, r).row == 0).count();
        // Row 0 should absorb far more than the uniform 1/64 share.
        assert!(hot > 2000 / 64 * 4, "row 0 only got {hot} accesses");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = PatternBuilder::new(Geometry::default(), 7);
        let mut b = PatternBuilder::new(Geometry::default(), 7);
        assert_eq!(a.random(50, 16, 0), b.random(50, 16, 0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = PatternBuilder::new(Geometry::default(), 7);
        let mut b = PatternBuilder::new(Geometry::default(), 8);
        assert_ne!(a.random(50, 16, 0), b.random(50, 16, 0));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_rejects_bad_theta() {
        let _ = builder().zipf(10, 8, 1.5, 0);
    }

    #[test]
    fn record_addresses_are_line_aligned() {
        let mut b = builder();
        for r in b.random(50, 16, 0) {
            assert_eq!(r.addr, PhysAddr::new(r.addr.raw()).line_aligned(64));
        }
    }
}
