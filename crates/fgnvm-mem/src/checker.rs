//! Protocol checker: validates a captured [`CommandLog`] against the
//! device protocol (the role of NVMain's trace verifier).
//!
//! The simulator's banks *should* never emit an illegal command sequence —
//! that is what the plan/commit split guarantees — but a checker that
//! re-derives the rules independently catches regressions the unit tests
//! miss: it audits what actually issued, not what the model believed.
//!
//! Checked invariants:
//!
//! * **Minimum latency** — every command's data burst starts no earlier
//!   than the device allows for its kind (tCAS for a row hit,
//!   tRCD + tCAS for an activation, tCWD for a write).
//! * **Bus occupancy** — at most `data_bus_width` bursts overlap at any
//!   instant on one channel.
//! * **Column spacing** — with a shared column path (one command per
//!   cycle), consecutive commands to one bank are at least tCCD apart.
//! * **Write lock** — after a write, a baseline bank accepts no command
//!   until tWP + tWR after the data burst; an FgNVM bank (without write
//!   pausing) accepts none to the written SAG. A write that needed `k`
//!   verify retries programs for `(1 + k) × tWP`, so the lock window is
//!   derived from the logged retry count.
//! * **Retry budget** — no write reports more verify retries than the
//!   configured device cap allows.
//! * **Row-hit freshness** — a baseline row hit must target the row
//!   opened by the bank's most recent activation, with no intervening
//!   write (writes close the row).
//! * **tFAW** — a DRAM rank admits at most four activations per rolling
//!   `t_faw` window.
//!
//! Checks that need history the bounded log no longer retains are
//! skipped rather than reported as false positives.

use fgnvm_bank::{PlanKind, RefreshCycles};
use fgnvm_types::config::{BankModel, SystemConfig, TimingCycles};
use fgnvm_types::error::ConfigError;
use fgnvm_types::time::{Cycle, CycleCount};

use crate::cmdlog::{CommandLog, CommandRecord};

/// One protocol violation found in a command log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// A burst started sooner after its command than the device allows.
    MinimumLatency {
        /// Cycle the offending command issued.
        at: Cycle,
        /// Channel-local bank.
        bank: usize,
        /// How it was served.
        kind: PlanKind,
        /// The burst start that came too early.
        data_start: Cycle,
        /// The earliest legal burst start.
        earliest_legal: Cycle,
    },
    /// More simultaneous bursts than the data bus has slots.
    BusOverload {
        /// First cycle the occupancy exceeded the width.
        at: Cycle,
        /// Overlapping bursts observed.
        observed: u32,
        /// Configured bus width.
        width: u32,
    },
    /// Two commands to one bank closer than tCCD on a shared column path.
    ColumnSpacing {
        /// Cycle of the second (offending) command.
        at: Cycle,
        /// Channel-local bank.
        bank: usize,
        /// Cycle of the preceding command to the same bank.
        previous: Cycle,
    },
    /// A command reached a resource still locked by an in-flight write.
    WriteLock {
        /// Cycle the offending command issued.
        at: Cycle,
        /// Channel-local bank.
        bank: usize,
        /// When the write's lock releases.
        write_done: Cycle,
    },
    /// A row hit targeted a row that was not (or no longer) open.
    StaleRowHit {
        /// Cycle the offending row hit issued.
        at: Cycle,
        /// Channel-local bank.
        bank: usize,
        /// Row the hit claimed was open.
        row: u32,
    },
    /// Five activations inside one rank's tFAW window.
    FawViolation {
        /// Cycle of the fifth activation.
        at: Cycle,
        /// Rank the burst of activations targeted.
        rank: u32,
    },
    /// A write logged more verify retries than the device cap permits.
    RetryBeyondCap {
        /// Cycle the offending write issued.
        at: Cycle,
        /// Channel-local bank.
        bank: usize,
        /// Retries the write reported.
        retries: u32,
        /// The configured on-die retry budget.
        cap: u32,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Violation::MinimumLatency {
                at,
                bank,
                kind,
                data_start,
                earliest_legal,
            } => write!(
                f,
                "{at}: bank {bank} {kind:?} burst at {data_start} before legal {earliest_legal}"
            ),
            Violation::BusOverload {
                at,
                observed,
                width,
            } => {
                write!(
                    f,
                    "{at}: {observed} overlapping bursts on a {width}-slot bus"
                )
            }
            Violation::ColumnSpacing { at, bank, previous } => {
                write!(f, "{at}: bank {bank} command within tCCD of {previous}")
            }
            Violation::WriteLock {
                at,
                bank,
                write_done,
            } => {
                write!(
                    f,
                    "{at}: bank {bank} command while write-locked until {write_done}"
                )
            }
            Violation::StaleRowHit { at, bank, row } => {
                write!(
                    f,
                    "{at}: bank {bank} row hit on row {row} which is not open"
                )
            }
            Violation::FawViolation { at, rank } => {
                write!(f, "{at}: fifth activation inside rank {rank}'s tFAW window")
            }
            Violation::RetryBeyondCap {
                at,
                bank,
                retries,
                cap,
            } => {
                write!(
                    f,
                    "{at}: bank {bank} write reports {retries} verify retries over the cap of {cap}"
                )
            }
        }
    }
}

/// Outcome of checking one channel's command log.
#[derive(Debug, Clone, Default)]
pub struct ProtocolReport {
    /// Commands inspected.
    pub commands: usize,
    /// Highest simultaneous bus occupancy observed.
    pub max_bus_occupancy: u32,
    /// Every violation found, in log order.
    pub violations: Vec<Violation>,
}

impl ProtocolReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for ProtocolReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} commands, peak bus occupancy {}, {} violation(s)",
            self.commands,
            self.max_bus_occupancy,
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// Re-derives the device protocol from a [`SystemConfig`] and audits a
/// [`CommandLog`] against it.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use fgnvm_mem::{MemorySystem, ProtocolChecker};
/// use fgnvm_types::config::SystemConfig;
/// use fgnvm_types::request::Op;
/// use fgnvm_types::PhysAddr;
///
/// let config = SystemConfig::fgnvm(8, 2)?;
/// let mut mem = MemorySystem::new(config)?;
/// mem.enable_command_log(4096);
/// for i in 0..64 {
///     mem.enqueue(Op::Read, PhysAddr::new(i * 64));
/// }
/// mem.run_until_idle(100_000);
/// let checker = ProtocolChecker::new(&config)?;
/// let report = checker.check(mem.command_log(0));
/// assert!(report.is_clean(), "{report}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProtocolChecker {
    timing: TimingCycles,
    model: BankModel,
    bus_width: u32,
    shared_column_path: bool,
    write_pausing: bool,
    banks_per_rank: u32,
    t_faw: CycleCount,
    /// On-die write-verify retry budget from the reliability config (0
    /// when the fault layer is disabled — clean writes log zero retries).
    write_retry_cap: u32,
}

/// Per-bank audit state carried across the scan.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    /// Cycle of the previous command (column spacing).
    last_cmd: Option<Cycle>,
    /// Lock release instant of the last write.
    write_done: Option<Cycle>,
    /// SAG the last write targeted (FgNVM locks only that SAG).
    write_sag: u32,
    /// Row opened by the most recent activation (baseline freshness).
    open_row: Option<u32>,
}

impl ProtocolChecker {
    /// Builds a checker matching `config`'s protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration's timings do not
    /// resolve to cycles (the same validation [`SystemConfig`] applies).
    pub fn new(config: &SystemConfig) -> Result<Self, ConfigError> {
        Ok(ProtocolChecker {
            timing: config.timing.to_cycles()?,
            model: config.bank_model,
            bus_width: config.data_bus_width,
            shared_column_path: config.commands_per_cycle == 1,
            write_pausing: config.write_pausing,
            banks_per_rank: config.geometry.banks_per_rank(),
            t_faw: RefreshCycles::ddr3_like().t_faw,
            write_retry_cap: config.reliability.max_write_retries,
        })
    }

    /// Audits `log`, returning every violation found.
    pub fn check(&self, log: &CommandLog) -> ProtocolReport {
        let records: Vec<&CommandRecord> = log.records().collect();
        let mut report = ProtocolReport {
            commands: records.len(),
            ..ProtocolReport::default()
        };
        // History-dependent checks are unsound when the front of the log
        // was evicted: the command that justified later state is gone.
        let complete = log.dropped() == 0;

        self.check_latencies(&records, &mut report);
        self.check_bus(&records, &mut report);
        if complete {
            self.check_banks(&records, &mut report);
            if matches!(self.model, BankModel::Dram) {
                self.check_faw(&records, &mut report);
            }
        }
        report
    }

    /// Minimum command-to-data latency per kind.
    fn check_latencies(&self, records: &[&CommandRecord], report: &mut ProtocolReport) {
        let t = &self.timing;
        for r in records {
            let floor = match r.kind {
                PlanKind::RowHit => t.t_cas,
                PlanKind::Activate | PlanKind::Underfetch => t.t_rcd + t.t_cas,
                // A write may or may not pay tRCD; tCWD is the floor.
                PlanKind::Write => t.t_cwd,
            };
            let earliest_legal = r.at + floor;
            if r.data_start < earliest_legal {
                report.violations.push(Violation::MinimumLatency {
                    at: r.at,
                    bank: r.bank_index,
                    kind: r.kind,
                    data_start: r.data_start,
                    earliest_legal,
                });
            }
        }
    }

    /// No more than `bus_width` bursts overlap at any instant.
    fn check_bus(&self, records: &[&CommandRecord], report: &mut ProtocolReport) {
        // Sweep burst edges: +1 at data_start, -1 at data_start + tBURST.
        let mut edges: Vec<(Cycle, i32)> = Vec::with_capacity(records.len() * 2);
        for r in records {
            edges.push((r.data_start, 1));
            edges.push((r.data_start + self.timing.t_burst, -1));
        }
        edges.sort_by_key(|&(cycle, delta)| (cycle, delta)); // ends (-1) before starts
        let mut occupancy: i32 = 0;
        let mut flagged = false;
        for (cycle, delta) in edges {
            occupancy += delta;
            report.max_bus_occupancy = report.max_bus_occupancy.max(occupancy.max(0) as u32);
            if occupancy > self.bus_width as i32 && !flagged {
                report.violations.push(Violation::BusOverload {
                    at: cycle,
                    observed: occupancy as u32,
                    width: self.bus_width,
                });
                flagged = true; // one report per log, not per beat
            }
        }
    }

    /// Column spacing, write locks, and baseline row-hit freshness.
    fn check_banks(&self, records: &[&CommandRecord], report: &mut ProtocolReport) {
        let bank_count = records.iter().map(|r| r.bank_index + 1).max().unwrap_or(0);
        let mut banks = vec![BankState::default(); bank_count];
        for r in records {
            let state = &mut banks[r.bank_index];

            if self.shared_column_path {
                if let Some(previous) = state.last_cmd {
                    if r.at < previous + self.timing.t_ccd {
                        report.violations.push(Violation::ColumnSpacing {
                            at: r.at,
                            bank: r.bank_index,
                            previous,
                        });
                    }
                }
            }

            if !self.write_pausing {
                if let Some(write_done) = state.write_done {
                    let locked = match self.model {
                        // Baseline NVM writes occupy the whole bank for
                        // tWP + tWR after the data burst.
                        BankModel::Baseline => r.at < write_done,
                        // FgNVM locks only the written SAG (Backgrounded
                        // Writes); other SAGs stay readable.
                        BankModel::Fgnvm { .. } => {
                            r.at < write_done && r.coord.sag == state.write_sag
                        }
                        // DRAM tWR gates only the precharge, not later
                        // column commands to the open row.
                        BankModel::Dram => false,
                    };
                    if locked {
                        report.violations.push(Violation::WriteLock {
                            at: r.at,
                            bank: r.bank_index,
                            write_done,
                        });
                    }
                }
            }

            match r.kind {
                PlanKind::Activate | PlanKind::Underfetch => state.open_row = Some(r.row),
                PlanKind::RowHit => {
                    // Freshness is exact only for the single-row-buffer
                    // baseline; FgNVM hits depend on per-SAG sensed masks.
                    if matches!(self.model, BankModel::Baseline) && state.open_row != Some(r.row) {
                        report.violations.push(Violation::StaleRowHit {
                            at: r.at,
                            bank: r.bank_index,
                            row: r.row,
                        });
                    }
                }
                PlanKind::Write => {
                    if r.retries > self.write_retry_cap {
                        report.violations.push(Violation::RetryBeyondCap {
                            at: r.at,
                            bank: r.bank_index,
                            retries: r.retries,
                            cap: self.write_retry_cap,
                        });
                    }
                    let data_end = r.data_start + self.timing.t_burst;
                    // Each verify retry re-runs the full programming pulse,
                    // so the lock window scales with 1 + retries.
                    let program =
                        CycleCount::new(self.timing.t_wp.raw() * u64::from(r.retries + 1));
                    state.write_done = Some(data_end + program + self.timing.t_wr);
                    state.write_sag = r.coord.sag;
                    if matches!(self.model, BankModel::Baseline) {
                        state.open_row = None; // baseline writes close the row
                    }
                }
            }
            state.last_cmd = Some(r.at);
        }
    }

    /// DRAM tFAW: at most four activations per rank per rolling window.
    fn check_faw(&self, records: &[&CommandRecord], report: &mut ProtocolReport) {
        let rank_count = records
            .iter()
            .map(|r| r.bank_index as u32 / self.banks_per_rank + 1)
            .max()
            .unwrap_or(0);
        let mut windows: Vec<Vec<Cycle>> = vec![Vec::new(); rank_count as usize];
        for r in records {
            if !r.kind.senses() {
                continue;
            }
            let rank = r.bank_index as u32 / self.banks_per_rank;
            let window = &mut windows[rank as usize];
            window.retain(|&start| r.at < start + self.t_faw);
            if window.len() >= 4 {
                report
                    .violations
                    .push(Violation::FawViolation { at: r.at, rank });
            }
            window.push(r.at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_types::address::TileCoord;
    use fgnvm_types::request::{Op, RequestId};

    fn record(
        at: u64,
        kind: PlanKind,
        bank: usize,
        row: u32,
        sag: u32,
        data_start: u64,
    ) -> CommandRecord {
        CommandRecord {
            at: Cycle::new(at),
            id: RequestId::new(at),
            op: if kind == PlanKind::Write {
                Op::Write
            } else {
                Op::Read
            },
            kind,
            bank_index: bank,
            row,
            coord: TileCoord {
                sag,
                cd_first: 0,
                cd_count: 1,
            },
            data_start: Cycle::new(data_start),
            retries: 0,
        }
    }

    fn log_of(records: &[CommandRecord]) -> CommandLog {
        let mut log = CommandLog::new();
        log.enable(records.len().max(1));
        for r in records {
            log.push(*r);
        }
        log
    }

    fn checker(config: &SystemConfig) -> ProtocolChecker {
        ProtocolChecker::new(config).unwrap()
    }

    #[test]
    fn clean_sequence_passes() {
        let c = checker(&SystemConfig::baseline());
        // Activate (data at +48), then a pipelined hit (tCCD later).
        let log = log_of(&[
            record(0, PlanKind::Activate, 0, 1, 0, 48),
            record(4, PlanKind::RowHit, 0, 1, 0, 52),
        ]);
        let report = c.check(&log);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.commands, 2);
        assert_eq!(report.max_bus_occupancy, 1);
    }

    #[test]
    fn early_burst_is_flagged() {
        let c = checker(&SystemConfig::baseline());
        // Hit with data 10 cycles after the command (< tCAS = 38). Open
        // the row first so only the latency rule trips.
        let log = log_of(&[
            record(0, PlanKind::Activate, 0, 1, 0, 48),
            record(52, PlanKind::RowHit, 0, 1, 0, 62),
        ]);
        let report = c.check(&log);
        assert!(matches!(
            report.violations[..],
            [Violation::MinimumLatency { .. }]
        ));
    }

    #[test]
    fn bus_overload_is_flagged_once() {
        let c = checker(&SystemConfig::baseline()); // width 1
                                                    // Three bursts all occupying cycles 48..52.
        let log = log_of(&[
            record(0, PlanKind::Activate, 0, 1, 0, 48),
            record(10, PlanKind::Activate, 1, 1, 0, 48),
            record(10, PlanKind::Activate, 2, 1, 0, 49),
        ]);
        let report = c.check(&log);
        let overloads = report
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::BusOverload { .. }));
        assert_eq!(overloads.count(), 1);
        assert_eq!(report.max_bus_occupancy, 3);
    }

    #[test]
    fn wide_bus_accepts_parallel_bursts() {
        let mut config = SystemConfig::fgnvm_multi_issue(8, 2, 2).unwrap();
        config.data_bus_width = 2;
        let c = checker(&config);
        let log = log_of(&[
            record(0, PlanKind::Activate, 0, 1, 0, 48),
            record(0, PlanKind::Activate, 1, 1, 0, 48),
        ]);
        assert!(c.check(&log).is_clean());
    }

    #[test]
    fn column_spacing_violation_is_flagged() {
        let c = checker(&SystemConfig::baseline());
        // Two commands to one bank 2 cycles apart (< tCCD = 4).
        let log = log_of(&[
            record(0, PlanKind::Activate, 0, 1, 0, 48),
            record(2, PlanKind::RowHit, 0, 1, 0, 52),
        ]);
        let report = c.check(&log);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ColumnSpacing { .. })));
    }

    #[test]
    fn baseline_write_locks_whole_bank() {
        let c = checker(&SystemConfig::baseline());
        // Write data 3..7, lock until 7 + 60 + 3 = 70; a fresh activate to
        // another row at cycle 20 is illegal.
        let log = log_of(&[
            record(0, PlanKind::Write, 0, 1, 0, 3),
            record(20, PlanKind::Activate, 0, 2, 1, 68),
        ]);
        let report = c.check(&log);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WriteLock { .. })));
    }

    #[test]
    fn fgnvm_write_locks_only_its_sag() {
        let c = checker(&SystemConfig::fgnvm(8, 2).unwrap());
        // Write into SAG 0; a read in SAG 3 during tWP is legal
        // (Backgrounded Writes), one in SAG 0 is not.
        let background = log_of(&[
            record(0, PlanKind::Write, 0, 1, 0, 3),
            record(20, PlanKind::Activate, 0, 100, 3, 68),
        ]);
        assert!(c.check(&background).is_clean());
        let conflicting = log_of(&[
            record(0, PlanKind::Write, 0, 1, 0, 3),
            record(20, PlanKind::Activate, 0, 2, 0, 68),
        ]);
        assert!(!c.check(&conflicting).is_clean());
    }

    #[test]
    fn pausing_config_relaxes_write_lock() {
        let mut config = SystemConfig::fgnvm(8, 2).unwrap();
        config.write_pausing = true;
        let c = checker(&config);
        // Under pausing, a same-SAG read during tWP is legal.
        let log = log_of(&[
            record(0, PlanKind::Write, 0, 1, 0, 3),
            record(20, PlanKind::Activate, 0, 2, 0, 68),
        ]);
        assert!(c.check(&log).is_clean());
    }

    #[test]
    fn stale_row_hit_is_flagged() {
        let c = checker(&SystemConfig::baseline());
        let wrong_row = log_of(&[
            record(0, PlanKind::Activate, 0, 1, 0, 48),
            record(52, PlanKind::RowHit, 0, 9, 0, 90),
        ]);
        assert!(!c.check(&wrong_row).is_clean());
        // A write closes the row; a later "hit" on it is stale.
        let after_write = log_of(&[
            record(0, PlanKind::Activate, 0, 1, 0, 48),
            record(60, PlanKind::Write, 0, 1, 0, 63),
            record(200, PlanKind::RowHit, 0, 1, 0, 238),
        ]);
        assert!(!c.check(&after_write).is_clean());
    }

    #[test]
    fn dram_faw_violation_is_flagged() {
        let c = checker(&SystemConfig::dram());
        // Five activations on one rank inside 12 cycles.
        let records: Vec<CommandRecord> = (0..5u64)
            .map(|i| record(i * 2, PlanKind::Activate, i as usize, 1, 0, i * 2 + 12))
            .collect();
        let report = c.check(&log_of(&records));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::FawViolation { .. })));
        // The same five spread over 4 × tFAW are legal.
        let spread: Vec<CommandRecord> = (0..5u64)
            .map(|i| record(i * 13, PlanKind::Activate, i as usize, 1, 0, i * 13 + 12))
            .collect();
        assert!(c.check(&log_of(&spread)).is_clean());
    }

    #[test]
    fn truncated_log_skips_history_checks() {
        let c = checker(&SystemConfig::baseline());
        let mut log = CommandLog::new();
        log.enable(1);
        // The activate that opened row 1 is evicted; the surviving hit
        // must not be reported as stale.
        log.push(record(0, PlanKind::Activate, 0, 1, 0, 48));
        log.push(record(52, PlanKind::RowHit, 0, 1, 0, 90));
        assert!(log.dropped() > 0);
        assert!(c.check(&log).is_clean());
    }

    #[test]
    fn violations_display_their_context() {
        let v = Violation::WriteLock {
            at: Cycle::new(20),
            bank: 3,
            write_done: Cycle::new(70),
        };
        let s = v.to_string();
        assert!(s.contains("bank 3") && s.contains("cy70"), "{s}");
    }

    fn write_with_retries(at: u64, sag: u32, data_start: u64, retries: u32) -> CommandRecord {
        let mut r = record(at, PlanKind::Write, 0, 1, sag, data_start);
        r.retries = retries;
        r
    }

    fn with_retry_cap(mut config: SystemConfig, cap: u32) -> SystemConfig {
        config.reliability.max_write_retries = cap;
        config
    }

    #[test]
    fn retrying_write_extends_the_lock_window() {
        let c = checker(&with_retry_cap(SystemConfig::baseline(), 4));
        // A clean write (data 3..7) locks until 7 + 60 + 3 = 70, so an
        // activate at cycle 100 is legal...
        let clean = log_of(&[
            write_with_retries(0, 0, 3, 0),
            record(100, PlanKind::Activate, 0, 2, 1, 148),
        ]);
        assert!(c.check(&clean).is_clean());
        // ...but the same write with two verify retries programs for
        // 3 × tWP and locks until 7 + 180 + 3 = 190: the follower at 100
        // lands inside the extended window.
        let retried = log_of(&[
            write_with_retries(0, 0, 3, 2),
            record(100, PlanKind::Activate, 0, 2, 1, 148),
        ]);
        let report = c.check(&retried);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WriteLock { .. })));
    }

    #[test]
    fn retry_beyond_cap_is_flagged() {
        let c = checker(&with_retry_cap(SystemConfig::baseline(), 2));
        let log = log_of(&[write_with_retries(0, 0, 3, 7)]);
        let report = c.check(&log);
        assert!(matches!(
            report.violations[..],
            [Violation::RetryBeyondCap {
                retries: 7,
                cap: 2,
                ..
            }]
        ));
        let within_budget = log_of(&[write_with_retries(0, 0, 3, 2)]);
        assert!(c.check(&within_budget).is_clean());
    }

    /// Mutation test for the retry rules: audit a real run of the fault
    /// model, then corrupt one write's retry count past the device budget
    /// and require the checker to notice.
    #[test]
    fn corrupting_a_retry_sequence_is_detected() {
        use fgnvm_types::PhysAddr;

        let mut config = SystemConfig::fgnvm(8, 2).unwrap();
        config.reliability = fgnvm_types::config::ReliabilityConfig {
            enabled: true,
            fault_seed: 7,
            rber: 0.0,
            write_fail_prob: 0.3,
            max_write_retries: 4,
            ecc_correctable_bits: 1,
            ecc_decode_penalty_cycles: 10,
            wear_stuck_threshold: 0,
            ..fgnvm_types::config::ReliabilityConfig::default()
        };
        let mut mem = crate::MemorySystem::new(config).unwrap();
        mem.enable_command_log(1 << 16);
        for i in 0..60u64 {
            while mem.enqueue(Op::Write, PhysAddr::new(i * 4096)).is_none() {
                mem.tick();
            }
            for _ in 0..200 {
                mem.tick();
            }
        }
        mem.run_until_idle(1_000_000);
        let clean: Vec<CommandRecord> = mem.command_log(0).records().copied().collect();
        let checker = ProtocolChecker::new(&config).unwrap();
        assert!(checker.check(&log_of(&clean)).is_clean());
        assert!(
            clean.iter().any(|r| r.retries > 0),
            "the fault model should have produced at least one retried write"
        );

        // Inflating any write's retry count past the on-die budget must
        // trip the retry-budget rule.
        let victim = clean
            .iter()
            .position(|r| r.kind == PlanKind::Write)
            .expect("log contains writes");
        let mut mutated = clean.clone();
        mutated[victim].retries = config.reliability.max_write_retries + 5;
        let report = checker.check(&log_of(&mutated));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::RetryBeyondCap { .. })));
    }

    /// Mutation testing for the auditor itself: take the log of a real,
    /// clean run, corrupt one record, and require the checker to notice.
    /// An auditor that stays green under mutation proves nothing.
    #[test]
    fn corrupting_a_clean_log_is_detected() {
        use fgnvm_types::PhysAddr;

        let config = SystemConfig::fgnvm(8, 2).unwrap();
        let mut mem = crate::MemorySystem::new(config).unwrap();
        mem.enable_command_log(1 << 16);
        // Mixed traffic over several banks and rows; drain as needed so
        // nothing is rejected.
        for i in 0..200u64 {
            while mem.enqueue(Op::Read, PhysAddr::new(i * 64 * 7)).is_none() {
                mem.tick();
            }
        }
        for i in 0..40u64 {
            while mem.enqueue(Op::Write, PhysAddr::new(i * 4096)).is_none() {
                mem.tick();
            }
            for _ in 0..100 {
                mem.tick();
            }
        }
        mem.run_until_idle(1_000_000);
        let clean: Vec<CommandRecord> = mem.command_log(0).records().copied().collect();
        let checker = ProtocolChecker::new(&config).unwrap();
        assert!(checker.check(&log_of(&clean)).is_clean());
        assert!(clean.len() > 100, "need a substantial log to mutate");

        // Mutation 1: a burst pulled to its command cycle always violates
        // the minimum latency (every floor is at least tCWD > 0).
        for victim in [0, clean.len() / 2, clean.len() - 1] {
            let mut mutated = clean.clone();
            mutated[victim].data_start = mutated[victim].at;
            assert!(
                !checker.check(&log_of(&mutated)).is_clean(),
                "early-burst mutation at {victim} went unnoticed"
            );
        }

        // Mutation 2: duplicating a record's burst slot overloads the
        // 1-slot bus.
        let mut mutated = clean.clone();
        let dup = mutated[mutated.len() / 2];
        mutated.push(dup);
        assert!(
            !checker.check(&log_of(&mutated)).is_clean(),
            "bus-overload mutation went unnoticed"
        );

        // Mutation 3: moving any command into the cycle right after its
        // bank's previous command violates tCCD (shared column path).
        let same_bank_pair = clean
            .windows(2)
            .position(|w| w[0].bank_index == w[1].bank_index)
            .map(|i| i + 1);
        if let Some(i) = same_bank_pair {
            let mut mutated = clean.clone();
            mutated[i].at = mutated[i - 1].at + CycleCount::ONE;
            assert!(
                !checker.check(&log_of(&mutated)).is_clean(),
                "tCCD mutation went unnoticed"
            );
        }
    }
}
