//! The complete simulated memory system: address mapping plus one
//! [`Controller`] per channel, ticked on a common clock.

use std::collections::{HashMap, HashSet};

use fgnvm_bank::{Access, BankStats, RefreshCycles};
use fgnvm_obs::{AttributionParams, InstantKind, Observer};
use fgnvm_types::address::{AddressMapper, MappingScheme, PhysAddr};
use fgnvm_types::config::BankModel;
use fgnvm_types::config::SystemConfig;
use fgnvm_types::error::{ConfigError, SimError};
use fgnvm_types::request::{Completion, Op, Request, RequestId};
use fgnvm_types::time::{Cycle, CycleCount};

use crate::controller::{Controller, Enqueue};
use crate::data::DataStore;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::queues::Pending;
use crate::stats::SystemStats;
use crate::wear::{StartGap, WearTracker};

/// One point of the time-series sampler: cumulative counters at an epoch
/// boundary. Consumers diff consecutive samples to get per-epoch rates
/// (bandwidth, power).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Cycle the sample was taken.
    pub at: Cycle,
    /// Reads completed so far.
    pub completed_reads: u64,
    /// Bits sensed so far (activation energy).
    pub sensed_bits: u64,
    /// Bits written so far (program energy).
    pub written_bits: u64,
    /// Read-queue occupancy at the sample instant.
    pub read_queue: usize,
    /// Write-queue occupancy at the sample instant.
    pub write_queue: usize,
}

/// A cycle-accurate FgNVM / baseline-NVM main-memory model.
///
/// Drive it by [`enqueue`](MemorySystem::enqueue)-ing line-aligned reads and
/// writes and calling [`tick`](MemorySystem::tick) once per memory cycle;
/// completions come back with their end-to-end latency.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use fgnvm_mem::MemorySystem;
/// use fgnvm_types::config::SystemConfig;
/// use fgnvm_types::request::Op;
/// use fgnvm_types::PhysAddr;
///
/// let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2)?)?;
/// let id = mem.enqueue(Op::Read, PhysAddr::new(0x1000)).expect("queue has room");
/// let completions = mem.run_until_idle(10_000);
/// assert!(completions.iter().any(|c| c.id == id));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: SystemConfig,
    mapper: AddressMapper,
    controllers: Vec<Controller>,
    energy_model: EnergyModel,
    data: DataStore,
    /// Optional per-(bank, row) write counters.
    wear: Option<WearTracker>,
    /// Optional Start-Gap wear levelers, one per global bank.
    levelers: Option<Vec<StartGap>>,
    /// Time-series sampling: epoch length in cycles (0 = disabled) and the
    /// collected samples.
    sample_epoch: u64,
    samples: Vec<Sample>,
    /// Bad-row remap table: (channel, bank_index, row) → spare row.
    /// Populated when ECC reports an uncorrectable error; later accesses to
    /// the faulty row are steered to the spare.
    bad_rows: HashMap<(u32, usize, u32), u32>,
    /// Spare rows consumed so far per (channel, bank_index); spares are
    /// carved from the top of the bank downward.
    spares_used: HashMap<(u32, usize), u32>,
    /// Rows retired outright per (channel, bank_index): stage two of the
    /// wear-out escalation ladder, entered when a failing row finds no
    /// spare. Retired rows are permanent capacity loss.
    retired: HashMap<(u32, usize), u32>,
    /// Banks escalated to read-only mode (stage three): once a bank's
    /// retired-row count crosses `ReliabilityConfig::read_only_row_threshold`
    /// its writes are rejected at the door while reads keep working.
    read_only: HashSet<(u32, usize)>,
    /// Stage four, set when the read-only bank count reaches
    /// `ReliabilityConfig::capacity_exhausted_banks`; surfaced to callers
    /// via [`check_capacity`](Self::check_capacity).
    capacity_exhausted: bool,
    /// Event-driven fast-forward: when enabled, the drain loops jump the
    /// clock over provably dead stretches instead of single-stepping. The
    /// two modes are bit-identical in everything observable.
    fast_forward: bool,
    /// Observability layer (spans + heatmap + trace); `None` by default so
    /// the hot path pays nothing. Hooks fire only from cycle-stepped code
    /// paths — never from `skip_to` — so fast-forwarded runs produce
    /// bit-identical observability output.
    observer: Option<Box<Observer>>,
    now: Cycle,
    next_id: u64,
    stats: SystemStats,
}

impl MemorySystem {
    /// Builds the memory system described by `config` with the default
    /// (row-buffer-friendly) address mapping.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration fails validation.
    pub fn new(config: SystemConfig) -> Result<Self, ConfigError> {
        Self::with_mapping(config, MappingScheme::default())
    }

    /// Builds the memory system with an explicit address-mapping scheme.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration fails validation.
    pub fn with_mapping(config: SystemConfig, scheme: MappingScheme) -> Result<Self, ConfigError> {
        config.validate()?;
        let mut controllers = Vec::with_capacity(config.geometry.channels() as usize);
        for channel in 0..config.geometry.channels() {
            controllers.push(Controller::new_for_channel(&config, channel)?);
        }
        Ok(MemorySystem {
            mapper: AddressMapper::new(config.geometry, scheme),
            energy_model: EnergyModel::new(&config),
            data: DataStore::new(config.geometry.line_bytes()),
            config,
            controllers,
            wear: None,
            levelers: None,
            sample_epoch: 0,
            samples: Vec::new(),
            bad_rows: HashMap::new(),
            spares_used: HashMap::new(),
            retired: HashMap::new(),
            read_only: HashSet::new(),
            capacity_exhausted: false,
            fast_forward: true,
            observer: None,
            now: Cycle::ZERO,
            next_id: 0,
            stats: SystemStats::new(),
        })
    }

    /// Enables the observability layer (request lifecycle spans, the S×C
    /// tile heatmap, and Chrome trace export), sized from the configured
    /// bank geometry. Idempotent per run: calling it again replaces the
    /// observer with a fresh one.
    pub fn enable_observer(&mut self) {
        let g = &self.config.geometry;
        // The attribution classifier needs the model facts: which bank
        // resources exist and which structural modes are on.
        let (serialized, full_row_sense, write_blocks_bank) = match self.config.bank_model {
            BankModel::Baseline | BankModel::Dram => (true, true, true),
            BankModel::Fgnvm {
                partial_activation,
                multi_activation,
                background_writes,
            } => (!multi_activation, !partial_activation, !background_writes),
        };
        let timing = self
            .config
            .timing
            .to_cycles()
            .expect("config validated at construction");
        let t_faw = matches!(self.config.bank_model, BankModel::Dram)
            .then(|| RefreshCycles::ddr3_like().t_faw.raw());
        self.observer = Some(Box::new(Observer::with_params(AttributionParams {
            sags: g.sags(),
            cds: g.cds(),
            serialized,
            full_row_sense,
            write_blocks_bank,
            t_rcd: timing.t_rcd.raw(),
            t_wp: timing.t_wp.raw(),
            t_faw,
            banks_per_rank: g.banks_per_rank(),
        })));
    }

    /// The observer, if enabled.
    pub fn observer(&self) -> Option<&Observer> {
        self.observer.as_deref()
    }

    /// Mutable access to the observer, if enabled (drivers use this to
    /// roll telemetry windows at boundary landings).
    pub fn observer_mut(&mut self) -> Option<&mut Observer> {
        self.observer.as_deref_mut()
    }

    /// Detaches and returns the observer (ends observation).
    pub fn take_observer(&mut self) -> Option<Box<Observer>> {
        self.observer.take()
    }

    /// Enables continuous telemetry (windowed time-series engine + flight
    /// recorder) on the observer, attaching an observer first if none is
    /// enabled. Replaces any existing telemetry state.
    pub fn enable_telemetry(&mut self, window_cycles: u64, retention: usize, flight: usize) {
        if self.observer.is_none() {
            self.enable_observer();
        }
        let obs = self.observer.as_deref_mut().expect("observer just enabled");
        obs.enable_timeseries(window_cycles, retention);
        obs.enable_flight(flight);
    }

    /// Enables the issue-audit layer (per-decision records, measured
    /// co-issue opportunity) on the observer, attaching an observer first
    /// if none is enabled. Idempotent: an already-running audit keeps its
    /// accumulated log.
    pub fn enable_audit(&mut self) {
        if self.observer.is_none() {
            self.enable_observer();
        }
        let obs = self.observer.as_deref_mut().expect("observer just enabled");
        obs.enable_audit();
    }

    /// Channels currently in write-drain mode.
    pub fn draining_channels(&self) -> usize {
        self.controllers.iter().filter(|c| c.is_draining()).count()
    }

    /// Samples queue occupancy and drain state into the telemetry gauges,
    /// so the next window to close records the occupancy at its end cycle.
    /// No-op without an observer or with telemetry disabled.
    pub fn sample_telemetry_gauges(&mut self) {
        let read_queue = self.read_queue_len() as u64;
        let write_queue = self.write_queue_len() as u64;
        let draining = self.draining_channels() as u64;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.set_telemetry_gauges(read_queue, write_queue, draining);
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Presents a request. Returns its id when accepted (or satisfied
    /// immediately by forwarding/merging), or `None` when the target queue
    /// is full — the caller should stall and retry.
    pub fn enqueue(&mut self, op: Op, addr: PhysAddr) -> Option<RequestId> {
        self.enqueue_for(op, addr, 0)
    }

    /// Like [`enqueue`](Self::enqueue), but tags the request as belonging
    /// to `tenant`. The tag rides the request through the controller into
    /// its completion, the per-tenant [`SystemStats`] counters, and every
    /// observer hook.
    pub fn enqueue_for(&mut self, op: Op, addr: PhysAddr, tenant: u16) -> Option<RequestId> {
        let addr = addr.line_aligned(self.config.geometry.line_bytes());
        let mut decoded = self.mapper.decode(addr);
        let global_bank = self.global_bank(decoded.channel, decoded.rank, decoded.bank);
        // Wear leveling rotates the logical→physical row mapping.
        if let Some(levelers) = &self.levelers {
            let leveler = &levelers[global_bank];
            let leveled_rows = self.config.geometry.rows_per_bank() - 1;
            // One physical row per bank is the Start-Gap spare; the top
            // logical row aliases its neighbour (a real system would
            // expose one row less of capacity to software).
            let logical = decoded.row.min(leveled_rows - 1);
            decoded.row = leveler.map(logical);
        }
        let outcome = self.enqueue_physical(op, addr, decoded, tenant);
        if outcome.is_some() && op.is_write() {
            if let Some(wear) = &mut self.wear {
                wear.record(global_bank as u32, decoded.row);
            }
            self.note_leveled_write(global_bank);
        }
        outcome
    }

    /// Enqueues at already-resolved physical coordinates (used for
    /// wear-leveling row copies, which must bypass the remapping).
    fn enqueue_physical(
        &mut self,
        op: Op,
        addr: PhysAddr,
        mut decoded: fgnvm_types::address::DecodedAddr,
        tenant: u16,
    ) -> Option<RequestId> {
        let bank_index =
            (decoded.rank * self.config.geometry.banks_per_rank() + decoded.bank) as usize;
        if op.is_write() && self.read_only.contains(&(decoded.channel, bank_index)) {
            // Stage three of the wear-out ladder: the bank is frozen
            // read-only. Reads (including forwarding) keep working.
            self.stats.read_only_write_rejections += 1;
            return None;
        }
        decoded.row = self.remapped_row(decoded.channel, bank_index, decoded.row);
        let coord = self.mapper.tile_coord(decoded);
        let id = RequestId::new(self.next_id);
        let pending = Pending {
            request: Request::new(id, op, addr, self.now).with_tenant(tenant),
            decoded,
            access: Access {
                op,
                row: decoded.row,
                line: decoded.line,
                coord,
            },
            bank_index,
        };
        let controller = &mut self.controllers[decoded.channel as usize];
        match controller.enqueue(pending, self.now, &mut self.stats) {
            Enqueue::Accepted | Enqueue::Satisfied => {
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_enqueued(id.raw(), op.is_read(), tenant, self.now.raw());
                }
                self.next_id += 1;
                Some(id)
            }
            Enqueue::Full => None,
        }
    }

    /// Steers accesses away from rows the ECC layer declared dead. Identity
    /// for healthy rows; rows in the bad-row table go to their spare,
    /// following chains: a spare serving as a remap target can itself fail
    /// later and be remapped onward, and accesses must land on the live end.
    /// Chains are acyclic — a remap target is never a known-failing row at
    /// allocation time — so the walk terminates.
    fn remapped_row(&self, channel: u32, bank_index: usize, row: u32) -> u32 {
        let mut current = row;
        while let Some(&spare) = self.bad_rows.get(&(channel, bank_index, current)) {
            current = spare;
        }
        current
    }

    /// Rows remapped to spares so far (graceful-degradation table size).
    pub fn remapped_row_count(&self) -> usize {
        self.bad_rows.len()
    }

    /// Rows retired outright (failed with no spare available), device-wide.
    pub fn retired_row_count(&self) -> u64 {
        self.stats.retired_rows
    }

    /// Banks currently frozen in read-only mode by the escalation ladder.
    pub fn read_only_bank_count(&self) -> usize {
        self.read_only.len()
    }

    /// True once the wear-out ladder reached its final stage: the
    /// read-only bank count crossed the configured capacity floor.
    pub fn capacity_exhausted(&self) -> bool {
        self.capacity_exhausted
    }

    /// Device-health check for drivers: `Ok` while capacity remains.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CapacityExhausted`] once enough banks have
    /// dropped to read-only mode (see
    /// `ReliabilityConfig::capacity_exhausted_banks`). The system keeps
    /// serving reads past this point; the error is the signal that a
    /// long-horizon run has reached end-of-life.
    pub fn check_capacity(&self) -> Result<(), SimError> {
        if self.capacity_exhausted {
            Err(SimError::CapacityExhausted {
                read_only_banks: self.read_only.len() as u32,
                threshold: self.config.reliability.capacity_exhausted_banks,
                retired_rows: self.stats.retired_rows,
                now: self.now.raw(),
            })
        } else {
            Ok(())
        }
    }

    fn global_bank(&self, channel: u32, rank: u32, bank: u32) -> usize {
        let g = &self.config.geometry;
        ((channel * g.ranks_per_channel() + rank) * g.banks_per_rank() + bank) as usize
    }

    /// Advances the bank's Start-Gap state and issues the gap-copy traffic
    /// when a rotation fires. The copy is modeled as one internal row read
    /// plus one internal write through the normal request path (real
    /// hardware streams the copy through the row buffer), so its bandwidth
    /// and energy costs appear in the statistics.
    fn note_leveled_write(&mut self, global_bank: usize) {
        let Some(levelers) = &mut self.levelers else {
            return;
        };
        let Some(rotation) = levelers[global_bank].note_write() else {
            return;
        };
        let g = self.config.geometry;
        let banks = g.banks_per_rank();
        let ranks = g.ranks_per_channel();
        let channel = global_bank as u32 / (ranks * banks);
        let rank = (global_bank as u32 / banks) % ranks;
        let bank = global_bank as u32 % banks;
        let src = fgnvm_types::address::DecodedAddr {
            channel,
            rank,
            bank,
            row: rotation.src_row,
            line: 0,
        };
        let dst = fgnvm_types::address::DecodedAddr {
            row: rotation.dst_row,
            ..src
        };
        let src_addr = self.mapper.encode(src);
        let dst_addr = self.mapper.encode(dst);
        // Best effort: if the queues are full the copy traffic is simply
        // deferred to the bank's next rotation (the mapping has already
        // moved; only the modeled copy cost is skipped).
        let _ = self.enqueue_physical(Op::Read, src_addr, src, 0);
        if self.enqueue_physical(Op::Write, dst_addr, dst, 0).is_some() {
            if let Some(wear) = &mut self.wear {
                wear.record(global_bank as u32, rotation.dst_row);
            }
        }
    }

    /// Enables per-(bank, row) write counting; see [`wear`](Self::wear).
    pub fn enable_wear_tracking(&mut self) {
        let g = &self.config.geometry;
        self.wear = Some(WearTracker::new(g.total_banks(), g.rows_per_bank()));
    }

    /// Enables Start-Gap wear leveling with a gap movement every
    /// `interval` writes per bank (classic value: 100).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `interval` is zero or the geometry has
    /// fewer than two rows per bank.
    pub fn enable_start_gap(&mut self, interval: u32) -> Result<(), fgnvm_types::ConfigError> {
        let g = &self.config.geometry;
        if g.rows_per_bank() < 2 {
            return Err(fgnvm_types::ConfigError::Invalid {
                field: "rows_per_bank",
                reason: "start-gap needs at least two rows (one spare)",
            });
        }
        let mut levelers = Vec::with_capacity(g.total_banks() as usize);
        for _ in 0..g.total_banks() {
            levelers.push(StartGap::new(g.rows_per_bank() - 1, interval)?);
        }
        self.levelers = Some(levelers);
        Ok(())
    }

    /// Enables per-channel command logging (most recent `capacity`
    /// commands each); see [`command_log`](Self::command_log).
    pub fn enable_command_log(&mut self, capacity: usize) {
        for c in &mut self.controllers {
            c.enable_command_log(capacity);
        }
    }

    /// The command log of `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn command_log(&self, channel: u32) -> &crate::cmdlog::CommandLog {
        self.controllers[channel as usize].command_log()
    }

    /// Occupancy snapshots for every bank, channel-major (see
    /// [`fgnvm_bank::OccupancySnapshot`]). Models without introspection
    /// contribute empty snapshots.
    pub fn bank_occupancy(&self) -> Vec<fgnvm_bank::OccupancySnapshot> {
        self.controllers
            .iter()
            .flat_map(Controller::occupancy)
            .collect()
    }

    /// Test-only: deliberately breaks every channel's scheduler (see
    /// `Controller::set_chaos`). Exists so the `fgnvm-check` conformance
    /// oracle and fuzzer can prove they catch scheduler bugs; never enable
    /// outside tests.
    #[doc(hidden)]
    pub fn debug_force_illegal_issue(&mut self, enabled: bool) {
        for c in &mut self.controllers {
            c.set_chaos(enabled);
        }
    }

    /// Enables time-series sampling every `epoch_cycles` cycles (see
    /// [`samples`](Self::samples)). Pass 0 to disable.
    pub fn enable_sampling(&mut self, epoch_cycles: u64) {
        self.sample_epoch = epoch_cycles;
        self.samples.clear();
    }

    /// Samples collected so far (cumulative counters; diff neighbours for
    /// per-epoch rates).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The wear counters, if tracking was enabled.
    pub fn wear(&self) -> Option<&WearTracker> {
        self.wear.as_ref()
    }

    /// Total Start-Gap rotations across banks, if leveling is enabled.
    pub fn start_gap_rotations(&self) -> Option<u64> {
        self.levelers
            .as_ref()
            .map(|ls| ls.iter().map(StartGap::rotations).sum())
    }

    /// Advances one memory cycle, returning any completions that finished.
    pub fn tick(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        self.tick_into(&mut out);
        out
    }

    /// Advances one memory cycle, appending completions to `out` (avoids
    /// per-cycle allocation in hot loops).
    pub fn tick_into(&mut self, out: &mut Vec<Completion>) {
        self.tick_into_report(out);
    }

    /// Like [`tick_into`](Self::tick_into), additionally reporting whether
    /// any controller issued a command. The fast-forward loops use this to
    /// detect dead cycles without re-deriving the issue decision.
    fn tick_into_report(&mut self, out: &mut Vec<Completion>) -> bool {
        // Spare rows reserved at the top of each bank for remapping;
        // once they run out, failing rows escalate down the wear-out
        // ladder: retirement → per-bank read-only → capacity exhaustion.
        let spare_rows = self.config.reliability.spare_rows_per_bank;
        let mut issued_any = false;
        for (channel, controller) in self.controllers.iter_mut().enumerate() {
            issued_any |=
                controller.tick(self.now, &mut self.stats, out, self.observer.as_deref_mut());
            for (bank_index, row) in controller.take_bad_rows() {
                let key = (channel as u32, bank_index, row);
                if self.bad_rows.contains_key(&key) {
                    continue;
                }
                let used = self
                    .spares_used
                    .entry((channel as u32, bank_index))
                    .or_insert(0);
                while *used < spare_rows {
                    let spare = self.config.geometry.rows_per_bank() - 1 - *used;
                    *used += 1;
                    if spare == row {
                        // The failing row is itself in the spare region;
                        // burn the slot but leave it unmapped.
                        break;
                    }
                    if self
                        .bad_rows
                        .contains_key(&(channel as u32, bank_index, spare))
                    {
                        // The candidate spare has itself already failed:
                        // handing it out would alias two logical rows onto
                        // one dead physical row. Burn it and keep looking.
                        self.stats.remap_collisions += 1;
                        continue;
                    }
                    self.bad_rows.insert(key, spare);
                    self.stats.remapped_rows += 1;
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.on_instant(
                            InstantKind::Remap,
                            channel as u32,
                            bank_index as u32,
                            self.now.raw(),
                        );
                    }
                    break;
                }
                if self.bad_rows.contains_key(&key) {
                    continue;
                }
                // No spare could absorb the failure: retire the row
                // outright (permanent capacity loss) and walk the ladder.
                let bank_key = (channel as u32, bank_index);
                let retired = self.retired.entry(bank_key).or_insert(0);
                *retired += 1;
                let bank_retired = *retired;
                self.stats.retired_rows += 1;
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_instant(
                        InstantKind::RowRetired,
                        channel as u32,
                        bank_index as u32,
                        self.now.raw(),
                    );
                }
                let threshold = self.config.reliability.read_only_row_threshold;
                if threshold > 0 && bank_retired >= threshold && self.read_only.insert(bank_key) {
                    // The bank has lost too many rows: freeze it read-only
                    // so the surviving data stays reachable.
                    self.stats.read_only_banks += 1;
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.on_instant(
                            InstantKind::BankReadOnly,
                            channel as u32,
                            bank_index as u32,
                            self.now.raw(),
                        );
                    }
                    let floor = self.config.reliability.capacity_exhausted_banks;
                    if floor > 0 && self.read_only.len() as u32 >= floor && !self.capacity_exhausted
                    {
                        self.capacity_exhausted = true;
                        if let Some(obs) = self.observer.as_deref_mut() {
                            obs.on_instant(
                                InstantKind::CapacityExhausted,
                                channel as u32,
                                bank_index as u32,
                                self.now.raw(),
                            );
                        }
                    }
                }
            }
        }
        if self.sample_epoch > 0
            && self.now.raw() > 0
            && self.now.raw().is_multiple_of(self.sample_epoch)
        {
            // Cycle 0 is deliberately not sampled: no work can have
            // happened yet, and the empty sample would skew epoch diffs.
            self.record_sample(self.now);
        }
        self.now.advance();
        issued_any
    }

    /// Records one time-series sample stamped `at` from the current
    /// counters (shared by the per-tick sampler and the fast-forward
    /// backfill, which must produce identical samples).
    fn record_sample(&mut self, at: Cycle) {
        let banks = self.bank_stats();
        self.samples.push(Sample {
            at,
            completed_reads: self.stats.completed_reads,
            sensed_bits: banks.sensed_bits,
            written_bits: banks.written_bits,
            read_queue: self.read_queue_len(),
            write_queue: self.write_queue_len(),
        });
    }

    /// The earliest instant at or after [`now`](Self::now) at which a tick
    /// could change state — retire a completion or issue a command — across
    /// all channels. `None` when the system is idle (no instant ever will).
    ///
    /// The result is a lower bound (see
    /// [`Bank::next_ready_hint`](fgnvm_bank::Bank::next_ready_hint) for the
    /// contract): ticking at it may still do nothing, but skipping to it
    /// can never jump over real work, which is what makes fast-forward
    /// bit-identical to cycle-stepping.
    pub fn next_event_at(&self) -> Option<Cycle> {
        let mut earliest: Option<Cycle> = None;
        for c in &self.controllers {
            if let Some(at) = c.next_event_at(self.now) {
                earliest = Some(match earliest {
                    Some(e) => e.min(at),
                    None => at,
                });
                if at <= self.now {
                    break; // cannot get any earlier
                }
            }
        }
        earliest
    }

    /// The reference implementation of [`next_event_at`](Self::next_event_at):
    /// a full linear scan of every channel's event heap and queued-request
    /// bank gates, bypassing the per-channel calendar memo. The memoized
    /// path must agree exactly; the calendar differential suite pins it.
    pub fn next_event_at_linear(&self) -> Option<Cycle> {
        self.controllers
            .iter()
            .filter_map(|c| c.next_event_at_linear(self.now))
            .min()
    }

    /// True while any channel has a completion event scheduled.
    fn has_pending_events(&self) -> bool {
        self.controllers.iter().any(Controller::has_pending_events)
    }

    /// Jumps the clock to `target`, accounting for everything the skipped
    /// ticks would have done. Only sound when [`next_event_at`] proved the
    /// skipped range dead (no retirement or issue possible), which leaves
    /// queue and bank state frozen: the per-tick queue-depth statistics are
    /// bulk-added and every crossed sampler epoch is backfilled, so a
    /// fast-forwarded run stays bit-identical to a cycle-stepped one.
    ///
    /// [`next_event_at`]: Self::next_event_at
    fn skip_to(&mut self, target: Cycle) {
        debug_assert!(target > self.now, "skip must move the clock forward");
        let skipped = target.saturating_since(self.now).raw();
        for c in &mut self.controllers {
            c.account_skipped_cycles(skipped, &mut self.stats);
            // The elided ticks would each have settled the write-drain
            // hysteresis; occupancy is frozen across the skip, so one
            // update folds them all (see `Controller::settle_drain`).
            // Settling here keeps the flag's trajectory — and with it the
            // snapshot bytes — identical to a cycle-stepped run even when
            // enqueues land between sparse ticks.
            c.settle_drain();
        }
        if self.sample_epoch > 0 {
            // Backfill the sample every skipped tick in [now, target) would
            // have recorded; counters are frozen across the skip, so the
            // current values are exactly what those ticks would have seen.
            let epoch = self.sample_epoch;
            let mut boundary = self.now.raw().next_multiple_of(epoch);
            if boundary == 0 {
                boundary = epoch; // cycle 0 is never sampled
            }
            while boundary < target.raw() {
                self.record_sample(Cycle::new(boundary));
                boundary += epoch;
            }
        }
        self.now.advance_to(target);
    }

    /// Advances the clock to exactly `target`, appending completions —
    /// observably identical to calling [`tick_into`](Self::tick_into) in a
    /// loop until [`now`](Self::now) reaches `target`, but with dead
    /// stretches jumped in O(1) when fast-forward is enabled.
    pub fn tick_to(&mut self, target: Cycle, out: &mut Vec<Completion>) {
        while self.now < target {
            if self.fast_forward {
                match self.next_event_at() {
                    None => {
                        self.skip_to(target);
                        break;
                    }
                    Some(at) if at >= target => {
                        self.skip_to(target);
                        break;
                    }
                    Some(at) if at > self.now => {
                        self.skip_to(at);
                    }
                    Some(_) => {}
                }
            }
            self.tick_into(out);
        }
    }

    /// Enables or disables event-driven fast-forward (enabled by default).
    /// Both modes produce bit-identical completions, statistics, command
    /// logs, and samples — they differ only in wall-clock speed. The
    /// differential tests pin that equivalence; disabling is useful mainly
    /// for those tests and for debugging the fast path itself.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
        for c in &mut self.controllers {
            // Event-driven operation affords the controllers an O(banks)
            // issue-gate pre-check per (sparse) tick; stepped mode keeps
            // the plain per-cycle reference path. Both are bit-identical.
            c.set_event_driven(enabled);
        }
    }

    /// True while event-driven fast-forward is enabled.
    pub fn fast_forward_enabled(&self) -> bool {
        self.fast_forward
    }

    /// Runs until every queue and event list is empty, or `max_cycles`
    /// elapse. Returns all completions observed.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to drain within `max_cycles` — queued
    /// work should always finish, so hitting the bound indicates a deadlock.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        let deadline = self.now + CycleCount::new(max_cycles);
        while !self.is_idle() {
            assert!(
                self.now < deadline,
                "memory system failed to drain in {max_cycles} cycles"
            );
            if self.fast_forward {
                if let Some(at) = self.next_event_at() {
                    // Jump the dead stretch; cap at the deadline so a
                    // wedged system still hits the same panic at the same
                    // instant as a cycle-stepped run.
                    let hop = at.min(deadline);
                    if hop > self.now {
                        self.skip_to(hop);
                        continue;
                    }
                }
            }
            self.tick_into(&mut out);
        }
        out
    }

    /// Runs until every queue and event list is empty, converting a stall
    /// into a structured [`SimError::Watchdog`] instead of panicking: if no
    /// request completes for `stall_cycles` consecutive cycles while work
    /// is still pending, the watchdog trips and the error carries the queue
    /// occupancies plus a per-channel state dump for diagnosis.
    ///
    /// This is the graceful counterpart of
    /// [`run_until_idle`](Self::run_until_idle) for workloads (wedged
    /// reliability configs, adversarial traces) where forward progress is
    /// not guaranteed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Watchdog`] when the system makes no progress for
    /// `stall_cycles` cycles with requests still outstanding.
    pub fn try_run_until_idle(&mut self, stall_cycles: u64) -> Result<Vec<Completion>, SimError> {
        let mut out = Vec::new();
        let mut last_progress = self.now;
        while !self.is_idle() {
            if self.now.saturating_since(last_progress).raw() >= stall_cycles {
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_instant(InstantKind::Watchdog, 0, 0, self.now.raw());
                }
                return Err(self.watchdog_error(stall_cycles));
            }
            if self.fast_forward {
                if let Some(at) = self.next_event_at() {
                    // Cap each hop at the watchdog horizon so a
                    // fast-forwarded run trips at exactly the same instant,
                    // with the same diagnostic snapshot, as a stepped one.
                    let horizon = last_progress + CycleCount::new(stall_cycles);
                    let hop = at.min(horizon);
                    if hop > self.now {
                        self.skip_to(hop);
                        // Mirror the stepped loop across the skipped
                        // stretch: events cannot retire during a skip, so
                        // if one is pending now it was pending at every
                        // skipped tick, each of which would have refreshed
                        // `last_progress`.
                        if self.has_pending_events() {
                            last_progress = self.now;
                        }
                        continue;
                    }
                }
            }
            let before = out.len();
            self.tick_into(&mut out);
            // Progress is a completion — observed, or still in flight: a
            // pending event retires at a known finite instant, so the long
            // (1+k)·tWP lock window of a legitimate retried write is not a
            // stall. A genuinely wedged system has neither: verify-failed
            // writes bounce back to the queue *without* scheduling an
            // event, so its event heaps stay empty and the watchdog trips.
            if out.len() > before || self.has_pending_events() {
                last_progress = self.now;
            }
        }
        Ok(out)
    }

    /// Builds the watchdog error with a snapshot of every channel's state.
    fn watchdog_error(&self, stall_cycles: u64) -> SimError {
        let mut state = String::new();
        for (channel, controller) in self.controllers.iter().enumerate() {
            state.push_str(&format!(
                "channel {channel}: {}\n",
                controller.state_dump(self.now)
            ));
        }
        SimError::Watchdog {
            stall_cycles,
            now: self.now.raw(),
            read_queue: self.read_queue_len(),
            write_queue: self.write_queue_len(),
            state,
        }
    }

    /// True when no requests are queued or in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.controllers.iter().all(Controller::is_idle)
    }

    /// System-level counters.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Exports the system's counters and gauges into `reg` under the
    /// `mem.*` namespace: queue traffic, latency aggregates and
    /// percentiles, reliability events, wear, energy, and bus occupancy.
    pub fn export_metrics(&self, reg: &mut fgnvm_obs::Registry) {
        let s = &self.stats;
        reg.set_counter("mem.enqueued_reads", s.enqueued_reads);
        reg.set_counter("mem.enqueued_writes", s.enqueued_writes);
        reg.set_counter("mem.forwarded_reads", s.forwarded_reads);
        reg.set_counter("mem.merged_writes", s.merged_writes);
        reg.set_counter("mem.completed_reads", s.completed_reads);
        reg.set_counter("mem.completed_writes", s.completed_writes);
        reg.set_counter("mem.rejected", s.rejected);
        reg.set_gauge("mem.avg_read_latency", s.avg_read_latency());
        reg.set_gauge("mem.avg_write_latency", s.avg_write_latency());
        reg.set_counter("mem.read_p50", s.read_latency_percentile(0.50));
        reg.set_counter("mem.read_p95", s.read_latency_percentile(0.95));
        reg.set_counter("mem.read_p99", s.read_latency_percentile(0.99));
        reg.set_counter("mem.read_latency_max", s.read_latency_max.raw());
        reg.set_counter("mem.write_p50", s.write_latency_percentile(0.50));
        reg.set_counter("mem.write_p95", s.write_latency_percentile(0.95));
        reg.set_counter("mem.write_p99", s.write_latency_percentile(0.99));
        reg.set_counter("mem.write_latency_max", s.write_latency_max.raw());
        reg.set_gauge("mem.avg_read_queue_depth", s.avg_read_queue_depth());
        reg.set_counter("mem.corrected_errors", s.corrected_errors);
        reg.set_counter("mem.uncorrectable_errors", s.uncorrectable_errors);
        reg.set_counter("mem.remapped_rows", s.remapped_rows);
        reg.set_counter("mem.remap_collisions", s.remap_collisions);
        reg.set_counter("mem.retired_rows", s.retired_rows);
        reg.set_counter("mem.read_only_banks", s.read_only_banks);
        reg.set_counter(
            "mem.read_only_write_rejections",
            s.read_only_write_rejections,
        );
        reg.set_counter("mem.reissued_writes", s.reissued_writes);
        reg.set_counter("mem.bus_busy_cycles", self.bus_busy_cycles().raw());
        reg.set_gauge("mem.bank_load_imbalance", self.bank_load_imbalance());
        let energy = self.energy();
        reg.set_gauge("mem.energy.sense_pj", energy.sense_pj);
        reg.set_gauge("mem.energy.write_pj", energy.write_pj);
        reg.set_gauge("mem.energy.background_pj", energy.background_pj);
        if let Some(wear) = &self.wear {
            reg.set_counter("mem.wear.total_writes", wear.total_writes());
            reg.set_counter("mem.wear.max_row_writes", u64::from(wear.max_row_writes()));
            reg.set_gauge("mem.wear.imbalance", wear.imbalance());
        }
        if let Some(rotations) = self.start_gap_rotations() {
            reg.set_counter("mem.start_gap_rotations", rotations);
        }
        // Per-tenant counters appear only once a tagged request has been
        // seen (single-tenant runs keep their metric set unchanged aside
        // from the implicit tenant-0 block).
        for (i, t) in s.tenants.iter().enumerate() {
            let p = format!("mem.tenant.{i}");
            reg.set_counter(&format!("{p}.enqueued_reads"), t.enqueued_reads);
            reg.set_counter(&format!("{p}.enqueued_writes"), t.enqueued_writes);
            reg.set_counter(&format!("{p}.completed_reads"), t.completed_reads);
            reg.set_counter(&format!("{p}.completed_writes"), t.completed_writes);
            reg.set_counter(&format!("{p}.read_latency_total"), t.read_latency_total);
            reg.set_counter(&format!("{p}.write_latency_total"), t.write_latency_total);
            reg.set_counter(&format!("{p}.read_p50"), t.read_latency_percentile(0.50));
            reg.set_counter(&format!("{p}.read_p95"), t.read_latency_percentile(0.95));
            reg.set_counter(&format!("{p}.read_p99"), t.read_latency_percentile(0.99));
            reg.set_counter(&format!("{p}.write_p99"), t.write_latency_percentile(0.99));
        }
        self.bank_stats().export_metrics(reg, "bank");
    }

    /// Aggregated per-bank counters across all channels.
    pub fn bank_stats(&self) -> BankStats {
        let mut total = BankStats::new();
        for c in &self.controllers {
            total += c.bank_stats();
        }
        total
    }

    /// Per-bank counters across all channels, in (channel, rank, bank)
    /// order. Useful for spotting load imbalance.
    pub fn bank_stats_per_bank(&self) -> Vec<BankStats> {
        self.controllers
            .iter()
            .flat_map(Controller::bank_stats_per_bank)
            .collect()
    }

    /// Coefficient of variation of per-bank access counts (reads + writes):
    /// 0 = perfectly balanced load; large values mean a few banks carry the
    /// traffic. Zero when nothing was accessed.
    pub fn bank_load_imbalance(&self) -> f64 {
        let loads: Vec<f64> = self
            .bank_stats_per_bank()
            .iter()
            .map(|s| (s.reads + s.writes) as f64)
            .collect();
        let total: f64 = loads.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let mean = total / loads.len() as f64;
        let var = loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / loads.len() as f64;
        var.sqrt() / mean
    }

    /// Energy consumed so far, per the paper's model.
    pub fn energy(&self) -> EnergyBreakdown {
        self.energy_model
            .breakdown(&self.bank_stats(), self.now.saturating_since(Cycle::ZERO))
    }

    /// Total data-bus occupancy across channels.
    pub fn bus_busy_cycles(&self) -> CycleCount {
        self.controllers
            .iter()
            .map(Controller::bus_busy_cycles)
            .sum()
    }

    /// Occupancy of the channel read queues (for backpressure inspection).
    pub fn read_queue_len(&self) -> usize {
        self.controllers
            .iter()
            .map(Controller::read_queue_len)
            .sum()
    }

    /// Occupancy of the channel write queues.
    pub fn write_queue_len(&self) -> usize {
        self.controllers
            .iter()
            .map(Controller::write_queue_len)
            .sum()
    }

    /// The address mapper in use (exposed for trace generators that want to
    /// target specific banks/rows).
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Enqueues a speculative prefetch read. Prefetches are deprioritized
    /// by the scheduler (demand misses go first) and throttled at the
    /// door: when the target channel's read queue is more than ¾ full the
    /// prefetch is dropped (`None`) so speculation never starves demand.
    pub fn enqueue_prefetch(&mut self, addr: PhysAddr) -> Option<RequestId> {
        let addr = addr.line_aligned(self.config.geometry.line_bytes());
        let decoded = self.mapper.decode(addr);
        let controller = &self.controllers[decoded.channel as usize];
        if controller.read_queue_len() * 4 > self.config.queue_entries * 3 {
            return None;
        }
        let mut decoded = decoded;
        if let Some(levelers) = &self.levelers {
            let global_bank = self.global_bank(decoded.channel, decoded.rank, decoded.bank);
            let leveled_rows = self.config.geometry.rows_per_bank() - 1;
            let logical = decoded.row.min(leveled_rows - 1);
            decoded.row = levelers[global_bank].map(logical);
        }
        let bank_index =
            (decoded.rank * self.config.geometry.banks_per_rank() + decoded.bank) as usize;
        decoded.row = self.remapped_row(decoded.channel, bank_index, decoded.row);
        let coord = self.mapper.tile_coord(decoded);
        let id = RequestId::new(self.next_id);
        let pending = Pending {
            request: Request::new(id, Op::Read, addr, self.now).as_prefetch(),
            decoded,
            access: Access {
                op: Op::Read,
                row: decoded.row,
                line: decoded.line,
                coord,
            },
            bank_index,
        };
        let controller = &mut self.controllers[decoded.channel as usize];
        match controller.enqueue(pending, self.now, &mut self.stats) {
            Enqueue::Accepted | Enqueue::Satisfied => {
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_enqueued(id.raw(), true, 0, self.now.raw());
                }
                self.next_id += 1;
                Some(id)
            }
            Enqueue::Full => None,
        }
    }

    /// Enqueues a timed write carrying functional data: the store is
    /// updated in program order (so later reads observe it via
    /// [`peek`](Self::peek)) and the timing write proceeds through the
    /// write queue as usual. Returns `None` — with the store untouched —
    /// when the write queue is full.
    pub fn enqueue_write_data(&mut self, addr: PhysAddr, data: &[u8]) -> Option<RequestId> {
        let id = self.enqueue(Op::Write, addr)?;
        self.data.write(addr, data);
        Some(id)
    }

    /// Functional write without any timing traffic (architectural poke;
    /// use for initializing memory images).
    pub fn poke(&mut self, addr: PhysAddr, data: &[u8]) {
        self.data.write(addr, data);
    }

    /// Functional read of the current architectural state (zeros where
    /// never written). Timing is modeled separately via
    /// [`enqueue`](Self::enqueue).
    pub fn peek(&self, addr: PhysAddr, buf: &mut [u8]) {
        self.data.read(addr, buf);
    }

    /// The functional backing store.
    pub fn data(&self) -> &DataStore {
        &self.data
    }

    /// Serializes the complete mutable simulation state — clock, stats,
    /// queues, in-flight events, bank FSMs, fault/wear/remap tables,
    /// sampler, escalation-ladder state, and the observer (when enabled) —
    /// into a versioned, checksummed byte image.
    ///
    /// The configuration itself is *not* stored; a fingerprint of it is,
    /// and [`restore`](Self::restore) rebuilds the structure from the
    /// caller-supplied configuration before overlaying this state. The
    /// invariant the differential tests pin: `restore(config, snapshot)`
    /// continued to any horizon is bit-identical — stats, samples, command
    /// logs, observer artifacts — to the uninterrupted run.
    pub fn save_snapshot(&self) -> Vec<u8> {
        let mut w = fgnvm_types::SnapshotWriter::new();
        w.tag("memsys");
        w.u64(fgnvm_types::snapshot::fnv1a64(
            format!("{:?}", self.config).as_bytes(),
        ));
        w.u64(self.now.raw());
        w.u64(self.next_id);
        w.bool(self.fast_forward);
        w.u64(self.sample_epoch);
        self.stats.save_state(&mut w);
        self.data.save_state(&mut w);
        w.bool(self.wear.is_some());
        if let Some(wear) = &self.wear {
            wear.save_state(&mut w);
        }
        w.bool(self.levelers.is_some());
        if let Some(levelers) = &self.levelers {
            w.usize(levelers.len());
            for l in levelers {
                l.save_state(&mut w);
            }
        }
        w.usize(self.samples.len());
        for s in &self.samples {
            w.u64(s.at.raw());
            w.u64(s.completed_reads);
            w.u64(s.sensed_bits);
            w.u64(s.written_bits);
            w.usize(s.read_queue);
            w.usize(s.write_queue);
        }
        let mut bad: Vec<((u32, usize, u32), u32)> =
            self.bad_rows.iter().map(|(k, v)| (*k, *v)).collect();
        bad.sort_unstable();
        w.usize(bad.len());
        for ((channel, bank, row), spare) in bad {
            w.u32(channel);
            w.usize(bank);
            w.u32(row);
            w.u32(spare);
        }
        let mut spares: Vec<((u32, usize), u32)> =
            self.spares_used.iter().map(|(k, v)| (*k, *v)).collect();
        spares.sort_unstable();
        w.usize(spares.len());
        for ((channel, bank), used) in spares {
            w.u32(channel);
            w.usize(bank);
            w.u32(used);
        }
        let mut retired: Vec<((u32, usize), u32)> =
            self.retired.iter().map(|(k, v)| (*k, *v)).collect();
        retired.sort_unstable();
        w.usize(retired.len());
        for ((channel, bank), rows) in retired {
            w.u32(channel);
            w.usize(bank);
            w.u32(rows);
        }
        let mut read_only: Vec<(u32, usize)> = self.read_only.iter().copied().collect();
        read_only.sort_unstable();
        w.usize(read_only.len());
        for (channel, bank) in read_only {
            w.u32(channel);
            w.usize(bank);
        }
        w.bool(self.capacity_exhausted);
        w.usize(self.controllers.len());
        for c in &self.controllers {
            c.save_state(&mut w);
        }
        w.bool(self.observer.is_some());
        if let Some(obs) = self.observer.as_deref() {
            obs.save_state(&mut w);
        }
        w.finish()
    }

    /// Rebuilds a memory system from `config` and overlays the state in
    /// `bytes` (written by [`save_snapshot`](Self::save_snapshot)).
    ///
    /// `config` must be the same configuration the snapshot was taken
    /// under — a fingerprint mismatch is rejected — and the system is
    /// rebuilt with the default address mapping, matching
    /// [`new`](Self::new). Wear tracking, Start-Gap leveling, command
    /// logging, and the observer are re-enabled automatically when the
    /// snapshot carries their state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `config` fails validation, and
    /// [`SimError::Snapshot`] for a truncated, corrupted, or
    /// wrong-configuration checkpoint — never panics on hostile bytes.
    pub fn restore(config: SystemConfig, bytes: &[u8]) -> Result<MemorySystem, SimError> {
        let mut mem = MemorySystem::new(config)?;
        let mut r = fgnvm_types::SnapshotReader::new(bytes)?;
        r.tag("memsys")?;
        let fingerprint = r.u64()?;
        let expected = fgnvm_types::snapshot::fnv1a64(format!("{:?}", mem.config).as_bytes());
        if fingerprint != expected {
            return Err(fgnvm_types::SnapshotError::Corrupt(
                "checkpoint was taken under a different configuration".to_string(),
            )
            .into());
        }
        mem.now = Cycle::new(r.u64()?);
        mem.next_id = r.u64()?;
        mem.fast_forward = r.bool()?;
        mem.sample_epoch = r.u64()?;
        mem.stats = SystemStats::load_state(&mut r)?;
        mem.data = DataStore::load_state(&mut r)?;
        if r.bool()? {
            mem.enable_wear_tracking();
            mem.wear
                .as_mut()
                .expect("wear tracking just enabled")
                .load_state(&mut r)?;
        }
        if r.bool()? {
            let n = r.usize()?;
            // The interval is runtime state inside each leveler's image;
            // enable with a placeholder and let load_state overwrite it.
            mem.enable_start_gap(1).map_err(|e| {
                fgnvm_types::SnapshotError::Corrupt(format!(
                    "checkpoint has start-gap levelers the geometry cannot support: {e}"
                ))
            })?;
            let levelers = mem.levelers.as_mut().expect("start-gap just enabled");
            if n != levelers.len() {
                return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                    "checkpoint has {n} start-gap levelers, geometry needs {}",
                    levelers.len()
                ))
                .into());
            }
            for l in levelers.iter_mut() {
                l.load_state(&mut r)?;
            }
        }
        let n = r.usize()?;
        mem.samples = Vec::with_capacity(n);
        for _ in 0..n {
            mem.samples.push(Sample {
                at: Cycle::new(r.u64()?),
                completed_reads: r.u64()?,
                sensed_bits: r.u64()?,
                written_bits: r.u64()?,
                read_queue: r.usize()?,
                write_queue: r.usize()?,
            });
        }
        let n = r.usize()?;
        mem.bad_rows = HashMap::with_capacity(n);
        for _ in 0..n {
            let key = (r.u32()?, r.usize()?, r.u32()?);
            mem.bad_rows.insert(key, r.u32()?);
        }
        let n = r.usize()?;
        mem.spares_used = HashMap::with_capacity(n);
        for _ in 0..n {
            let key = (r.u32()?, r.usize()?);
            mem.spares_used.insert(key, r.u32()?);
        }
        let n = r.usize()?;
        mem.retired = HashMap::with_capacity(n);
        for _ in 0..n {
            let key = (r.u32()?, r.usize()?);
            mem.retired.insert(key, r.u32()?);
        }
        let n = r.usize()?;
        mem.read_only = HashSet::with_capacity(n);
        for _ in 0..n {
            mem.read_only.insert((r.u32()?, r.usize()?));
        }
        mem.capacity_exhausted = r.bool()?;
        let n = r.usize()?;
        if n != mem.controllers.len() {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "checkpoint has {n} channels, configuration has {}",
                mem.controllers.len()
            ))
            .into());
        }
        for c in mem.controllers.iter_mut() {
            c.load_state(&mut r)?;
        }
        // The restored fast-forward flag must reach the controllers' issue
        // gating too (it is a mode, not channel state, so the channel
        // snapshots do not carry it).
        let event_driven = mem.fast_forward;
        for c in mem.controllers.iter_mut() {
            c.set_event_driven(event_driven);
        }
        if r.bool()? {
            mem.enable_observer();
            mem.observer
                .as_deref_mut()
                .expect("observer just enabled")
                .load_state(&mut r)?;
        }
        r.expect_end()?;
        Ok(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_types::config::SchedulerKind;

    fn read_all(mem: &mut MemorySystem, addrs: &[u64]) -> Vec<Completion> {
        for &a in addrs {
            mem.enqueue(Op::Read, PhysAddr::new(a))
                .expect("queue has room");
        }
        mem.run_until_idle(1_000_000)
    }

    #[test]
    fn single_read_latency_matches_bank_timing() {
        let mut mem = MemorySystem::new(SystemConfig::baseline()).unwrap();
        let id = mem.enqueue(Op::Read, PhysAddr::new(0)).unwrap();
        let done = mem.run_until_idle(10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        // Row miss issued at arrival: tRCD(10) + tCAS(38) + tBURST(4) = 52.
        assert_eq!(done[0].latency().raw(), 52);
    }

    #[test]
    fn writes_complete_and_count() {
        let mut mem = MemorySystem::new(SystemConfig::baseline()).unwrap();
        mem.enqueue(Op::Write, PhysAddr::new(0)).unwrap();
        mem.enqueue(Op::Write, PhysAddr::new(4096)).unwrap();
        let done = mem.run_until_idle(100_000);
        assert_eq!(done.iter().filter(|c| c.op.is_write()).count(), 2);
        assert_eq!(mem.stats().enqueued_writes, 2);
        assert_eq!(mem.bank_stats().writes, 2);
    }

    #[test]
    fn forwarding_serves_read_from_write_queue() {
        let mut mem = MemorySystem::new(SystemConfig::baseline()).unwrap();
        mem.enqueue(Op::Write, PhysAddr::new(0x40)).unwrap();
        mem.enqueue(Op::Read, PhysAddr::new(0x40)).unwrap();
        let done = mem.run_until_idle(100_000);
        assert_eq!(mem.stats().forwarded_reads, 1);
        // The forwarded read completed in one cycle.
        let read = done.iter().find(|c| c.op.is_read()).unwrap();
        assert_eq!(read.latency().raw(), 1);
    }

    #[test]
    fn write_merging_coalesces_same_line() {
        let mut mem = MemorySystem::new(SystemConfig::baseline()).unwrap();
        mem.enqueue(Op::Write, PhysAddr::new(0x80)).unwrap();
        mem.enqueue(Op::Write, PhysAddr::new(0x80)).unwrap();
        mem.run_until_idle(100_000);
        assert_eq!(mem.stats().merged_writes, 1);
        assert_eq!(mem.bank_stats().writes, 1);
    }

    #[test]
    fn queue_backpressure_reports_full() {
        let mut cfg = SystemConfig::baseline();
        cfg.queue_entries = 2;
        let mut mem = MemorySystem::new(cfg).unwrap();
        assert!(mem.enqueue(Op::Read, PhysAddr::new(0)).is_some());
        assert!(mem.enqueue(Op::Read, PhysAddr::new(4096)).is_some());
        // Third read to a busy bank cannot be accepted this cycle.
        assert!(mem.enqueue(Op::Read, PhysAddr::new(8192)).is_none());
        assert_eq!(mem.stats().rejected, 1);
        // After draining there is room again.
        mem.run_until_idle(100_000);
        assert!(mem.enqueue(Op::Read, PhysAddr::new(8192)).is_some());
    }

    #[test]
    fn row_hits_are_faster_than_misses() {
        let mut mem = MemorySystem::new(SystemConfig::baseline()).unwrap();
        // Two reads in the same row: second should be a hit.
        let done = read_all(&mut mem, &[0, 128]);
        assert_eq!(done.len(), 2);
        assert_eq!(mem.bank_stats().row_hits, 1);
    }

    #[test]
    fn fgnvm_bank_conflicts_resolve_faster_than_baseline() {
        // Four reads to different rows of the *same bank*, conflicting in
        // the baseline but spread across SAGs in FgNVM. With the default
        // mapping the row index sits above bit 13, and 8 SAGs partition the
        // 32 Ki rows into 4 Ki-row blocks, so a 32 MB stride changes SAG.
        // Alternate the 512 B half-row so the reads also alternate CDs:
        // four distinct (SAG, CD) pairs for the 8×2 FgNVM.
        let addrs: Vec<u64> = (0..4u64)
            .map(|i| i * 32 * 1024 * 1024 + (i % 2) * 512)
            .collect();
        let mut base = MemorySystem::new(SystemConfig::baseline()).unwrap();
        let mut fg = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        // Verify the addresses indeed share a bank and split across SAGs.
        let d: Vec<_> = addrs
            .iter()
            .map(|&a| fg.mapper().decode(PhysAddr::new(a)))
            .collect();
        assert!(d.iter().all(|x| x.bank == d[0].bank));
        let sags: std::collections::HashSet<u32> = d
            .iter()
            .map(|x| fg.mapper().geometry().sag_of_row(x.row))
            .collect();
        assert!(sags.len() > 1, "rows should span SAGs");
        read_all(&mut base, &addrs);
        read_all(&mut fg, &addrs);
        let base_cycles = base.now().raw();
        let fg_cycles = fg.now().raw();
        assert!(
            fg_cycles < base_cycles,
            "fgnvm ({fg_cycles}) should beat baseline ({base_cycles}) on bank conflicts"
        );
    }

    #[test]
    fn reads_proceed_during_background_write() {
        // One write plus many reads to other SAGs: the TLP scheduler should
        // complete reads while the write programs.
        let mut cfg = SystemConfig::fgnvm(8, 2).unwrap();
        cfg.scheduler = SchedulerKind::FrfcfsTlp;
        let mut mem = MemorySystem::new(cfg).unwrap();
        mem.enqueue(Op::Write, PhysAddr::new(0)).unwrap();
        // Let the write issue (opportunistic drain on the idle read queue).
        mem.tick();
        mem.tick();
        // Same bank, different SAG & CD: issues while the write programs.
        mem.enqueue(Op::Read, PhysAddr::new(32 * 1024 * 1024 + 512))
            .unwrap();
        mem.run_until_idle(100_000);
        assert!(mem.bank_stats().reads_under_write >= 1);
    }

    #[test]
    fn energy_accumulates() {
        let mut mem = MemorySystem::new(SystemConfig::baseline()).unwrap();
        read_all(&mut mem, &[0]);
        let e = mem.energy();
        assert!(e.sense_pj >= 16384.0); // one full-row activation
        assert!(e.background_pj > 0.0);
        assert_eq!(e.write_pj, 0.0);
    }

    #[test]
    fn functional_data_follows_timed_writes() {
        let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        mem.poke(PhysAddr::new(0x200), &[7u8; 64]);
        let mut buf = [0u8; 64];
        mem.peek(PhysAddr::new(0x200), &mut buf);
        assert_eq!(buf, [7u8; 64]);
        // A timed write with data updates the store and runs the timing
        // path (visible in the write counters after draining).
        mem.enqueue_write_data(PhysAddr::new(0x200), &[9u8; 64])
            .unwrap();
        mem.peek(PhysAddr::new(0x200), &mut buf);
        assert_eq!(buf, [9u8; 64]);
        mem.run_until_idle(100_000);
        assert_eq!(mem.bank_stats().writes, 1);
        // Unwritten memory reads as zeros.
        mem.peek(PhysAddr::new(0x4000), &mut buf);
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn wear_tracking_counts_writes() {
        let mut mem = MemorySystem::new(SystemConfig::baseline()).unwrap();
        mem.enable_wear_tracking();
        for i in 0..10u64 {
            mem.enqueue(Op::Write, PhysAddr::new(i * 8192)).unwrap();
            mem.run_until_idle(100_000);
        }
        let wear = mem.wear().unwrap();
        assert_eq!(wear.total_writes(), 10);
        assert_eq!(wear.max_row_writes(), 1); // ten distinct rows
        assert!((wear.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn start_gap_levels_a_hammered_row() {
        // Small row count so the gap sweeps the bank many times within the
        // test (Start-Gap levels at the timescale of full sweeps).
        let mut cfg = SystemConfig::baseline();
        cfg.geometry = fgnvm_types::Geometry::builder()
            .rows_per_bank(16)
            .sags(1)
            .cds(1)
            .build()
            .unwrap();
        let mut hammered = MemorySystem::new(cfg).unwrap();
        hammered.enable_wear_tracking();
        let mut leveled = MemorySystem::new(cfg).unwrap();
        leveled.enable_wear_tracking();
        leveled.enable_start_gap(2).unwrap();
        // Hammer one line 400 times (drain between writes so the write
        // queue cannot merge them away).
        for mem in [&mut hammered, &mut leveled] {
            for _ in 0..400 {
                mem.enqueue(Op::Write, PhysAddr::new(0)).unwrap();
                mem.run_until_idle(100_000);
            }
        }
        let without = hammered.wear().unwrap().max_row_writes();
        let with = leveled.wear().unwrap().max_row_writes();
        assert_eq!(without, 400, "all unleveled writes hit one row");
        assert!(
            with < without / 4,
            "start-gap should spread the hot row: max {with} vs {without}"
        );
        assert!(leveled.start_gap_rotations().unwrap() > 16);
    }

    #[test]
    fn start_gap_remaps_rows_but_preserves_function() {
        let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        mem.enable_start_gap(4).unwrap();
        // Functional data is keyed by logical address: remapping below is
        // invisible to peek/poke even across rotations.
        mem.poke(PhysAddr::new(0x40), &[3u8; 64]);
        for i in 0..50u64 {
            mem.enqueue(Op::Write, PhysAddr::new(0x10000 + i * 8192))
                .unwrap();
        }
        mem.run_until_idle(1_000_000);
        let mut buf = [0u8; 64];
        mem.peek(PhysAddr::new(0x40), &mut buf);
        assert_eq!(buf, [3u8; 64]);
        assert!(mem.start_gap_rotations().unwrap() >= 12);
    }

    #[test]
    fn prefetches_are_throttled_and_deprioritized() {
        let mut cfg = SystemConfig::fgnvm(8, 2).unwrap();
        cfg.queue_entries = 8;
        let mut mem = MemorySystem::new(cfg).unwrap();
        // Fill 7 of 8 read-queue slots with demand misses (above the ¾
        // watermark).
        for i in 0..7u64 {
            mem.enqueue(Op::Read, PhysAddr::new(i * 32 * 1024 * 1024))
                .unwrap();
        }
        // Above the ¾ watermark the prefetch is dropped at the door.
        assert!(mem.enqueue_prefetch(PhysAddr::new(0x123400)).is_none());
        mem.run_until_idle(1_000_000);
        // Below the watermark it is accepted.
        assert!(mem.enqueue_prefetch(PhysAddr::new(0x123400)).is_some());
        mem.run_until_idle(1_000_000);
    }

    #[test]
    fn demand_outranks_older_prefetch() {
        let mut mem = MemorySystem::new(SystemConfig::baseline()).unwrap();
        // An older prefetch and a younger demand read to different rows of
        // the same bank: both miss; the demand must issue first.
        let pf = mem.enqueue_prefetch(PhysAddr::new(0)).unwrap();
        let demand = mem
            .enqueue(Op::Read, PhysAddr::new(32 * 1024 * 1024))
            .unwrap();
        let done = mem.run_until_idle(1_000_000);
        let finish = |id| done.iter().find(|c| c.id == id).unwrap().finished;
        assert!(
            finish(demand) < finish(pf),
            "demand should complete before the older prefetch"
        );
    }

    #[test]
    fn per_bank_stats_and_imbalance() {
        let mut mem = MemorySystem::new(SystemConfig::baseline()).unwrap();
        assert_eq!(mem.bank_load_imbalance(), 0.0);
        // Hammer one bank only.
        for i in 0..8u64 {
            mem.enqueue(Op::Read, PhysAddr::new(i * 32 * 1024 * 1024))
                .unwrap();
            mem.run_until_idle(1_000_000);
        }
        let per_bank = mem.bank_stats_per_bank();
        assert_eq!(per_bank.len(), 8);
        assert_eq!(per_bank[0].reads, 8);
        assert!(per_bank[1..].iter().all(|s| s.reads == 0));
        // One loaded bank of eight: CV = sqrt(7) ≈ 2.65.
        assert!((mem.bank_load_imbalance() - 7f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn sampling_collects_monotone_counters() {
        let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        mem.enable_sampling(16);
        for i in 0..20u64 {
            mem.enqueue(Op::Read, PhysAddr::new(i * 8192)).unwrap();
        }
        mem.run_until_idle(1_000_000);
        let samples = mem.samples();
        assert!(
            samples.len() >= 3,
            "expected several epochs, got {}",
            samples.len()
        );
        for pair in samples.windows(2) {
            assert!(pair[1].at > pair[0].at);
            assert!(pair[1].completed_reads >= pair[0].completed_reads);
            assert!(pair[1].sensed_bits >= pair[0].sensed_bits);
        }
        assert_eq!(samples.last().unwrap().completed_reads, 20);
    }

    #[test]
    fn command_log_captures_issue_sequence() {
        use fgnvm_bank::PlanKind;
        let mut mem = MemorySystem::new(SystemConfig::baseline()).unwrap();
        mem.enable_command_log(16);
        mem.enqueue(Op::Read, PhysAddr::new(0)).unwrap();
        mem.run_until_idle(10_000);
        mem.enqueue(Op::Read, PhysAddr::new(128)).unwrap();
        mem.run_until_idle(10_000);
        let log = mem.command_log(0);
        let kinds: Vec<PlanKind> = log.records().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![PlanKind::Activate, PlanKind::RowHit]);
        let rows: Vec<u32> = log.records().map(|r| r.row).collect();
        assert_eq!(rows, vec![0, 0]);
    }

    #[test]
    fn memory_system_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MemorySystem>();
        assert_send::<crate::hybrid::HybridMemory>();
    }

    fn reliability(
        rber: f64,
        write_fail_prob: f64,
        max_write_retries: u32,
        ecc_correctable_bits: u32,
    ) -> fgnvm_types::config::ReliabilityConfig {
        fgnvm_types::config::ReliabilityConfig {
            enabled: true,
            fault_seed: 42,
            rber,
            write_fail_prob,
            max_write_retries,
            ecc_correctable_bits,
            ecc_decode_penalty_cycles: 10,
            wear_stuck_threshold: 0,
            ..fgnvm_types::config::ReliabilityConfig::default()
        }
    }

    #[test]
    fn ecc_correction_adds_decode_latency() {
        // rber 0.05 over a 512-bit line ⇒ ~26 expected bit errors, far
        // below the (generous) correction capability: every read pays the
        // decode penalty and counts as corrected.
        let cfg = SystemConfig::baseline().with_reliability(reliability(0.05, 0.0, 0, 4096));
        let mut mem = MemorySystem::new(cfg).unwrap();
        mem.enqueue(Op::Read, PhysAddr::new(0)).unwrap();
        let done = mem.run_until_idle(10_000);
        // Clean read is 52 cycles; + 10 for the ECC decode.
        assert_eq!(done[0].latency().raw(), 62);
        assert_eq!(mem.stats().corrected_errors, 1);
        assert_eq!(mem.stats().uncorrectable_errors, 0);
    }

    #[test]
    fn uncorrectable_error_remaps_the_row() {
        // Zero correction capability: the same error burst is now
        // uncorrectable, pays 4× the decode penalty, and retires the row.
        let cfg = SystemConfig::baseline().with_reliability(reliability(0.05, 0.0, 0, 0));
        let mut mem = MemorySystem::new(cfg).unwrap();
        mem.enable_command_log(16);
        mem.enqueue(Op::Read, PhysAddr::new(0)).unwrap();
        let done = mem.run_until_idle(10_000);
        assert_eq!(done[0].latency().raw(), 52 + 40);
        assert_eq!(mem.stats().uncorrectable_errors, 1);
        assert_eq!(mem.stats().remapped_rows, 1);
        assert_eq!(mem.remapped_row_count(), 1);
        // The next access to the same address is steered to the spare row
        // at the top of the bank.
        mem.enqueue(Op::Read, PhysAddr::new(0)).unwrap();
        mem.run_until_idle(10_000);
        let rows: Vec<u32> = mem.command_log(0).records().map(|r| r.row).collect();
        assert_eq!(rows[0], 0);
        assert_eq!(rows[1], mem.config().geometry.rows_per_bank() - 1);
    }

    #[test]
    fn verify_failed_write_is_reissued_until_it_sticks() {
        // 95% per-pulse failure with no on-die retry budget: most issues
        // exhaust verification and bounce back to the controller, which
        // re-queues them until one sticks.
        let cfg = SystemConfig::baseline().with_reliability(reliability(0.0, 0.95, 0, 0));
        let mut mem = MemorySystem::new(cfg).unwrap();
        mem.enqueue(Op::Write, PhysAddr::new(0)).unwrap();
        let done = mem.run_until_idle(1_000_000);
        assert_eq!(done.iter().filter(|c| c.op.is_write()).count(), 1);
        assert!(mem.stats().reissued_writes >= 1);
        assert!(mem.bank_stats().verify_failures >= 1);
        assert_eq!(
            mem.bank_stats().writes,
            mem.stats().reissued_writes + 1,
            "every reissue is a fresh device write"
        );
    }

    #[test]
    fn watchdog_reports_wedged_write_with_state_dump() {
        // A write that always fails verification with a zero retry budget
        // can never complete; the watchdog must convert the livelock into
        // a structured error instead of spinning forever.
        let cfg = SystemConfig::baseline().with_reliability(reliability(0.0, 1.0, 0, 0));
        let mut mem = MemorySystem::new(cfg).unwrap();
        mem.enqueue(Op::Write, PhysAddr::new(0)).unwrap();
        let err = mem.try_run_until_idle(2_000).unwrap_err();
        match err {
            SimError::Watchdog {
                stall_cycles,
                write_queue,
                ref state,
                ..
            } => {
                assert_eq!(stall_cycles, 2_000);
                assert!(write_queue >= 1);
                assert!(state.contains("channel 0"), "dump names the channel");
                assert!(!state.is_empty());
            }
            other => panic!("expected watchdog error, got {other:?}"),
        }
    }

    #[test]
    fn drain_hysteresis_survives_enqueues_in_elided_stretches() {
        // Regression: the write-drain flag is settled from queue occupancy
        // at every tick, but fast-forward elides dead ticks. If the queue
        // crosses a watermark during an elided stretch and new requests
        // arrive before the next sparse tick, the hysteresis must not be
        // fed the *future* occupancy — `skip_to` settles the flag over
        // every elided stretch so both stepping modes fold the identical
        // per-cycle update sequence. Open-loop write-heavy traffic with a
        // read trickle and mixed inter-arrival gaps keeps the queue
        // oscillating around the watermarks with arrivals landing inside
        // dead stretches.
        let run = |fast_forward: bool| {
            let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
            mem.set_fast_forward(fast_forward);
            let mut out = Vec::new();
            let mut state = 0x9e37_79b9_7f4a_7c15_u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            // Two-phase arrivals: calm stretches drain the queue toward
            // the low watermark with arrivals landing inside the issue
            // gaps; bursts push it back over the high watermark.
            let mut at = 0u64;
            let mut phase_until = 1_500u64;
            let mut burst = false;
            for _ in 0..2_000 {
                mem.tick_to(Cycle::new(at), &mut out);
                let op = if next() % 8 < 7 { Op::Write } else { Op::Read };
                let line = next() % 512;
                // Open-loop with loss: a full queue drops the arrival; the
                // drop decision is part of the equality under test.
                let _ = mem.enqueue(op, PhysAddr::new(line * 64));
                at += if burst {
                    1 + next() % 4
                } else {
                    20 + next() % 60
                };
                if at >= phase_until {
                    burst = !burst;
                    phase_until = at + if burst { 600 } else { 1_500 };
                }
            }
            while !mem.is_idle() {
                let target = Cycle::new(mem.now().raw() + 4096);
                mem.tick_to(target, &mut out);
            }
            (out, mem.now(), mem.stats().clone())
        };
        let fast = run(true);
        let stepped = run(false);
        assert!(
            stepped.2.enqueued_writes > stepped.2.rejected,
            "scenario must genuinely stress the write queue"
        );
        assert_eq!(fast.1, stepped.1, "final cycle differs between modes");
        assert_eq!(fast.2, stepped.2, "stats differ between modes");
        assert_eq!(fast.0, stepped.0, "completions differ between modes");
    }

    #[test]
    fn watchdog_tolerates_legitimate_long_writes() {
        // On-die verify retries stretch one write's bank occupancy to
        // data_end + (1+k)·tWP + tWR — far past a tight watchdog window.
        // The write's completion event is pending the whole time, so this
        // is progress, not a stall: the old completion-counting watchdog
        // tripped here, the event-aware one must not.
        let cfg = SystemConfig::baseline().with_reliability(reliability(0.0, 0.9, 50, 0));
        let mut mem = MemorySystem::new(cfg).unwrap();
        for i in 0..4u64 {
            mem.enqueue(Op::Write, PhysAddr::new(i * 64)).unwrap();
        }
        let done = mem
            .try_run_until_idle(250)
            .expect("a long write in flight is progress, not a stall");
        assert_eq!(done.iter().filter(|c| c.op.is_write()).count(), 4);
        assert!(
            mem.bank_stats().write_retries > 0,
            "scenario must actually exercise retry pulses"
        );
        // The same scenario, cycle-stepped, must agree in full.
        let cfg = SystemConfig::baseline().with_reliability(reliability(0.0, 0.9, 50, 0));
        let mut stepped = MemorySystem::new(cfg).unwrap();
        stepped.set_fast_forward(false);
        for i in 0..4u64 {
            stepped.enqueue(Op::Write, PhysAddr::new(i * 64)).unwrap();
        }
        let stepped_done = stepped.try_run_until_idle(250).unwrap();
        assert_eq!(done, stepped_done);
        assert_eq!(mem.now(), stepped.now());
        assert_eq!(mem.stats(), stepped.stats());
    }

    #[test]
    fn watchdog_trip_is_bit_identical_under_fast_forward() {
        // A genuinely wedged system must trip at the same instant with the
        // same diagnostic snapshot in both modes.
        let build = || {
            let cfg = SystemConfig::baseline().with_reliability(reliability(0.0, 1.0, 0, 0));
            let mut mem = MemorySystem::new(cfg).unwrap();
            mem.enqueue(Op::Write, PhysAddr::new(0)).unwrap();
            mem
        };
        let mut fast = build();
        let mut stepped = build();
        stepped.set_fast_forward(false);
        let fast_err = fast.try_run_until_idle(2_000).unwrap_err();
        let stepped_err = stepped.try_run_until_idle(2_000).unwrap_err();
        assert_eq!(format!("{fast_err:?}"), format!("{stepped_err:?}"));
        assert_eq!(fast.now(), stepped.now());
    }

    #[test]
    fn sampler_skips_cycle_zero_and_survives_fast_forward() {
        // Satellite checks for the epoch sampler: no empty cycle-0 sample,
        // and skipped epoch boundaries are backfilled so both modes emit
        // identical series.
        let build = || {
            let mut m = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
            m.enable_sampling(64);
            m
        };
        let mut fast = build();
        let mut stepped = build();
        stepped.set_fast_forward(false);
        for mem in [&mut fast, &mut stepped] {
            for i in 0..12u64 {
                let op = if i % 3 == 0 { Op::Write } else { Op::Read };
                mem.enqueue(op, PhysAddr::new(i * 8192 + (i % 2) * 256))
                    .unwrap();
            }
            mem.run_until_idle(1_000_000);
        }
        assert!(!fast.samples().is_empty());
        assert_eq!(
            fast.samples()[0].at.raw(),
            64,
            "cycle 0 must not be sampled"
        );
        assert_eq!(fast.samples(), stepped.samples());
        assert_eq!(fast.now(), stepped.now());
        assert_eq!(fast.stats(), stepped.stats());
    }

    #[test]
    fn remap_collision_burns_dead_spare_and_chains() {
        // Tiny single-bank geometry so spare-region rows are addressable.
        let mut cfg = SystemConfig::baseline().with_reliability(reliability(0.05, 0.0, 0, 0));
        cfg.geometry = fgnvm_types::geometry::Geometry::builder()
            .channels(1)
            .ranks_per_channel(1)
            .banks_per_rank(1)
            .rows_per_bank(256)
            .sags(1)
            .cds(1)
            .build()
            .unwrap();
        let mut mem = MemorySystem::new(cfg).unwrap();
        let addr_of_row = |mem: &MemorySystem, row: u32| -> PhysAddr {
            let line = u64::from(mem.config().geometry.line_bytes());
            (0..1u64 << 16)
                .map(|k| PhysAddr::new(k * line))
                .find(|&a| mem.mapper.decode(a).row == row)
                .expect("row is addressable")
        };
        // 1. Row 254 (inside the spare region) fails: remapped to 255.
        let a254 = addr_of_row(&mem, 254);
        mem.enqueue(Op::Read, a254).unwrap();
        mem.run_until_idle(100_000);
        assert_eq!(mem.stats().remapped_rows, 1);
        // 2. Row 0 fails. The next spare candidate is 254 — itself dead —
        //    so it is burned (collision) and 253 is handed out instead.
        mem.enqueue(Op::Read, addr_of_row(&mem, 0)).unwrap();
        mem.run_until_idle(100_000);
        assert_eq!(
            mem.stats().remap_collisions,
            1,
            "dead spare must be rejected"
        );
        assert_eq!(mem.stats().remapped_rows, 2);
        // 3. Re-reading row 254 steers to its spare 255, which now fails
        //    too and remaps onward: the table must be followed as a chain.
        mem.enqueue(Op::Read, a254).unwrap();
        mem.run_until_idle(100_000);
        assert_eq!(mem.stats().remapped_rows, 3);
        assert_eq!(mem.remapped_row_count(), 3);
        assert_eq!(
            mem.remapped_row(0, 0, 254),
            252,
            "254 → 255 → 252 must resolve through the chain"
        );
    }

    #[test]
    fn try_run_until_idle_matches_run_until_idle_when_healthy() {
        let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        for i in 0..4u64 {
            mem.enqueue(Op::Read, PhysAddr::new(i * 8192)).unwrap();
        }
        let done = mem.try_run_until_idle(10_000).unwrap();
        assert_eq!(done.len(), 4);
        assert!(mem.is_idle());
    }

    #[test]
    fn zero_rate_reliability_is_bit_identical_to_disabled() {
        // The fault layer enabled with all rates at zero must not perturb
        // timing or counters in any way.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4096 + (i % 4) * 256).collect();
        let mut plain = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        let faulty_cfg = SystemConfig::fgnvm(8, 2)
            .unwrap()
            .with_reliability(reliability(0.0, 0.0, 4, 2));
        let mut armed = MemorySystem::new(faulty_cfg).unwrap();
        for mem in [&mut plain, &mut armed] {
            for (i, &a) in addrs.iter().enumerate() {
                let op = if i % 3 == 0 { Op::Write } else { Op::Read };
                mem.enqueue(op, PhysAddr::new(a)).unwrap();
            }
            mem.run_until_idle(1_000_000);
        }
        assert_eq!(plain.now(), armed.now());
        assert_eq!(plain.bank_stats(), armed.bank_stats());
        assert_eq!(
            plain.stats().read_latency_total,
            armed.stats().read_latency_total
        );
        assert_eq!(armed.stats().corrected_errors, 0);
        assert_eq!(armed.stats().reissued_writes, 0);
    }

    #[test]
    fn multi_issue_not_slower() {
        let addrs: Vec<u64> = (0..16u64)
            .map(|i| i * 1024 * 1024 + (i % 4) * 256)
            .collect();
        let mut plain = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        let mut multi =
            MemorySystem::new(SystemConfig::fgnvm_multi_issue(8, 2, 4).unwrap()).unwrap();
        read_all(&mut plain, &addrs);
        read_all(&mut multi, &addrs);
        assert!(multi.now().raw() <= plain.now().raw());
    }

    #[test]
    fn escalation_ladder_walks_remap_retire_readonly_exhausted() {
        // One spare per bank, read-only after one retired row, device
        // exhausted after one read-only bank: every uncorrectable failure
        // walks one more rung of the ladder.
        let mut rel = reliability(0.05, 0.0, 0, 0);
        rel.spare_rows_per_bank = 1;
        rel.read_only_row_threshold = 1;
        rel.capacity_exhausted_banks = 1;
        let mut cfg = SystemConfig::baseline().with_reliability(rel);
        cfg.geometry = fgnvm_types::geometry::Geometry::builder()
            .channels(1)
            .ranks_per_channel(1)
            .banks_per_rank(1)
            .rows_per_bank(256)
            .sags(1)
            .cds(1)
            .build()
            .unwrap();
        let mut mem = MemorySystem::new(cfg).unwrap();
        mem.enable_observer();
        let line = u64::from(mem.config().geometry.line_bytes());
        let addr_of_row = |mem: &MemorySystem, row: u32| -> PhysAddr {
            (0..1u64 << 16)
                .map(|k| PhysAddr::new(k * line))
                .find(|&a| mem.mapper.decode(a).row == row)
                .expect("row is addressable")
        };
        // Rung 1: the first failing row takes the only spare.
        mem.enqueue(Op::Read, addr_of_row(&mem, 0)).unwrap();
        mem.run_until_idle(100_000);
        assert_eq!(mem.stats().remapped_rows, 1);
        assert_eq!(mem.stats().retired_rows, 0);
        assert!(mem.check_capacity().is_ok());
        // Rung 2-4: the second failure finds no spare — retired, the bank
        // flips read-only, and the device-wide floor is crossed.
        mem.enqueue(Op::Read, addr_of_row(&mem, 1)).unwrap();
        mem.run_until_idle(100_000);
        assert_eq!(mem.stats().retired_rows, 1);
        assert_eq!(mem.retired_row_count(), 1);
        assert_eq!(mem.stats().read_only_banks, 1);
        assert_eq!(mem.read_only_bank_count(), 1);
        assert!(mem.capacity_exhausted());
        match mem.check_capacity().unwrap_err() {
            SimError::CapacityExhausted {
                read_only_banks,
                threshold,
                retired_rows,
                ..
            } => {
                assert_eq!(read_only_banks, 1);
                assert_eq!(threshold, 1);
                assert_eq!(retired_rows, 1);
            }
            other => panic!("expected capacity exhaustion, got {other:?}"),
        }
        // Read-only bank: writes bounce at the door, reads still serve.
        assert!(mem.enqueue(Op::Write, addr_of_row(&mem, 2)).is_none());
        assert_eq!(mem.stats().read_only_write_rejections, 1);
        assert!(mem.enqueue(Op::Read, addr_of_row(&mem, 2)).is_some());
        mem.run_until_idle(100_000);
        // The ladder's instants reached the observer. (The final read of
        // row 2 is itself uncorrectable at this error rate and retires a
        // second row; the bank-level stages fire exactly once.)
        let obs = mem.observer().unwrap();
        assert_eq!(obs.instant_count(InstantKind::RowRetired), 2);
        assert_eq!(obs.instant_count(InstantKind::BankReadOnly), 1);
        assert_eq!(obs.instant_count(InstantKind::CapacityExhausted), 1);
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        // Mid-flight snapshot: requests in queues, events pending, observer
        // attached. The restored system must finish the run bit-identically.
        let build = || {
            let cfg = SystemConfig::fgnvm(8, 2)
                .unwrap()
                .with_reliability(reliability(0.01, 0.3, 4, 64));
            let mut m = MemorySystem::new(cfg).unwrap();
            m.enable_observer();
            m.enable_wear_tracking();
            m.enable_command_log(32);
            m.enable_sampling(64);
            m
        };
        let mut reference = build();
        let mut live = build();
        for mem in [&mut reference, &mut live] {
            for i in 0..24u64 {
                let op = if i % 3 == 0 { Op::Write } else { Op::Read };
                mem.enqueue(op, PhysAddr::new(i * 8192 + (i % 2) * 256))
                    .unwrap();
            }
            let mut out = Vec::new();
            mem.tick_to(Cycle::new(137), &mut out); // mid-flight, work pending
            assert!(!mem.is_idle());
        }
        let snapshot = live.save_snapshot();
        let mut restored = MemorySystem::restore(*live.config(), &snapshot).unwrap();
        let ref_done = reference.run_until_idle(1_000_000);
        let res_done = restored.run_until_idle(1_000_000);
        assert_eq!(ref_done, res_done);
        assert_eq!(reference.now(), restored.now());
        assert_eq!(reference.stats(), restored.stats());
        assert_eq!(reference.bank_stats(), restored.bank_stats());
        assert_eq!(reference.samples(), restored.samples());
        for channel in 0..reference.config().geometry.channels() {
            let log = |m: &MemorySystem| -> Vec<String> {
                m.command_log(channel)
                    .records()
                    .map(|rec| format!("{rec:?}"))
                    .collect()
            };
            assert_eq!(log(&reference), log(&restored));
        }
        let (obs_ref, obs_res) = (reference.observer().unwrap(), restored.observer().unwrap());
        assert_eq!(obs_ref.trace_json(), obs_res.trace_json());
        assert_eq!(obs_ref.spans.to_json(), obs_res.spans.to_json());
        assert_eq!(obs_ref.heatmap.cells(), obs_res.heatmap.cells());
        assert_eq!(obs_ref.attribution.to_json(), obs_res.attribution.to_json());
        for kind in InstantKind::ALL {
            assert_eq!(obs_ref.instant_count(kind), obs_res.instant_count(kind));
        }
    }

    #[test]
    fn restore_rejects_corruption_without_panicking() {
        let cfg = SystemConfig::fgnvm(8, 2).unwrap();
        let mut mem = MemorySystem::new(cfg).unwrap();
        mem.enqueue(Op::Read, PhysAddr::new(0)).unwrap();
        mem.tick();
        let snapshot = mem.save_snapshot();
        // Truncation at every prefix must yield a structured error.
        for cut in [0, 4, 9, snapshot.len() / 2, snapshot.len() - 1] {
            assert!(
                MemorySystem::restore(cfg, &snapshot[..cut]).is_err(),
                "truncated checkpoint ({cut} bytes) must be rejected"
            );
        }
        // A flipped payload byte breaks the checksum.
        let mut bent = snapshot.clone();
        let mid = bent.len() / 2;
        bent[mid] ^= 0x41;
        assert!(MemorySystem::restore(cfg, &bent).is_err());
        // A different configuration fails the fingerprint check.
        let other = SystemConfig::fgnvm(4, 4).unwrap();
        assert!(MemorySystem::restore(other, &snapshot).is_err());
        // The pristine snapshot still loads.
        assert!(MemorySystem::restore(cfg, &snapshot).is_ok());
    }

    #[test]
    fn observer_does_not_perturb_simulation() {
        let addrs: Vec<u64> = (0..48u64).map(|i| i * 777 * 64).collect();
        let mut plain = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        let mut observed = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        observed.enable_observer();
        for mem in [&mut plain, &mut observed] {
            for wave in addrs.chunks(12) {
                for (i, &a) in wave.iter().enumerate() {
                    let op = if i % 4 == 0 { Op::Write } else { Op::Read };
                    mem.enqueue(op, PhysAddr::new(a)).expect("queue has room");
                }
                mem.run_until_idle(1_000_000);
            }
        }
        assert_eq!(plain.now(), observed.now());
        assert_eq!(plain.stats(), observed.stats());
        assert_eq!(plain.bank_stats(), observed.bank_stats());

        let obs = observed.observer().expect("observer enabled");
        // Every request got a span and every span closed.
        assert_eq!(obs.spans.open_count(), 0);
        assert_eq!(
            obs.spans.completed,
            observed.stats().completed_reads + observed.stats().completed_writes
        );
        // The heatmap saw every committed command and matches the grid.
        assert_eq!(obs.heatmap.dims(), (8, 2));
        let bank = observed.bank_stats();
        let heat_total: u64 = obs
            .heatmap
            .cells()
            .iter()
            .map(|c| c.row_hits + c.activations + c.underfetches + c.writes)
            .sum();
        assert_eq!(heat_total, bank.reads + bank.writes);
        // One trace slice per committed command; a valid Chrome JSON header.
        let trace = obs.trace.to_json();
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert_eq!(obs.trace.dropped(), 0);
        assert_eq!(
            trace.matches("\"cat\":\"cmd\"").count() as u64,
            bank.reads + bank.writes
        );
    }
}
