//! Memory-request scheduling policies.
//!
//! * [`Fcfs`] — strict arrival order: only the oldest request may issue.
//! * [`Frfcfs`] — first-ready FCFS (Rixner et al., the paper's baseline
//!   scheduler): among issuable requests, row-buffer hits go first, then the
//!   oldest issuable request.
//! * [`FrfcfsTlp`] — the paper's "augmented FRFCFS": FRFCFS extended with
//!   tile-level-parallelism awareness. Reads keep issuing while the write
//!   queue drains (exploiting Backgrounded Writes), and drained writes are
//!   chosen to conflict with as few queued reads as possible.

use std::cell::Cell;
use std::fmt;

use fgnvm_bank::{AccessPlan, Bank, PlanKind};
use fgnvm_types::config::SchedulerKind;
use fgnvm_types::time::Cycle;

use crate::queues::RequestQueue;

/// A scheduling decision: which queue entry to issue and its plan.
pub type Pick = (usize, AccessPlan);

/// A request-selection policy over one controller's queues.
pub trait Scheduler: fmt::Debug + Send {
    /// Chooses the next read to issue, if any is issuable at `now`.
    fn pick_read(&self, queue: &RequestQueue, banks: &[Box<dyn Bank>], now: Cycle) -> Option<Pick>;

    /// Chooses the next write to drain, if any is issuable at `now`.
    ///
    /// `reads` is the read queue, made available so TLP-aware policies can
    /// avoid draining writes into (SAG, CD) pairs that pending reads need.
    fn pick_write(
        &self,
        queue: &RequestQueue,
        reads: &RequestQueue,
        banks: &[Box<dyn Bank>],
        now: Cycle,
    ) -> Option<Pick>;

    /// Whether reads may continue to issue while a write drain is active.
    fn reads_during_drain(&self) -> bool;

    /// Serialize any mutable scheduling state into a checkpoint. Stateless
    /// policies (the default) write nothing.
    fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        let _ = w;
    }

    /// Restore state written by [`Scheduler::save_state`]. Stateless
    /// policies (the default) read nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](fgnvm_types::SnapshotError) on a
    /// truncated or mismatched stream.
    fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        let _ = r;
        Ok(())
    }
}

/// Creates the scheduler named by `kind`.
///
/// ```
/// use fgnvm_mem::scheduler::make_scheduler;
/// use fgnvm_types::SchedulerKind;
///
/// let tlp = make_scheduler(SchedulerKind::FrfcfsTlp);
/// assert!(tlp.reads_during_drain()); // the TLP augmentation's signature
/// let plain = make_scheduler(SchedulerKind::Frfcfs);
/// assert!(!plain.reads_during_drain());
/// ```
pub fn make_scheduler(kind: SchedulerKind) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::Fcfs => Box::new(Fcfs),
        SchedulerKind::Frfcfs => Box::new(Frfcfs),
        SchedulerKind::FrfcfsTlp => Box::new(FrfcfsTlp),
        SchedulerKind::FrfcfsCap => Box::new(FrfcfsCap::new(4)),
        SchedulerKind::FrfcfsQos => Box::new(FrfcfsQos::new()),
    }
}

/// True when `bank` cannot accept *any* access at `now`, per the
/// [`Bank::next_ready_hint`] contract. Scans use it to skip the (costlier)
/// `plan` call for banks that are wholesale busy; a hint violating its
/// contract would change scheduling decisions, which is exactly what the
/// hint-tightness and differential tests pin down.
fn bank_not_ready(bank: &dyn Bank, now: Cycle) -> bool {
    bank.next_ready_hint(now) > now
}

/// Scans the queue in arrival order: returns the first issuable row hit,
/// else the oldest issuable *demand* request, else the oldest issuable
/// prefetch (demand misses outrank speculative traffic).
fn first_ready(queue: &RequestQueue, banks: &[Box<dyn Bank>], now: Cycle) -> Option<Pick> {
    let mut oldest_demand: Option<Pick> = None;
    let mut oldest_prefetch: Option<Pick> = None;
    for (index, pending) in queue.iter().enumerate() {
        if bank_not_ready(banks[pending.bank_index].as_ref(), now) {
            continue;
        }
        if let Ok(plan) = banks[pending.bank_index].plan(&pending.access, now) {
            if plan.kind == PlanKind::RowHit {
                return Some((index, plan));
            }
            let slot = match pending.request.priority {
                fgnvm_types::Priority::Demand => &mut oldest_demand,
                fgnvm_types::Priority::Prefetch => &mut oldest_prefetch,
            };
            if slot.is_none() {
                *slot = Some((index, plan));
            }
        }
    }
    oldest_demand.or(oldest_prefetch)
}

/// Oldest issuable request, ignoring row-hit preference.
fn oldest_ready(queue: &RequestQueue, banks: &[Box<dyn Bank>], now: Cycle) -> Option<Pick> {
    for (index, pending) in queue.iter().enumerate() {
        if bank_not_ready(banks[pending.bank_index].as_ref(), now) {
            continue;
        }
        if let Ok(plan) = banks[pending.bank_index].plan(&pending.access, now) {
            return Some((index, plan));
        }
    }
    None
}

/// Strict first-come first-serve: only the queue head may issue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Scheduler for Fcfs {
    fn pick_read(&self, queue: &RequestQueue, banks: &[Box<dyn Bank>], now: Cycle) -> Option<Pick> {
        let head = queue.iter().next()?;
        let bank = banks[head.bank_index].as_ref();
        if bank_not_ready(bank, now) {
            return None;
        }
        bank.plan(&head.access, now).ok().map(|plan| (0, plan))
    }

    fn pick_write(
        &self,
        queue: &RequestQueue,
        _reads: &RequestQueue,
        banks: &[Box<dyn Bank>],
        now: Cycle,
    ) -> Option<Pick> {
        let head = queue.iter().next()?;
        let bank = banks[head.bank_index].as_ref();
        if bank_not_ready(bank, now) {
            return None;
        }
        bank.plan(&head.access, now).ok().map(|plan| (0, plan))
    }

    fn reads_during_drain(&self) -> bool {
        false
    }
}

/// First-ready FCFS: row hits first, then oldest issuable.
#[derive(Debug, Clone, Copy, Default)]
pub struct Frfcfs;

impl Scheduler for Frfcfs {
    fn pick_read(&self, queue: &RequestQueue, banks: &[Box<dyn Bank>], now: Cycle) -> Option<Pick> {
        first_ready(queue, banks, now)
    }

    fn pick_write(
        &self,
        queue: &RequestQueue,
        _reads: &RequestQueue,
        banks: &[Box<dyn Bank>],
        now: Cycle,
    ) -> Option<Pick> {
        first_ready(queue, banks, now)
    }

    fn reads_during_drain(&self) -> bool {
        false
    }
}

/// FRFCFS augmented with tile-level-parallelism awareness (the paper's
/// second scheduler).
#[derive(Debug, Clone, Copy, Default)]
pub struct FrfcfsTlp;

impl Scheduler for FrfcfsTlp {
    fn pick_read(&self, queue: &RequestQueue, banks: &[Box<dyn Bank>], now: Cycle) -> Option<Pick> {
        first_ready(queue, banks, now)
    }

    fn pick_write(
        &self,
        queue: &RequestQueue,
        reads: &RequestQueue,
        banks: &[Box<dyn Bank>],
        now: Cycle,
    ) -> Option<Pick> {
        // Two rules keep backgrounded writes cheap:
        // 1. never stack a second in-flight write into a bank (each write
        //    locks a whole column division, so stacking writes can close a
        //    bank to reads entirely);
        // 2. among the remaining issuable writes, prefer one whose SAG/CD
        //    no queued read touches.
        // Fall back to plain FRFCFS order if every choice conflicts.
        let mut fallback: Option<Pick> = None;
        let mut second: Option<Pick> = None;
        for (index, pending) in queue.iter().enumerate() {
            if bank_not_ready(banks[pending.bank_index].as_ref(), now) {
                continue;
            }
            let Ok(plan) = banks[pending.bank_index].plan(&pending.access, now) else {
                continue;
            };
            if fallback.is_none() {
                fallback = Some((index, plan));
            }
            if banks[pending.bank_index].write_in_progress(now) {
                continue;
            }
            let conflicts = reads.iter().any(|r| {
                r.bank_index == pending.bank_index
                    && (r.access.coord.sag == pending.access.coord.sag
                        || r.access.coord.cd_overlaps(&pending.access.coord))
            });
            if !conflicts {
                return Some((index, plan));
            }
            if second.is_none() {
                second = Some((index, plan));
            }
        }
        second.or(fallback)
    }

    fn reads_during_drain(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::Pending;
    use fgnvm_bank::{Access, FgnvmBank, Modes};
    use fgnvm_types::address::{DecodedAddr, PhysAddr, TileCoord};
    use fgnvm_types::geometry::Geometry;
    use fgnvm_types::request::{Op, Request, RequestId};
    use fgnvm_types::TimingConfig;

    fn bank_array() -> (Geometry, Vec<Box<dyn Bank>>) {
        let geom = Geometry::builder().sags(4).cds(4).build().unwrap();
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        let bank: Box<dyn Bank> =
            Box::new(FgnvmBank::new(&geom, timing, Modes::all(), true).unwrap());
        (geom, vec![bank])
    }

    fn pending(geom: &Geometry, id: u64, op: Op, row: u32, line: u32) -> Pending {
        let (cd_first, cd_count) = geom.cds_of_line(line);
        Pending {
            request: Request::new(RequestId::new(id), op, PhysAddr::new(id * 64), Cycle::ZERO),
            decoded: DecodedAddr {
                channel: 0,
                rank: 0,
                bank: 0,
                row,
                line,
            },
            access: Access {
                op,
                row,
                line,
                coord: TileCoord {
                    sag: geom.sag_of_row(row),
                    cd_first,
                    cd_count,
                },
            },
            bank_index: 0,
        }
    }

    #[test]
    fn frfcfs_prefers_row_hit() {
        let (geom, mut banks) = bank_array();
        // Open row 0 / CD 0 by committing a read.
        let opener = pending(&geom, 0, Op::Read, 0, 0);
        let plan = banks[0].plan(&opener.access, Cycle::ZERO).unwrap();
        let issued = banks[0].commit(&opener.access, &plan, Cycle::ZERO, plan.earliest_data);
        let now = issued.data_end;
        // Queue: old miss (row 9) then a hit (row 0 line 1).
        let mut q = RequestQueue::new(8);
        q.push(pending(&geom, 1, Op::Read, 9, 8));
        q.push(pending(&geom, 2, Op::Read, 0, 1));
        let (idx, picked) = Frfcfs.pick_read(&q, &banks, now).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(picked.kind, PlanKind::RowHit);
        // FCFS instead honors arrival order.
        let (idx, _) = Fcfs.pick_read(&q, &banks, now).unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn fcfs_blocks_behind_unissuable_head() {
        let (geom, mut banks) = bank_array();
        // Write occupies SAG 0 for a long time.
        let w = pending(&geom, 0, Op::Write, 0, 0);
        let plan = banks[0].plan(&w.access, Cycle::ZERO).unwrap();
        banks[0].commit(&w.access, &plan, Cycle::ZERO, plan.earliest_data);
        let now = Cycle::new(10);
        let mut q = RequestQueue::new(8);
        q.push(pending(&geom, 1, Op::Read, 1, 4)); // same SAG: blocked
        q.push(pending(&geom, 2, Op::Read, geom.rows_per_sag(), 4)); // free pair
        assert!(Fcfs.pick_read(&q, &banks, now).is_none());
        // FRFCFS skips the blocked head.
        let (idx, _) = Frfcfs.pick_read(&q, &banks, now).unwrap();
        assert_eq!(idx, 1);
    }

    #[test]
    fn tlp_write_pick_avoids_read_conflicts() {
        let (geom, banks) = bank_array();
        let now = Cycle::ZERO;
        let mut writes = RequestQueue::new(8);
        writes.push(pending(&geom, 0, Op::Write, 0, 0)); // SAG 0, CD 0
        writes.push(pending(&geom, 1, Op::Write, geom.rows_per_sag() * 2, 8)); // SAG 2, CD 2
        let mut reads = RequestQueue::new(8);
        reads.push(pending(&geom, 2, Op::Read, 1, 12)); // SAG 0 — conflicts with write 0
        let (idx, _) = FrfcfsTlp.pick_write(&writes, &reads, &banks, now).unwrap();
        assert_eq!(idx, 1, "TLP drain should pick the conflict-free write");
        // Plain FRFCFS drains in order.
        let (idx, _) = Frfcfs.pick_write(&writes, &reads, &banks, now).unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn drain_read_policy_flags() {
        assert!(!Fcfs.reads_during_drain());
        assert!(!Frfcfs.reads_during_drain());
        assert!(FrfcfsTlp.reads_during_drain());
    }

    #[test]
    fn factory_maps_kinds() {
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::Frfcfs,
            SchedulerKind::FrfcfsTlp,
        ] {
            let s = make_scheduler(kind);
            let _ = s.reads_during_drain();
        }
    }
}

/// FRFCFS with a row-hit streak cap (in the spirit of BLISS / FR-FCFS+Cap):
/// hit-friendly scheduling, but after `cap` consecutive row-hit grants the
/// oldest issuable request is served regardless, bounding starvation of
/// row-miss traffic behind a streaming hit sequence.
#[derive(Debug, Default)]
pub struct FrfcfsCap {
    cap: u32,
    streak: Cell<u32>,
}

impl FrfcfsCap {
    /// Creates the policy with the given consecutive-hit cap.
    pub fn new(cap: u32) -> Self {
        FrfcfsCap {
            cap: cap.max(1),
            streak: Cell::new(0),
        }
    }

    fn capped_pick(
        &self,
        queue: &RequestQueue,
        banks: &[Box<dyn Bank>],
        now: Cycle,
    ) -> Option<Pick> {
        let pick = if self.streak.get() >= self.cap {
            oldest_ready(queue, banks, now)
        } else {
            first_ready(queue, banks, now)
        };
        if let Some((_, plan)) = &pick {
            if plan.kind == PlanKind::RowHit && self.streak.get() < self.cap {
                self.streak.set(self.streak.get() + 1);
            } else {
                self.streak.set(0);
            }
        }
        pick
    }
}

impl Scheduler for FrfcfsCap {
    fn pick_read(&self, queue: &RequestQueue, banks: &[Box<dyn Bank>], now: Cycle) -> Option<Pick> {
        self.capped_pick(queue, banks, now)
    }

    fn pick_write(
        &self,
        queue: &RequestQueue,
        _reads: &RequestQueue,
        banks: &[Box<dyn Bank>],
        now: Cycle,
    ) -> Option<Pick> {
        self.capped_pick(queue, banks, now)
    }

    fn reads_during_drain(&self) -> bool {
        false
    }

    fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("sched.cap");
        w.u32(self.streak.get());
    }

    fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("sched.cap")?;
        self.streak.set(r.u32()?);
        Ok(())
    }
}

/// FRFCFS with tenant fairness: among issuable requests, the tenant with
/// the least service so far goes first (ties break toward the lower
/// tenant id), and *within* the chosen tenant the usual FRFCFS order
/// applies — row hits first, then oldest demand, then oldest prefetch.
/// Both the read pick and the write drain use the same least-service
/// rule, so neither a read storm nor a write burst from one tenant can
/// monopolize the channel.
///
/// Service is counted in granted commands per tenant — interior-mutable
/// like [`FrfcfsCap`]'s streak, and mutated only when a pick is returned,
/// so eliding a provably empty pick stays bit-identical (the controller's
/// calendar relies on that).
#[derive(Debug, Default)]
pub struct FrfcfsQos {
    served: std::cell::RefCell<Vec<u64>>,
}

impl FrfcfsQos {
    /// Creates the policy with zeroed service counters.
    pub fn new() -> Self {
        FrfcfsQos::default()
    }

    fn served(&self, tenant: u16) -> u64 {
        self.served
            .borrow()
            .get(usize::from(tenant))
            .copied()
            .unwrap_or(0)
    }

    fn grant(&self, tenant: u16) {
        let mut served = self.served.borrow_mut();
        let index = usize::from(tenant);
        if served.len() <= index {
            served.resize(index + 1, 0);
        }
        served[index] += 1;
    }

    /// One arrival-order pass: tracks the least-served tenant that has at
    /// least one issuable entry, and within that tenant the best pick by
    /// FRFCFS layering (row hit > oldest demand > oldest prefetch).
    fn qos_pick(&self, queue: &RequestQueue, banks: &[Box<dyn Bank>], now: Cycle) -> Option<Pick> {
        let mut best_key: Option<(u64, u16)> = None;
        let mut hit: Option<Pick> = None;
        let mut demand: Option<Pick> = None;
        let mut prefetch: Option<Pick> = None;
        for (index, pending) in queue.iter().enumerate() {
            if bank_not_ready(banks[pending.bank_index].as_ref(), now) {
                continue;
            }
            let Ok(plan) = banks[pending.bank_index].plan(&pending.access, now) else {
                continue;
            };
            let tenant = pending.request.tenant;
            let key = (self.served(tenant), tenant);
            match best_key {
                Some(best) if key > best => continue,
                Some(best) if key == best => {}
                _ => {
                    // Strictly better tenant: restart the within-tenant
                    // layering from this entry.
                    best_key = Some(key);
                    hit = None;
                    demand = None;
                    prefetch = None;
                }
            }
            if plan.kind == PlanKind::RowHit {
                if hit.is_none() {
                    hit = Some((index, plan));
                }
            } else {
                let slot = match pending.request.priority {
                    fgnvm_types::Priority::Demand => &mut demand,
                    fgnvm_types::Priority::Prefetch => &mut prefetch,
                };
                if slot.is_none() {
                    *slot = Some((index, plan));
                }
            }
        }
        let pick = hit.or(demand).or(prefetch);
        if pick.is_some() {
            let (_, tenant) = best_key.expect("a pick implies a best tenant");
            self.grant(tenant);
        }
        pick
    }
}

impl Scheduler for FrfcfsQos {
    fn pick_read(&self, queue: &RequestQueue, banks: &[Box<dyn Bank>], now: Cycle) -> Option<Pick> {
        self.qos_pick(queue, banks, now)
    }

    fn pick_write(
        &self,
        queue: &RequestQueue,
        _reads: &RequestQueue,
        banks: &[Box<dyn Bank>],
        now: Cycle,
    ) -> Option<Pick> {
        self.qos_pick(queue, banks, now)
    }

    fn reads_during_drain(&self) -> bool {
        // Latency-critical reads keep flowing while writes drain, so one
        // tenant's write burst cannot inflate every tenant's read tail.
        true
    }

    fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("sched.qos");
        let served = self.served.borrow();
        w.usize(served.len());
        for s in served.iter() {
            w.u64(*s);
        }
    }

    fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("sched.qos")?;
        let n = r.usize()?;
        if n > usize::from(u16::MAX) + 1 {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "QoS scheduler claims {n} tenants"
            )));
        }
        let mut served = Vec::with_capacity(n);
        for _ in 0..n {
            served.push(r.u64()?);
        }
        *self.served.borrow_mut() = served;
        Ok(())
    }
}

#[cfg(test)]
mod qos_tests {
    use super::*;
    use crate::queues::Pending;
    use fgnvm_bank::{Access, FgnvmBank, Modes};
    use fgnvm_types::address::{DecodedAddr, PhysAddr, TileCoord};
    use fgnvm_types::geometry::Geometry;
    use fgnvm_types::request::{Op, Request, RequestId};
    use fgnvm_types::TimingConfig;

    fn banks() -> (Geometry, Vec<Box<dyn Bank>>) {
        let geom = Geometry::builder().sags(4).cds(4).build().unwrap();
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        let bank: Box<dyn Bank> =
            Box::new(FgnvmBank::new(&geom, timing, Modes::all(), true).unwrap());
        (geom, vec![bank])
    }

    fn read_for(geom: &Geometry, id: u64, tenant: u16, row: u32, line: u32) -> Pending {
        let (cd_first, cd_count) = geom.cds_of_line(line);
        Pending {
            request: Request::new(
                RequestId::new(id),
                Op::Read,
                PhysAddr::new(id * 64),
                Cycle::ZERO,
            )
            .with_tenant(tenant),
            decoded: DecodedAddr {
                channel: 0,
                rank: 0,
                bank: 0,
                row,
                line,
            },
            access: Access {
                op: Op::Read,
                row,
                line,
                coord: TileCoord {
                    sag: geom.sag_of_row(row),
                    cd_first,
                    cd_count,
                },
            },
            bank_index: 0,
        }
    }

    #[test]
    fn qos_alternates_between_equally_served_tenants() {
        let (geom, banks) = banks();
        let sched = FrfcfsQos::new();
        let now = Cycle::ZERO;
        // Tenant 0 floods the queue ahead of tenant 1; every entry targets
        // a distinct SAG so all are issuable misses.
        let mut q = RequestQueue::new(8);
        q.push(read_for(&geom, 0, 0, 0, 0));
        q.push(read_for(&geom, 1, 0, geom.rows_per_sag(), 4));
        q.push(read_for(&geom, 2, 1, geom.rows_per_sag() * 2, 8));
        // Equal service (0 each): the tie breaks to tenant 0's oldest.
        let (idx, _) = sched.pick_read(&q, &banks, now).unwrap();
        assert_eq!(idx, 0);
        q.remove(idx).unwrap();
        // Tenant 0 has now been served once; tenant 1 must go next even
        // though tenant 0's second request is older.
        let (idx, _) = sched.pick_read(&q, &banks, now).unwrap();
        assert_eq!(idx, 1, "least-served tenant outranks arrival order");
        q.remove(idx).unwrap();
        // Back to tenant 0.
        let (idx, _) = sched.pick_read(&q, &banks, now).unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn qos_prefers_row_hits_within_the_chosen_tenant() {
        let (geom, mut banks_v) = banks();
        // Open row 0 by committing a read.
        let opener = read_for(&geom, 9, 0, 0, 0);
        let plan = banks_v[0].plan(&opener.access, Cycle::ZERO).unwrap();
        let issued = banks_v[0].commit(&opener.access, &plan, Cycle::ZERO, plan.earliest_data);
        let now = issued.data_end;
        let sched = FrfcfsQos::new();
        let mut q = RequestQueue::new(8);
        // Same tenant: an older miss and a younger hit — the hit goes
        // first, exactly like plain FRFCFS.
        q.push(read_for(&geom, 0, 3, geom.rows_per_sag(), 4));
        q.push(read_for(&geom, 1, 3, 0, 1));
        let (idx, plan) = sched.pick_read(&q, &banks_v, now).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(plan.kind, PlanKind::RowHit);
    }

    #[test]
    fn qos_pick_none_leaves_service_state_untouched() {
        let (geom, banks) = banks();
        let sched = FrfcfsQos::new();
        let q = RequestQueue::new(8);
        assert!(sched.pick_read(&q, &banks, Cycle::ZERO).is_none());
        assert!(sched.served.borrow().is_empty());
        let _ = geom;
    }

    #[test]
    fn qos_state_round_trips() {
        let sched = FrfcfsQos::new();
        sched.grant(0);
        sched.grant(2);
        sched.grant(2);
        let mut w = fgnvm_types::SnapshotWriter::new();
        sched.save_state(&mut w);
        let blob = w.finish();
        let mut r = fgnvm_types::SnapshotReader::new(&blob).unwrap();
        let mut restored = FrfcfsQos::new();
        restored.load_state(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(*restored.served.borrow(), vec![1, 0, 2]);
    }

    #[test]
    fn factory_builds_qos() {
        let s = make_scheduler(SchedulerKind::FrfcfsQos);
        assert!(s.reads_during_drain());
    }
}

#[cfg(test)]
mod cap_tests {
    use super::*;
    use crate::queues::Pending;
    use fgnvm_bank::{Access, BaselineBank};
    use fgnvm_types::address::{DecodedAddr, PhysAddr, TileCoord};
    use fgnvm_types::geometry::Geometry;
    use fgnvm_types::request::{Op, Request, RequestId};
    use fgnvm_types::TimingConfig;

    fn opened_bank() -> Vec<Box<dyn Bank>> {
        let geom = Geometry::builder().sags(1).cds(1).build().unwrap();
        let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
        let mut bank = BaselineBank::new(&geom, timing);
        let opener = Access {
            op: Op::Read,
            row: 0,
            line: 0,
            coord: TileCoord {
                sag: 0,
                cd_first: 0,
                cd_count: 1,
            },
        };
        let plan = bank.plan(&opener, Cycle::ZERO).unwrap();
        bank.commit(&opener, &plan, Cycle::ZERO, plan.earliest_data);
        vec![Box::new(bank)]
    }

    fn read(id: u64, row: u32, line: u32) -> Pending {
        Pending {
            request: Request::new(
                RequestId::new(id),
                Op::Read,
                PhysAddr::new(id * 64),
                Cycle::ZERO,
            ),
            decoded: DecodedAddr {
                channel: 0,
                rank: 0,
                bank: 0,
                row,
                line,
            },
            access: Access {
                op: Op::Read,
                row,
                line,
                coord: TileCoord {
                    sag: 0,
                    cd_first: 0,
                    cd_count: 1,
                },
            },
            bank_index: 0,
        }
    }

    #[test]
    fn cap_breaks_hit_streaks() {
        let banks = opened_bank();
        let sched = FrfcfsCap::new(2);
        let now = Cycle::new(1000);
        // Queue: an old row-miss behind a stream of hits to row 0.
        let mut q = RequestQueue::new(8);
        q.push(read(0, 7, 0)); // miss, oldest
        for i in 1..5 {
            q.push(read(i, 0, i as u32)); // hits
        }
        // First two picks: hits (indices > 0).
        for _ in 0..2 {
            let (idx, plan) = sched.pick_read(&q, &banks, now).unwrap();
            assert!(idx > 0);
            assert_eq!(plan.kind, PlanKind::RowHit);
        }
        // Third pick: the cap fires and the old miss is served.
        let (idx, plan) = sched.pick_read(&q, &banks, now).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(plan.kind, PlanKind::Activate);
        // Streak reset: hits may flow again.
        let (idx, _) = sched.pick_read(&q, &banks, now).unwrap();
        assert!(idx > 0);
    }

    #[test]
    fn factory_builds_cap() {
        let s = make_scheduler(SchedulerKind::FrfcfsCap);
        assert!(!s.reads_during_drain());
    }
}
