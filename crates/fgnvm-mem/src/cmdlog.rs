//! Command logging: a bounded record of every command the controller
//! issues, for debugging, visualization, and sequence assertions in tests
//! (the role of NVMain's trace writers).

use std::collections::VecDeque;

use fgnvm_bank::PlanKind;
use fgnvm_types::address::TileCoord;
use fgnvm_types::request::{Op, RequestId};
use fgnvm_types::time::Cycle;

/// One issued command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Cycle the command issued.
    pub at: Cycle,
    /// The request it serves.
    pub id: RequestId,
    /// Read or write.
    pub op: Op,
    /// How the bank served it (hit / activate / underfetch / write).
    pub kind: PlanKind,
    /// Channel-local bank index.
    pub bank_index: usize,
    /// Row targeted.
    pub row: u32,
    /// Tile coordinates (SAG + CD span).
    pub coord: TileCoord,
    /// When the data burst starts.
    pub data_start: Cycle,
    /// Extra write-verify programming pulses this command needed (0 for
    /// reads and for clean first-pulse writes).
    pub retries: u32,
}

impl std::fmt::Display for CommandRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} {:?} ba{} row{} [{}] data@{}",
            self.at, self.op, self.kind, self.bank_index, self.row, self.coord, self.data_start
        )?;
        if self.retries > 0 {
            write!(f, " retries={}", self.retries)?;
        }
        Ok(())
    }
}

/// Bounded ring buffer of issued commands. Disabled (zero-capacity) by
/// default so the hot path pays nothing.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use fgnvm_mem::MemorySystem;
/// use fgnvm_types::config::SystemConfig;
/// use fgnvm_types::request::Op;
/// use fgnvm_types::PhysAddr;
///
/// let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2)?)?;
/// mem.enable_command_log(64);
/// mem.enqueue(Op::Read, PhysAddr::new(0));
/// mem.run_until_idle(10_000);
/// let log = mem.command_log(0);
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.records().next().unwrap().kind, fgnvm_bank::PlanKind::Activate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CommandLog {
    capacity: usize,
    records: VecDeque<CommandRecord>,
    dropped: u64,
}

impl CommandLog {
    /// Creates a disabled log.
    pub fn new() -> Self {
        CommandLog::default()
    }

    /// Enables logging, keeping the most recent `capacity` commands.
    pub fn enable(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.records.clear();
        self.dropped = 0;
    }

    /// True when logging is active.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, record: CommandRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &CommandRecord> {
        self.records.iter()
    }

    /// Records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize the log configuration and retained records.
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("cmdlog");
        w.usize(self.capacity);
        w.u64(self.dropped);
        w.usize(self.records.len());
        for rec in &self.records {
            w.u64(rec.at.raw());
            w.u64(rec.id.raw());
            w.u8(match rec.op {
                Op::Read => 0,
                Op::Write => 1,
            });
            w.u8(match rec.kind {
                PlanKind::RowHit => 0,
                PlanKind::Activate => 1,
                PlanKind::Underfetch => 2,
                PlanKind::Write => 3,
            });
            w.usize(rec.bank_index);
            w.u32(rec.row);
            w.u32(rec.coord.sag);
            w.u32(rec.coord.cd_first);
            w.u32(rec.coord.cd_count);
            w.u64(rec.data_start.raw());
            w.u32(rec.retries);
        }
    }

    /// Restore a log written by [`CommandLog::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](fgnvm_types::SnapshotError) on a
    /// truncated stream or an unknown op/kind discriminant.
    pub fn load_state(
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<CommandLog, fgnvm_types::SnapshotError> {
        r.tag("cmdlog")?;
        let capacity = r.usize()?;
        let dropped = r.u64()?;
        let n = r.usize()?;
        let mut records = VecDeque::with_capacity(n);
        for _ in 0..n {
            let at = Cycle::new(r.u64()?);
            let id = RequestId::new(r.u64()?);
            let op = match r.u8()? {
                0 => Op::Read,
                1 => Op::Write,
                other => {
                    return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                        "unknown op discriminant {other}"
                    )))
                }
            };
            let kind = match r.u8()? {
                0 => PlanKind::RowHit,
                1 => PlanKind::Activate,
                2 => PlanKind::Underfetch,
                3 => PlanKind::Write,
                other => {
                    return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                        "unknown plan-kind discriminant {other}"
                    )))
                }
            };
            let bank_index = r.usize()?;
            let row = r.u32()?;
            let coord = TileCoord {
                sag: r.u32()?,
                cd_first: r.u32()?,
                cd_count: r.u32()?,
            };
            let data_start = Cycle::new(r.u64()?);
            let retries = r.u32()?;
            records.push_back(CommandRecord {
                at,
                id,
                op,
                kind,
                bank_index,
                row,
                coord,
                data_start,
                retries,
            });
        }
        Ok(CommandLog {
            capacity,
            records,
            dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at: u64) -> CommandRecord {
        CommandRecord {
            at: Cycle::new(at),
            id: RequestId::new(at),
            op: Op::Read,
            kind: PlanKind::Activate,
            bank_index: 0,
            row: 1,
            coord: TileCoord {
                sag: 0,
                cd_first: 0,
                cd_count: 1,
            },
            data_start: Cycle::new(at + 48),
            retries: 0,
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = CommandLog::new();
        log.push(record(0));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = CommandLog::new();
        log.enable(2);
        for t in 0..5 {
            log.push(record(t));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let ats: Vec<u64> = log.records().map(|r| r.at.raw()).collect();
        assert_eq!(ats, vec![3, 4]);
    }

    #[test]
    fn display_is_informative() {
        let s = record(7).to_string();
        assert!(s.contains("cy7") && s.contains("ba0") && s.contains("row1"));
    }
}
