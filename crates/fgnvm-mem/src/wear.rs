//! PCM endurance: wear tracking and Start-Gap wear leveling.
//!
//! Phase-change cells endure ~10⁷–10⁹ writes, so a PCM main memory must
//! (a) know where writes land and (b) spread them. This module provides
//! both as an optional layer under the timing simulator:
//!
//! * [`WearTracker`] — per-(bank, row) write counters with imbalance and
//!   lifetime estimation.
//! * [`StartGap`] — the classic algebraic wear-leveling scheme (Qureshi et
//!   al., MICRO 2009): one spare row per region plus two registers
//!   (`start`, `gap`); every `interval` writes the gap moves by one row,
//!   slowly rotating the logical-to-physical row mapping without a
//!   remapping table. The rotation's row copy is issued through the normal
//!   request path, so its bandwidth and energy costs are modeled, not
//!   assumed free.

use fgnvm_types::error::ConfigError;

/// Per-(bank, row) write counters.
///
/// ```
/// use fgnvm_mem::WearTracker;
///
/// let mut wear = WearTracker::new(2, 64);
/// for _ in 0..10 { wear.record(0, 7); }
/// wear.record(1, 3);
/// assert_eq!(wear.max_row_writes(), 10);
/// // 1e6-write cells at 100 writes/s, ~91% of them on the hot row:
/// assert!(wear.lifetime_seconds(1_000_000, 100.0) < 11_050.0);
/// ```
#[derive(Debug, Clone)]
pub struct WearTracker {
    rows_per_bank: u32,
    writes: Vec<u32>,
    total: u64,
}

impl WearTracker {
    /// Creates a tracker for `banks × rows_per_bank` rows.
    pub fn new(banks: u32, rows_per_bank: u32) -> Self {
        WearTracker {
            rows_per_bank,
            writes: vec![0; (banks as usize) * (rows_per_bank as usize)],
            total: 0,
        }
    }

    /// Records one line write into (bank, physical row).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn record(&mut self, bank: u32, row: u32) {
        let index = bank as usize * self.rows_per_bank as usize + row as usize;
        self.writes[index] += 1;
        self.total += 1;
    }

    /// Total writes recorded.
    pub fn total_writes(&self) -> u64 {
        self.total
    }

    /// The most-written row's count.
    pub fn max_row_writes(&self) -> u32 {
        self.writes.iter().copied().max().unwrap_or(0)
    }

    /// Mean writes per *touched* row (untouched rows excluded).
    pub fn mean_touched_writes(&self) -> f64 {
        let touched = self.writes.iter().filter(|&&w| w > 0).count();
        if touched == 0 {
            0.0
        } else {
            self.total as f64 / touched as f64
        }
    }

    /// Wear imbalance: max row writes over mean touched-row writes
    /// (1.0 = perfectly even). The figure of merit wear leveling improves.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_touched_writes();
        if mean == 0.0 {
            1.0
        } else {
            f64::from(self.max_row_writes()) / mean
        }
    }

    /// Estimated lifetime in seconds: the device dies when the hottest row
    /// exhausts `cell_endurance` writes, extrapolating the observed write
    /// distribution at `writes_per_second`.
    ///
    /// # Panics
    ///
    /// Panics if `writes_per_second` is not positive.
    pub fn lifetime_seconds(&self, cell_endurance: u64, writes_per_second: f64) -> f64 {
        assert!(writes_per_second > 0.0, "write rate must be positive");
        let max = u64::from(self.max_row_writes());
        if max == 0 {
            return f64::INFINITY;
        }
        // Writes to the hottest row per global write.
        let hot_fraction = max as f64 / self.total as f64;
        let hot_rate = writes_per_second * hot_fraction;
        cell_endurance as f64 / hot_rate
    }

    /// Serialize every per-row counter into a checkpoint.
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("wear");
        w.u32(self.rows_per_bank);
        w.u64(self.total);
        w.usize(self.writes.len());
        for v in &self.writes {
            w.u32(*v);
        }
    }

    /// Restore counters written by [`WearTracker::save_state`] into this
    /// tracker.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](fgnvm_types::SnapshotError) when the
    /// checkpoint geometry disagrees with this tracker's.
    pub fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("wear")?;
        let rows_per_bank = r.u32()?;
        if rows_per_bank != self.rows_per_bank {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "checkpoint has {rows_per_bank} rows/bank, tracker has {}",
                self.rows_per_bank
            )));
        }
        self.total = r.u64()?;
        let n = r.usize()?;
        if n != self.writes.len() {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "checkpoint has {n} wear rows, tracker has {}",
                self.writes.len()
            )));
        }
        for v in &mut self.writes {
            *v = r.u32()?;
        }
        Ok(())
    }
}

/// Start-Gap wear leveling over one bank's `rows` logical rows (plus one
/// physical spare).
///
/// ```
/// # fn main() -> Result<(), fgnvm_types::ConfigError> {
/// use fgnvm_mem::StartGap;
///
/// let mut leveler = StartGap::new(8, 1)?;
/// let before = leveler.map(0);
/// // One full sweep of gap movements remaps every logical row.
/// for _ in 0..9 {
///     if let Some(rotation) = leveler.note_write() {
///         // A real controller copies rotation.src_row → rotation.dst_row.
///         let _ = rotation;
///     }
/// }
/// assert_ne!(leveler.map(0), before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StartGap {
    /// Logical rows being leveled.
    rows: u32,
    /// Rotation offset; increments once per full gap sweep.
    start: u32,
    /// Physical index of the spare (unmapped) row, in `0..=rows`.
    gap: u32,
    /// Writes between gap movements.
    interval: u32,
    /// Writes since the last movement.
    since_move: u32,
    /// Total gap movements performed.
    rotations: u64,
}

/// A pending gap movement: copy `src_row`'s contents into `dst_row`
/// (physical indices). The caller issues the copy through the normal
/// request path so its cost is modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rotation {
    /// Physical row to read.
    pub src_row: u32,
    /// Physical row to write (the old gap position).
    pub dst_row: u32,
}

impl StartGap {
    /// Creates a leveler for `rows` logical rows, moving the gap every
    /// `interval` writes (Qureshi et al. use 100).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `rows` or `interval` is zero.
    pub fn new(rows: u32, interval: u32) -> Result<Self, ConfigError> {
        if rows == 0 {
            return Err(ConfigError::OutOfRange {
                field: "rows",
                expected: "at least 1",
            });
        }
        if interval == 0 {
            return Err(ConfigError::OutOfRange {
                field: "gap_interval",
                expected: "at least 1",
            });
        }
        Ok(StartGap {
            rows,
            start: 0,
            gap: rows,
            interval,
            since_move: 0,
            rotations: 0,
        })
    }

    /// Maps a logical row to its current physical row.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `row` is out of range.
    pub fn map(&self, row: u32) -> u32 {
        debug_assert!(row < self.rows, "logical row {row} out of range");
        // Classic Start-Gap algebra: rotate by `start`, then skip the gap.
        let rotated = (row + self.start) % self.rows;
        if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        }
    }

    /// Notes one write; every `interval`-th write returns the row copy the
    /// caller must perform, after which the gap has moved by one.
    pub fn note_write(&mut self) -> Option<Rotation> {
        self.since_move += 1;
        if self.since_move < self.interval {
            return None;
        }
        self.since_move = 0;
        self.rotations += 1;
        // Move the gap "up": the row just below the gap slides into it.
        let rotation = if self.gap == 0 {
            // Gap wraps to the top; one full sweep completed → advance start.
            self.gap = self.rows;
            self.start = (self.start + 1) % self.rows;
            Rotation {
                src_row: self.rows - 1,
                dst_row: 0,
            }
        } else {
            let dst = self.gap;
            self.gap -= 1;
            Rotation {
                src_row: self.gap,
                dst_row: dst,
            }
        };
        Some(rotation)
    }

    /// Total gap movements so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Current (start, gap) registers, for inspection.
    pub fn registers(&self) -> (u32, u32) {
        (self.start, self.gap)
    }

    /// Serialize the leveler's registers into a checkpoint.
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("startgap");
        w.u32(self.rows);
        w.u32(self.start);
        w.u32(self.gap);
        w.u32(self.interval);
        w.u32(self.since_move);
        w.u64(self.rotations);
    }

    /// Restore registers written by [`StartGap::save_state`] into this
    /// leveler. The gap-movement `interval` is taken from the checkpoint
    /// (it is runtime state chosen at `enable_start_gap` time, not part of
    /// the structural configuration).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](fgnvm_types::SnapshotError) when the
    /// checkpoint's row count disagrees with this leveler's.
    pub fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("startgap")?;
        let rows = r.u32()?;
        let start = r.u32()?;
        let gap = r.u32()?;
        let interval = r.u32()?;
        if rows != self.rows {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "checkpoint leveler has {rows} rows, config has {}",
                self.rows
            )));
        }
        if interval == 0 {
            return Err(fgnvm_types::SnapshotError::Corrupt(
                "leveler interval must be positive".into(),
            ));
        }
        self.interval = interval;
        if gap > rows {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "gap register {gap} exceeds row count {rows}"
            )));
        }
        self.start = start;
        self.gap = gap;
        self.since_move = r.u32()?;
        self.rotations = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tracker_counts_and_imbalance() {
        let mut t = WearTracker::new(2, 16);
        for _ in 0..9 {
            t.record(0, 3);
        }
        t.record(1, 7);
        assert_eq!(t.total_writes(), 10);
        assert_eq!(t.max_row_writes(), 9);
        assert!((t.mean_touched_writes() - 5.0).abs() < 1e-12);
        assert!((t.imbalance() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn tracker_lifetime() {
        let mut t = WearTracker::new(1, 4);
        // All writes hammer one row: worst case.
        for _ in 0..100 {
            t.record(0, 0);
        }
        // Endurance 1e6, 1000 writes/s all to that row → 1000 s.
        let life = t.lifetime_seconds(1_000_000, 1000.0);
        assert!((life - 1000.0).abs() < 1e-6);
        // Empty tracker: infinite lifetime.
        assert!(WearTracker::new(1, 4)
            .lifetime_seconds(1_000_000, 1.0)
            .is_infinite());
    }

    #[test]
    fn start_gap_mapping_is_injective() {
        let mut sg = StartGap::new(16, 1).unwrap();
        for step in 0..200 {
            let physical: HashSet<u32> = (0..16).map(|r| sg.map(r)).collect();
            assert_eq!(physical.len(), 16, "collision after {step} rotations");
            assert!(physical.iter().all(|&p| p <= 16));
            // The gap row is never mapped.
            let (_, gap) = sg.registers();
            assert!(
                !physical.contains(&gap),
                "gap {gap} is mapped at step {step}"
            );
            sg.note_write();
        }
    }

    #[test]
    fn start_gap_rotation_cadence() {
        let mut sg = StartGap::new(8, 4).unwrap();
        let mut rotations = 0;
        for _ in 0..40 {
            if sg.note_write().is_some() {
                rotations += 1;
            }
        }
        assert_eq!(rotations, 10);
        assert_eq!(sg.rotations(), 10);
    }

    #[test]
    fn start_gap_full_sweep_advances_start() {
        let mut sg = StartGap::new(4, 1).unwrap();
        // gap starts at 4; four moves bring it to 0, the fifth wraps.
        for _ in 0..4 {
            sg.note_write();
        }
        assert_eq!(sg.registers(), (0, 0));
        let wrap = sg.note_write().unwrap();
        assert_eq!(
            wrap,
            Rotation {
                src_row: 3,
                dst_row: 0
            }
        );
        assert_eq!(sg.registers(), (1, 4));
    }

    #[test]
    fn start_gap_eventually_remaps_every_row() {
        let mut sg = StartGap::new(8, 1).unwrap();
        let before: Vec<u32> = (0..8).map(|r| sg.map(r)).collect();
        // One full sweep plus one step: every logical row moved.
        for _ in 0..9 {
            sg.note_write();
        }
        let after: Vec<u32> = (0..8).map(|r| sg.map(r)).collect();
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(moved == 8, "only {moved} rows moved");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(StartGap::new(0, 1).is_err());
        assert!(StartGap::new(8, 0).is_err());
    }
}
