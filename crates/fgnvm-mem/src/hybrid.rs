//! DRAM-buffered PCM: the hybrid main-memory organization of Qureshi et
//! al. (ISCA 2009) — the paper's reference \[8\].
//!
//! A small, fast DRAM buffer caches lines in front of the PCM array:
//! buffer hits complete at DRAM speed, buffer *misses* go to the PCM
//! [`MemorySystem`], and dirty evictions write back to it. Writes always
//! land in the buffer (full-line writes need no fill), so the slow PCM
//! array sees only read misses and writeback traffic — the organization's
//! two selling points.
//!
//! The buffer is modeled as a set-associative LRU tag store with a fixed
//! hit latency; its own bank contention is not modeled (DRAM is an order
//! of magnitude faster than the PCM behind it, so PCM-side behaviour —
//! which is what the FgNVM comparison needs — dominates). Energy figures
//! reported by [`energy`](HybridMemory::energy) cover the PCM array only.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fgnvm_mem::hybrid::HybridMemory;
//! use fgnvm_mem::{MemoryBackend, MemorySystem};
//! use fgnvm_types::config::SystemConfig;
//! use fgnvm_types::request::Op;
//! use fgnvm_types::PhysAddr;
//!
//! let pcm = MemorySystem::new(SystemConfig::fgnvm(8, 2)?)?;
//! let mut hybrid = HybridMemory::new(pcm, 4 * 1024 * 1024, 16)?;
//! let miss = hybrid.enqueue(Op::Read, PhysAddr::new(0)).expect("accepted");
//! let done = hybrid.run_until_idle(100_000);
//! assert!(done.iter().any(|c| c.id == miss));
//! // The second access to the same line is a buffer hit (fast).
//! let hit = hybrid.enqueue(Op::Read, PhysAddr::new(0)).expect("accepted");
//! let done = hybrid.run_until_idle(100_000);
//! assert!(done.iter().any(|c| c.id == hit));
//! assert_eq!(hybrid.buffer_hits(), 1);
//! # Ok(())
//! # }
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fgnvm_types::address::PhysAddr;
use fgnvm_types::error::ConfigError;
use fgnvm_types::request::{Completion, Op, RequestId};
use fgnvm_types::time::{Cycle, CycleCount};

use crate::backend::MemoryBackend;
use crate::energy::EnergyBreakdown;
use crate::MemorySystem;

/// Hit latency of the DRAM buffer in (PCM-)controller cycles: roughly a
/// DDR3 access (tRCD + tCL + tBURST = 16 cy at 400 MHz).
const BUFFER_HIT_LATENCY: CycleCount = CycleCount::new(16);

/// Id-space offset for requests the buffer absorbs, keeping them disjoint
/// from the PCM system's ids.
const HIT_ID_BASE: u64 = 1 << 62;

#[derive(Debug, Clone, Copy)]
struct TagEntry {
    tag: u64,
    dirty: bool,
    lru: u64,
}

/// Set-associative LRU tag store of the DRAM buffer.
#[derive(Debug, Clone)]
struct TagStore {
    sets: u64,
    ways: usize,
    entries: Vec<Option<TagEntry>>,
    tick: u64,
}

impl TagStore {
    fn new(lines: u64, ways: usize) -> Self {
        let sets = lines / ways as u64;
        TagStore {
            sets,
            ways,
            entries: vec![None; lines as usize],
            tick: 0,
        }
    }

    /// Looks up `line`; on hit, refreshes LRU and returns true (marking
    /// dirty for writes).
    fn probe(&mut self, line: u64, is_write: bool) -> bool {
        self.tick += 1;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        for e in self.entries[set * self.ways..(set + 1) * self.ways]
            .iter_mut()
            .flatten()
        {
            if e.tag == tag {
                e.lru = self.tick;
                e.dirty |= is_write;
                return true;
            }
        }
        false
    }

    /// Allocates `line`, returning the dirty victim's line if one was
    /// evicted.
    fn allocate(&mut self, line: u64, dirty: bool) -> Option<u64> {
        self.tick += 1;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let slots = &mut self.entries[set * self.ways..(set + 1) * self.ways];
        let victim = slots.iter().position(Option::is_none).unwrap_or_else(|| {
            slots
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.map(|x| x.lru).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("set has ways")
        });
        let evicted = slots[victim].and_then(|e| e.dirty.then_some(e.tag * self.sets + set as u64));
        slots[victim] = Some(TagEntry {
            tag,
            dirty,
            lru: self.tick,
        });
        evicted
    }
}

/// A DRAM buffer in front of a PCM [`MemorySystem`].
#[derive(Debug)]
pub struct HybridMemory {
    pcm: MemorySystem,
    tags: TagStore,
    line_bytes: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    next_hit_id: u64,
    hit_events: BinaryHeap<Reverse<(Cycle, u64)>>,
}

impl HybridMemory {
    /// Wraps `pcm` with a DRAM buffer of `capacity_bytes`, `ways`-way
    /// associative, using the PCM system's line size.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the capacity is not a positive multiple
    /// of `ways × line size` with a power-of-two set count.
    pub fn new(pcm: MemorySystem, capacity_bytes: u64, ways: usize) -> Result<Self, ConfigError> {
        let line_bytes = u64::from(pcm.config().geometry.line_bytes());
        let lines = capacity_bytes / line_bytes;
        if ways == 0 || lines == 0 || !lines.is_multiple_of(ways as u64) {
            return Err(ConfigError::Invalid {
                field: "capacity_bytes",
                reason: "buffer capacity must be a positive multiple of ways × line size",
            });
        }
        let sets = lines / ways as u64;
        if !sets.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "sets",
                value: sets as u32,
            });
        }
        Ok(HybridMemory {
            tags: TagStore::new(lines, ways),
            line_bytes,
            pcm,
            hits: 0,
            misses: 0,
            writebacks: 0,
            next_hit_id: HIT_ID_BASE,
            hit_events: BinaryHeap::new(),
        })
    }

    /// Buffer hits so far.
    pub fn buffer_hits(&self) -> u64 {
        self.hits
    }

    /// Buffer misses so far (each produced PCM traffic).
    pub fn buffer_misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions written back to PCM so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// The PCM array behind the buffer.
    pub fn pcm(&self) -> &MemorySystem {
        &self.pcm
    }

    /// PCM-array energy (the buffer's DRAM energy is out of scope).
    pub fn energy(&self) -> EnergyBreakdown {
        self.pcm.energy()
    }

    fn complete_at(&mut self, latency: CycleCount) -> RequestId {
        let id = RequestId::new(self.next_hit_id);
        self.next_hit_id += 1;
        self.hit_events
            .push(Reverse((self.pcm.now() + latency, id.raw())));
        id
    }

    /// Allocates a line, issuing the writeback of any dirty victim.
    fn allocate(&mut self, line: u64, dirty: bool) {
        if let Some(victim_line) = self.tags.allocate(line, dirty) {
            self.writebacks += 1;
            // Best effort: if the PCM write queue is full the writeback is
            // retried by pressure later; dropping the timing event keeps
            // the model simple and errs against the hybrid.
            let addr = PhysAddr::new(victim_line * self.line_bytes);
            let _ = self.pcm.enqueue(Op::Write, addr);
        }
    }
}

impl MemoryBackend for HybridMemory {
    fn enqueue(&mut self, op: Op, addr: PhysAddr) -> Option<RequestId> {
        let line = addr.raw() / self.line_bytes;
        if self.tags.probe(line, op.is_write()) {
            self.hits += 1;
            return Some(self.complete_at(BUFFER_HIT_LATENCY));
        }
        match op {
            Op::Read => {
                // Miss: fetch from PCM and fill.
                let id = self.pcm.enqueue(Op::Read, addr)?;
                self.misses += 1;
                self.allocate(line, false);
                Some(id)
            }
            Op::Write => {
                // Full-line write: allocate without a fill; the buffer
                // absorbs it at DRAM speed.
                self.misses += 1;
                self.allocate(line, true);
                Some(self.complete_at(BUFFER_HIT_LATENCY))
            }
        }
    }

    fn enqueue_prefetch(&mut self, addr: PhysAddr) -> Option<RequestId> {
        let line = addr.raw() / self.line_bytes;
        if self.tags.probe(line, false) {
            return None; // already buffered: drop the prefetch
        }
        let id = self.pcm.enqueue_prefetch(addr)?;
        self.allocate(line, false);
        Some(id)
    }

    fn tick_into(&mut self, out: &mut Vec<Completion>) {
        // Drain due buffer-hit completions (timestamped before the tick).
        while let Some(Reverse((at, _))) = self.hit_events.peek() {
            if *at > self.pcm.now() {
                break;
            }
            let Reverse((at, id_raw)) = self.hit_events.pop().expect("peeked");
            out.push(Completion {
                id: RequestId::new(id_raw),
                op: Op::Read,
                arrival: at,
                finished: at,
                tenant: 0,
            });
        }
        self.pcm.tick_into(out);
    }

    fn next_event_at(&self) -> Option<Cycle> {
        // The buffer's own events are the scheduled hit completions; the
        // PCM behind it reports its event-driven bound (None while its
        // fast-forward is disabled, which disables the hybrid's too).
        let pcm_next = MemoryBackend::next_event_at(&self.pcm);
        if !self.pcm.fast_forward_enabled() {
            return None;
        }
        let hit_next = self
            .hit_events
            .peek()
            .map(|Reverse((at, _))| (*at).max(self.pcm.now()));
        match (pcm_next, hit_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn tick_to(&mut self, target: Cycle, out: &mut Vec<Completion>) {
        while self.pcm.now() < target {
            let hop = match MemoryBackend::next_event_at(self) {
                None if self.pcm.fast_forward_enabled() => target,
                None => self.pcm.now(), // stepped mode: no jumping
                Some(at) => at.min(target),
            };
            if hop > self.pcm.now() {
                // Nothing — no due hit completion, no PCM event — can
                // happen before `hop`, so the per-tick hit drain is a
                // provable no-op across the jump and only the PCM's clock
                // needs to move.
                self.pcm.tick_to(hop, out);
            } else {
                self.tick_into(out);
            }
        }
    }

    fn now(&self) -> Cycle {
        self.pcm.now()
    }

    fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        let deadline = self.pcm.now() + CycleCount::new(max_cycles);
        while !self.hit_events.is_empty() || !self.pcm.is_idle() {
            assert!(self.pcm.now() < deadline, "hybrid memory failed to drain");
            if let Some(at) = MemoryBackend::next_event_at(self) {
                let hop = at.min(deadline);
                if hop > self.pcm.now() {
                    self.pcm.tick_to(hop, &mut out);
                    continue;
                }
            }
            self.tick_into(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_types::config::SystemConfig;

    fn hybrid() -> HybridMemory {
        let pcm = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        HybridMemory::new(pcm, 64 * 1024, 4).unwrap()
    }

    #[test]
    fn read_miss_then_hit() {
        let mut h = hybrid();
        let miss = h.enqueue(Op::Read, PhysAddr::new(0)).unwrap();
        let done = h.run_until_idle(100_000);
        let miss_latency = done
            .iter()
            .find(|c| c.id == miss)
            .unwrap()
            .finished
            .saturating_since(Cycle::ZERO);
        assert!(miss_latency.raw() >= 52, "miss went to PCM");
        let t0 = h.now();
        let hit = h.enqueue(Op::Read, PhysAddr::new(0)).unwrap();
        let done = h.run_until_idle(100_000);
        let hit_done = done.iter().find(|c| c.id == hit).unwrap().finished;
        assert_eq!((hit_done - t0).raw(), 16, "hit at DRAM speed");
        assert_eq!(h.buffer_hits(), 1);
        assert_eq!(h.buffer_misses(), 1);
    }

    #[test]
    fn writes_are_absorbed_by_the_buffer() {
        let mut h = hybrid();
        h.enqueue(Op::Write, PhysAddr::new(0x40)).unwrap();
        h.run_until_idle(100_000);
        // The PCM array saw no traffic at all.
        assert_eq!(h.pcm().bank_stats().writes, 0);
        assert_eq!(h.pcm().bank_stats().reads, 0);
        // A read of the written line is a buffer hit.
        h.enqueue(Op::Read, PhysAddr::new(0x40)).unwrap();
        h.run_until_idle(100_000);
        assert_eq!(h.buffer_hits(), 1);
    }

    #[test]
    fn dirty_eviction_writes_back_to_pcm() {
        let mut h = hybrid();
        // Dirty one line, then stream enough conflicting lines through its
        // set to evict it. Set count = 64 KiB / 64 B / 4 ways = 256 sets;
        // lines that collide are 256 lines (16 KiB) apart.
        h.enqueue(Op::Write, PhysAddr::new(0)).unwrap();
        h.run_until_idle(100_000);
        for i in 1..=4u64 {
            h.enqueue(Op::Read, PhysAddr::new(i * 256 * 64)).unwrap();
            h.run_until_idle(1_000_000);
        }
        assert_eq!(h.writebacks(), 1);
        assert_eq!(h.pcm().bank_stats().writes, 1);
    }

    #[test]
    fn invalid_buffer_shapes_rejected() {
        let pcm = MemorySystem::new(SystemConfig::baseline()).unwrap();
        assert!(HybridMemory::new(pcm, 100, 4).is_err());
        let pcm = MemorySystem::new(SystemConfig::baseline()).unwrap();
        assert!(HybridMemory::new(pcm, 64 * 1024, 0).is_err());
    }

    #[test]
    fn conservation_through_the_trait() {
        // Drive the backend surface directly: every accepted read
        // completes exactly once.
        let mut h = hybrid();
        let mut ids = Vec::new();
        for i in 0..32u64 {
            loop {
                if let Some(id) = h.enqueue(Op::Read, PhysAddr::new(i * 4096)) {
                    ids.push(id);
                    break;
                }
                let mut out = Vec::new();
                h.tick_into(&mut out);
            }
        }
        let done = h.run_until_idle(1_000_000);
        for id in ids {
            assert_eq!(done.iter().filter(|c| c.id == id).count(), 1);
        }
    }
}
