//! The per-channel memory controller.
//!
//! Owns the channel's banks, the read (transaction) queue, the write queue,
//! the shared data bus, and a [`Scheduler`]. Each controller cycle it
//! issues up to `commands_per_cycle` commands (one for the standard design,
//! more for the paper's Multi-Issue variant) chosen by the scheduler, and
//! retires completions whose data bursts have finished.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fgnvm_bank::{
    AccessPlan, Bank, BankStats, BaselineBank, BlockReason, DramBank, FaultModel, FgnvmBank,
    Modes, OccupancySnapshot, PlanKind, RefreshCycles,
};
use fgnvm_obs::audit::GATES;
use fgnvm_obs::{BlockGate, CommandIssue, InstantKind, IssueAudit, Observer};
use fgnvm_types::config::{BankModel, ReliabilityConfig, SystemConfig};
use fgnvm_types::error::ConfigError;
use fgnvm_types::request::{Completion, Op};
use fgnvm_types::time::{Cycle, CycleCount};
use fgnvm_types::TimingCycles;

use crate::bus::DataBus;
use crate::cmdlog::{CommandLog, CommandRecord};
use crate::queues::{DrainPolicy, Pending, RequestQueue};
use crate::scheduler::{make_scheduler, Scheduler};
use crate::stats::SystemStats;

/// Outcome of presenting a request to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Queued; a completion will be reported later.
    Accepted,
    /// Read served from the write queue (forwarding) or write merged into an
    /// existing entry; completes on the next cycle.
    Satisfied,
    /// The target queue is full; retry later.
    Full,
}

/// A scheduled future completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: Cycle,
    id_raw: u64,
    is_read: bool,
    arrival: Cycle,
    tenant: u16,
}

/// Rank-to-rank data-bus turnaround (tRTRS): bursts from different ranks
/// need a bubble between them for bus ownership to switch.
const T_RTRS: CycleCount = CycleCount::new(2);

/// One slot of the channel's next-event calendar: the memoized result of
/// [`Controller::next_event_at`].
///
/// The memo is sound *and exact* because every quantity the linear scan
/// consults is a state-derived instant: the event heap's head, the drain
/// flag (whose per-tick update is a fixpoint under constant occupancy — see
/// [`DrainPolicy::update`]), bank readiness hints, and blocked-plan retry
/// instants, none of which depend on the query time except through
/// comparisons against it. So a value computed at `t0` stays exactly what a
/// fresh scan would return for any query instant in `(t0, value)`, as long
/// as no state mutation (enqueue, event retirement, command issue, or
/// checkpoint restore) happened in between — and every mutation path clears
/// the memo.
#[derive(Debug, Clone, Copy)]
enum NextAt {
    /// The channel was idle; it stays idle until an enqueue (which clears
    /// the memo).
    Idle,
    /// The earliest instant a tick could change state.
    At(Cycle),
}

/// Per-rank tFAW tracking: at most four activations may start within any
/// rolling `t_faw` window (a DRAM charge-pump power limit — a rank-level
/// constraint, so it lives in the controller, not the bank). NVM designs
/// have no such limit and carry no tracker.
#[derive(Debug)]
struct FawState {
    t_faw: CycleCount,
    /// Start cycles of each rank's last four activations.
    windows: Vec<[Option<Cycle>; 4]>,
}

impl FawState {
    fn new(t_faw: CycleCount, ranks: usize) -> Self {
        FawState {
            t_faw,
            windows: vec![[None; 4]; ranks],
        }
    }

    /// Earliest instant a fifth activation may start on `rank`.
    fn ready(&self, rank: usize) -> Cycle {
        let window = &self.windows[rank];
        if window.iter().any(Option::is_none) {
            return Cycle::ZERO;
        }
        let oldest = window
            .iter()
            .flatten()
            .copied()
            .fold(Cycle::MAX, Cycle::min);
        oldest + self.t_faw
    }

    /// Records an activation at `now`, evicting the oldest entry.
    fn record(&mut self, rank: usize, now: Cycle) {
        let window = &mut self.windows[rank];
        // Fill empty slots before evicting: an empty slot and an entry at
        // cycle 0 would otherwise tie at the minimum and leave the window
        // forever half-filled (so tFAW would never engage).
        let slot = window.iter().position(Option::is_none).unwrap_or_else(|| {
            window
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.expect("no empty slots remain"))
                .map(|(i, _)| i)
                .expect("window is non-empty")
        });
        window[slot] = Some(now);
    }
}

/// One channel's controller.
#[derive(Debug)]
pub struct Controller {
    /// This controller's channel index (observer track id).
    channel: u32,
    banks: Vec<Box<dyn Bank>>,
    banks_per_rank: u32,
    reads: RequestQueue,
    writes: RequestQueue,
    scheduler: Box<dyn Scheduler>,
    bus: DataBus,
    /// Rank of the most recent burst and when it ends, for tRTRS.
    last_burst: Option<(u32, Cycle)>,
    drain: DrainPolicy,
    draining: bool,
    commands_per_cycle: u32,
    events: BinaryHeap<Reverse<Event>>,
    log: CommandLog,
    /// Rank-level tFAW tracker; `Some` only for DRAM designs.
    faw: Option<FawState>,
    /// Controller-side ECC parameters; `Some` when the reliability layer is
    /// enabled.
    ecc: Option<EccParams>,
    /// Rows whose reads came back uncorrectable, awaiting remap by the
    /// memory system: `(bank_index, row)`.
    bad_rows: Vec<(usize, u32)>,
    /// Resolved timing, kept only so the chaos path can fabricate plans.
    timing: TimingCycles,
    /// Test-only fault injection: when set, force-issue a queue head with a
    /// fabricated plan whenever the scheduler finds nothing legal to issue.
    chaos: bool,
    /// This channel's calendar slot: the memoized [`next_event_at`]
    /// result, cleared by every state mutation (see `NextAt`).
    ///
    /// [`next_event_at`]: Controller::next_event_at
    next_cache: Cell<Option<NextAt>>,
    /// Memoized issue bound: when `Some(b)`, no command can legally issue
    /// strictly before cycle `b`. Unlike [`next_cache`] this survives
    /// completion retirements — retiring an event touches neither queues
    /// nor banks, so issue legality is unchanged — and is cleared only by
    /// enqueues, issues, chaos toggling, and checkpoint restores. A tick
    /// at `now < b` can therefore skip the scheduler's pick scan outright:
    /// every pick implementation is a pure function of (queue, bank, now)
    /// state that mutates its streak bookkeeping only when it returns a
    /// pick, so eliding a provably empty pick is bit-identical.
    ///
    /// [`next_cache`]: field@Controller::next_cache
    issue_bound: Cell<Option<Cycle>>,
    /// True while the owning system drives this channel event-to-event
    /// (fast-forward). Ticks are then sparse, so [`issue_one`] affords an
    /// O(banks) gate pre-check before each pick; in cycle-stepped mode the
    /// same check would run every cycle and is left out so the stepped
    /// path stays the plain reference implementation. The flag selects
    /// between two bit-identical strategies — never between behaviours.
    ///
    /// [`issue_one`]: Controller::issue_one
    event_driven: bool,
    /// Read-queue entries per bank index. Queue entries cluster on few
    /// banks, and a bank's readiness hint gates every entry on it alike —
    /// so the calendar scan walks these counts (one hint per *occupied
    /// bank*) instead of the queue (one hint per *entry*).
    queued_reads_per_bank: Vec<u32>,
    /// Write-queue entries per bank index; same role as
    /// [`queued_reads_per_bank`](field@Controller::queued_reads_per_bank).
    queued_writes_per_bank: Vec<u32>,
}

/// What [`Controller::audit_probe`] measured for one issue decision.
#[derive(Debug)]
struct AuditProbe {
    considered: u32,
    blocked: [u32; GATES],
    ready_peers: u32,
    co_issuable: u32,
    missed: Vec<(u32, u32)>,
}

/// Controller-side ECC behaviour (graceful degradation).
#[derive(Debug, Clone, Copy)]
struct EccParams {
    /// Bit errors per line the code corrects.
    correctable_bits: u32,
    /// Decode latency added to a corrected read.
    decode_penalty: CycleCount,
}

impl Controller {
    /// Builds a controller (banks, queues, bus, scheduler) for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is internally
    /// inconsistent (see [`SystemConfig::validate`]).
    pub fn new(config: &SystemConfig) -> Result<Self, ConfigError> {
        Controller::new_for_channel(config, 0)
    }

    /// Like [`Controller::new`], but decorrelates the fault-model seeds of
    /// this channel's banks from every other channel's.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is internally
    /// inconsistent (see [`SystemConfig::validate`]).
    pub fn new_for_channel(config: &SystemConfig, channel: u32) -> Result<Self, ConfigError> {
        config.validate()?;
        let timing = config.timing.to_cycles()?;
        let bank_count =
            (config.geometry.ranks_per_channel() * config.geometry.banks_per_rank()) as usize;
        let fault_model = |index: usize| -> Option<FaultModel> {
            let r: &ReliabilityConfig = &config.reliability;
            if !r.enabled {
                return None;
            }
            // Golden-ratio hashing decorrelates each (channel, bank) stream
            // from the configured seed.
            let lane = (u64::from(channel) << 32) | index as u64;
            let seed = r.fault_seed ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            Some(FaultModel::new(
                seed,
                r.rber,
                r.write_fail_prob,
                r.max_write_retries,
                r.wear_stuck_threshold,
                u64::from(config.geometry.line_bytes()) * 8,
            ))
        };
        let mut banks: Vec<Box<dyn Bank>> = Vec::with_capacity(bank_count);
        for index in 0..bank_count {
            match config.bank_model {
                BankModel::Baseline => {
                    let mut bank = BaselineBank::new(&config.geometry, timing);
                    if let Some(model) = fault_model(index) {
                        bank = bank.with_faults(model);
                    }
                    banks.push(Box::new(bank));
                }
                BankModel::Dram => {
                    let refresh =
                        RefreshCycles::ddr3_like().staggered(index as u32, bank_count as u32);
                    let bank = DramBank::new(&config.geometry, timing, refresh)
                        .with_policy(config.row_policy);
                    banks.push(Box::new(bank));
                }
                model @ BankModel::Fgnvm { .. } => {
                    let modes = Modes::try_from(model).expect("fgnvm model carries modes");
                    let shared_column_path = config.commands_per_cycle == 1;
                    let mut bank =
                        FgnvmBank::new(&config.geometry, timing, modes, shared_column_path)?
                            .with_write_pausing(config.write_pausing);
                    if let Some(model) = fault_model(index) {
                        bank = bank.with_faults(model);
                    }
                    banks.push(Box::new(bank));
                }
            }
        }
        Ok(Controller {
            channel,
            banks,
            banks_per_rank: config.geometry.banks_per_rank(),
            reads: RequestQueue::new(config.queue_entries),
            writes: RequestQueue::new(config.write_queue_entries),
            scheduler: make_scheduler(config.scheduler),
            bus: DataBus::new(config.data_bus_width, timing.t_burst),
            last_burst: None,
            drain: DrainPolicy::for_capacity(config.write_queue_entries),
            draining: false,
            commands_per_cycle: config.commands_per_cycle,
            // One completion event per queued request, plus headroom for
            // forwarding/merge acknowledgements that never occupy a queue
            // slot: sized so the steady-state hot path never reallocates.
            events: BinaryHeap::with_capacity(
                config.queue_entries + config.write_queue_entries + 64,
            ),
            log: CommandLog::new(),
            faw: matches!(config.bank_model, BankModel::Dram).then(|| {
                FawState::new(
                    RefreshCycles::ddr3_like().t_faw,
                    config.geometry.ranks_per_channel() as usize,
                )
            }),
            ecc: config.reliability.enabled.then(|| EccParams {
                correctable_bits: config.reliability.ecc_correctable_bits,
                decode_penalty: CycleCount::new(config.reliability.ecc_decode_penalty_cycles),
            }),
            bad_rows: Vec::new(),
            timing,
            chaos: false,
            next_cache: Cell::new(None),
            issue_bound: Cell::new(None),
            event_driven: true,
            queued_reads_per_bank: vec![0; bank_count],
            queued_writes_per_bank: vec![0; bank_count],
        })
    }

    /// Test-only: when `enabled`, the controller deliberately violates the
    /// bank protocol — whenever the scheduler finds nothing legal to issue
    /// it force-issues the head of a non-empty queue with a fabricated plan
    /// (a row hit / bare write at minimum latency), ignoring every resource
    /// gate. Exists solely so the `fgnvm-check` oracle and fuzzer can prove
    /// they catch scheduler bugs. Only meaningful for the NVM bank models.
    #[doc(hidden)]
    pub fn set_chaos(&mut self, enabled: bool) {
        self.chaos = enabled;
        self.next_cache.set(None);
        self.issue_bound.set(None);
    }

    /// Occupancy snapshots for every bank on this channel.
    pub fn occupancy(&self) -> Vec<OccupancySnapshot> {
        self.banks.iter().map(|b| b.occupancy()).collect()
    }

    /// The chaos path's illegal pick: the head of the read queue (else the
    /// write queue) with a fabricated minimum-latency plan. The fabricated
    /// `earliest_data` keeps `commit`'s burst assertion satisfied while the
    /// kind/state mismatch produces a genuinely protocol-violating stream.
    fn chaos_pick(&self, now: Cycle) -> Option<(bool, usize, AccessPlan)> {
        if !self.chaos {
            return None;
        }
        if !self.reads.is_empty() {
            Some((
                false,
                0,
                AccessPlan {
                    kind: PlanKind::RowHit,
                    earliest_data: now + self.timing.t_cas,
                    sense_bits: 0,
                },
            ))
        } else if !self.writes.is_empty() {
            Some((
                true,
                0,
                AccessPlan {
                    kind: PlanKind::Write,
                    earliest_data: now + self.timing.t_cwd,
                    sense_bits: 0,
                },
            ))
        } else {
            None
        }
    }

    /// Presents a request; see [`Enqueue`] for the possible outcomes.
    pub fn enqueue(&mut self, pending: Pending, now: Cycle, stats: &mut SystemStats) -> Enqueue {
        let outcome = self.enqueue_inner(pending, now, stats);
        if outcome != Enqueue::Full {
            // The queue or event heap changed; the calendar slot is stale.
            self.next_cache.set(None);
            self.issue_bound.set(None);
        }
        outcome
    }

    fn enqueue_inner(&mut self, pending: Pending, now: Cycle, stats: &mut SystemStats) -> Enqueue {
        match pending.request.op {
            Op::Read => {
                if self.writes.contains_addr(pending.request.addr) {
                    // Store-to-load forwarding from the write queue.
                    stats.forwarded_reads += 1;
                    stats.enqueued_reads += 1;
                    stats.note_enqueued(pending.request.tenant, true);
                    self.events.push(Reverse(Event {
                        at: now + CycleCount::ONE,
                        id_raw: pending.request.id.raw(),
                        is_read: true,
                        arrival: pending.request.arrival,
                        tenant: pending.request.tenant,
                    }));
                    return Enqueue::Satisfied;
                }
                if !self.reads.push(pending) {
                    stats.rejected += 1;
                    return Enqueue::Full;
                }
                self.queued_reads_per_bank[pending.bank_index] += 1;
                stats.enqueued_reads += 1;
                stats.note_enqueued(pending.request.tenant, true);
                Enqueue::Accepted
            }
            Op::Write => {
                if self.writes.contains_addr(pending.request.addr) {
                    // Coalesce with the queued write to the same line; the
                    // merged request is acknowledged immediately.
                    stats.merged_writes += 1;
                    stats.enqueued_writes += 1;
                    stats.note_enqueued(pending.request.tenant, false);
                    self.events.push(Reverse(Event {
                        at: now + CycleCount::ONE,
                        id_raw: pending.request.id.raw(),
                        is_read: false,
                        arrival: pending.request.arrival,
                        tenant: pending.request.tenant,
                    }));
                    return Enqueue::Satisfied;
                }
                if !self.writes.push(pending) {
                    stats.rejected += 1;
                    return Enqueue::Full;
                }
                self.queued_writes_per_bank[pending.bank_index] += 1;
                stats.enqueued_writes += 1;
                stats.note_enqueued(pending.request.tenant, false);
                Enqueue::Accepted
            }
        }
    }

    /// Advances one controller cycle: retires due completions into `out` and
    /// issues up to `commands_per_cycle` new commands. Returns whether any
    /// command issued (used by fast-forward to detect dead cycles).
    ///
    /// `obs` is the optional observability sink; `None` (the default) makes
    /// every hook site a skipped branch, keeping the hot path unchanged.
    pub fn tick(
        &mut self,
        now: Cycle,
        stats: &mut SystemStats,
        out: &mut Vec<Completion>,
        mut obs: Option<&mut Observer>,
    ) -> bool {
        // Retire completions whose data has arrived.
        let mut mutated = false;
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at > now {
                break;
            }
            mutated = true;
            let Reverse(ev) = self.events.pop().expect("peeked event exists");
            if ev.is_read {
                stats.record_read(ev.tenant, ev.at.saturating_since(ev.arrival));
            } else {
                stats.record_write(ev.tenant, ev.at.saturating_since(ev.arrival));
            }
            if let Some(obs) = obs.as_deref_mut() {
                obs.on_completed(ev.id_raw, ev.at.raw());
            }
            out.push(Completion {
                id: fgnvm_types::request::RequestId::new(ev.id_raw),
                op: if ev.is_read { Op::Read } else { Op::Write },
                arrival: ev.arrival,
                finished: ev.at,
                tenant: ev.tenant,
            });
        }

        self.draining = self.drain.update(self.draining, self.writes.len());
        stats.read_queue_depth_sum += self.reads.len() as u64;
        stats.queue_depth_samples += 1;

        let mut issued_any = false;
        for _ in 0..self.commands_per_cycle {
            if !self.issue_one(now, stats, obs.as_deref_mut()) {
                break;
            }
            issued_any = true;
        }
        if mutated || issued_any {
            // Retirements and issues move bank/queue/event state; the
            // calendar slot must be recomputed. (A tick that only
            // re-settles the drain flag keeps the memo: the flag update is
            // a fixpoint under the unchanged queue occupancy, and the scan
            // already evaluated it one step ahead.)
            self.next_cache.set(None);
        }
        issued_any
    }

    /// Tries to issue one command; returns whether anything issued.
    fn issue_one(
        &mut self,
        now: Cycle,
        stats: &mut SystemStats,
        obs: Option<&mut Observer>,
    ) -> bool {
        // Fast path: the calendar proved no command can issue before the
        // memoized bound, and nothing that affects issue legality has
        // changed since — skip the pick scan entirely. (Chaos mode
        // force-issues when the scheduler finds nothing, so it must take
        // the full path.)
        if !self.chaos && self.event_driven {
            if let Some(bound) = self.issue_bound.get() {
                if now < bound {
                    return false;
                }
            }
            // The bound is spent (or was never computed): refresh it from
            // the per-bank occupancy counts before paying for a pick. Every
            // scheduler only ever picks an entry whose bank is ready
            // (`next_ready_hint(now) <= now`) and leaves all state — FRFCFS
            // streak bookkeeping included — untouched when it picks
            // nothing, so "no occupied bank is ready" proves the pick
            // returns `None` without running it.
            let gate = self.earliest_bank_gate(now);
            if gate > now {
                self.issue_bound.set(Some(gate));
                return false;
            }
        }
        // Choose between the read and write queues.
        let write_pick = |me: &Self| {
            me.scheduler
                .pick_write(&me.writes, &me.reads, &me.banks, now)
        };
        let read_pick = |me: &Self| me.scheduler.pick_read(&me.reads, &me.banks, now);

        let picked = if self.draining {
            if let Some((i, p)) = write_pick(self) {
                Some((true, i, p))
            } else if self.scheduler.reads_during_drain() {
                read_pick(self).map(|(i, p)| (false, i, p))
            } else {
                None
            }
        } else if let Some((i, p)) = read_pick(self) {
            Some((false, i, p))
        } else if !self.writes.is_empty() && self.reads.is_empty() {
            // Opportunistic drain while the read queue is idle.
            write_pick(self).map(|(i, p)| (true, i, p))
        } else {
            None
        };
        let Some((from_writes, index, plan)) = picked.or_else(|| self.chaos_pick(now)) else {
            return false;
        };

        // tFAW: a DRAM rank admits at most four activations per rolling
        // window; hold a fifth until the window opens.
        if let Some(faw) = &self.faw {
            if plan.kind.senses() {
                let queue = if from_writes {
                    &self.writes
                } else {
                    &self.reads
                };
                let bank = queue
                    .iter()
                    .nth(index)
                    .expect("picked index exists")
                    .bank_index;
                let rank = bank as u32 / self.banks_per_rank;
                if now < faw.ready(rank as usize) {
                    return false;
                }
            }
        }

        // Issue-audit probe (opt-in): with the chosen command fixed and the
        // queues still untouched, re-plan every *other* queued entry
        // read-only to attribute its gate, and greedily count how many
        // ready peers are rook-compatible — (SAG, CD)-disjoint per bank —
        // with the chosen command and each other. Runs only at issue time,
        // so stepped and fast-forward runs (which issue at identical
        // cycles with identical state) produce bit-identical streams.
        let audit_probe = match &obs {
            Some(o) if o.audit_enabled() => Some(self.audit_probe(from_writes, index, now)),
            _ => None,
        };

        let removed = if from_writes {
            self.writes.remove(index)
        } else {
            self.reads.remove(index)
        };
        let pending = match removed {
            Ok(pending) => pending,
            Err(_) => {
                // Unreachable through the public API: scheduler picks are
                // derived from the very queue they are applied to. Degrade
                // to "nothing issued" in release builds rather than abort
                // a long run on a scheduler bug.
                debug_assert!(false, "scheduler pick named a nonexistent queue entry");
                return false;
            }
        };
        if from_writes {
            self.queued_writes_per_bank[pending.bank_index] -= 1;
        } else {
            self.queued_reads_per_bank[pending.bank_index] -= 1;
        }
        // Rank-to-rank bus turnaround: a burst from a different rank than
        // the previous one cannot start until tRTRS after it ends.
        let rank = pending.bank_index as u32 / self.banks_per_rank;
        let mut earliest = plan.earliest_data;
        if let Some((last_rank, last_end)) = self.last_burst {
            if last_rank != rank {
                earliest = earliest.max(last_end + T_RTRS);
            }
        }
        let data_start = self.bus.reserve(earliest);
        let issued = self.banks[pending.bank_index].commit(&pending.access, &plan, now, data_start);
        if plan.kind.senses() {
            if let Some(faw) = &mut self.faw {
                faw.record(rank as usize, now);
            }
        }
        // Track bus ownership for turnaround accounting (keep the later
        // burst end if an earlier reservation outlives this one).
        self.last_burst = match self.last_burst {
            Some((_, end)) if end > issued.data_end => Some((rank, end.max(issued.data_end))),
            _ => Some((rank, issued.data_end)),
        };
        self.log.push(CommandRecord {
            at: now,
            id: pending.request.id,
            op: pending.request.op,
            kind: issued.kind,
            bank_index: pending.bank_index,
            row: pending.access.row,
            coord: pending.access.coord,
            data_start: issued.data_start,
            retries: issued.faults.retries,
        });
        let mut obs = obs;
        if let Some(obs) = obs.as_deref_mut() {
            obs.on_command(&CommandIssue {
                channel: self.channel,
                bank: pending.bank_index as u32,
                id: pending.request.id.raw(),
                is_read: pending.request.op.is_read(),
                kind: issued.kind.label(),
                arrival: pending.request.arrival.raw(),
                at: now.raw(),
                earliest_data: plan.earliest_data.raw(),
                data_start: issued.data_start.raw(),
                data_end: issued.data_end.raw(),
                completion: issued.completion.raw(),
                row: pending.access.row,
                sag: pending.access.coord.sag,
                cd: pending.access.coord.cd_first,
                cd_count: pending.access.coord.cd_count,
                retries: issued.faults.retries,
            });
            if let Some(probe) = &audit_probe {
                obs.on_audit(&IssueAudit {
                    channel: self.channel,
                    bank: pending.bank_index as u32,
                    at: now.raw(),
                    is_read: pending.request.op.is_read(),
                    draining: self.draining,
                    sag: pending.access.coord.sag,
                    cd: pending.access.coord.cd_first,
                    considered: probe.considered,
                    blocked: probe.blocked,
                    ready_peers: probe.ready_peers,
                    co_issuable: probe.co_issuable,
                    missed: &probe.missed,
                });
            }
        }
        if pending.request.op.is_read() {
            // ECC sits between the bank and the channel: a corrected read
            // pays decode latency; an uncorrectable one pays a deeper
            // (RAID-style rebuild) penalty and marks the row for remap.
            let mut at = issued.data_end;
            if let Some(ecc) = self.ecc {
                let f = issued.faults;
                if f.bit_errors > 0 || f.stuck_fault {
                    if !f.stuck_fault && f.bit_errors <= ecc.correctable_bits {
                        stats.corrected_errors += 1;
                        at += ecc.decode_penalty;
                        if let Some(obs) = obs {
                            obs.on_instant(
                                InstantKind::EccCorrected,
                                self.channel,
                                pending.bank_index as u32,
                                now.raw(),
                            );
                        }
                    } else {
                        stats.uncorrectable_errors += 1;
                        at += CycleCount::new(ecc.decode_penalty.raw() * 4);
                        self.bad_rows.push((pending.bank_index, pending.access.row));
                        if let Some(obs) = obs {
                            obs.on_instant(
                                InstantKind::EccUncorrectable,
                                self.channel,
                                pending.bank_index as u32,
                                now.raw(),
                            );
                        }
                    }
                }
            }
            self.events.push(Reverse(Event {
                at,
                id_raw: pending.request.id.raw(),
                is_read: true,
                arrival: pending.request.arrival,
                tenant: pending.request.tenant,
            }));
        } else if issued.faults.verify_failed {
            // The write exhausted its on-die retry budget without a clean
            // verify: no completion is reported; the request goes back in
            // the write queue for a fresh issue once the (still occupied)
            // tile frees up. An always-failing device therefore livelocks
            // here — exactly what the simulation watchdog exists to catch.
            stats.reissued_writes += 1;
            if let Some(obs) = obs {
                obs.on_instant(
                    InstantKind::WriteReissue,
                    self.channel,
                    pending.bank_index as u32,
                    now.raw(),
                );
            }
            let requeued = self.writes.push(pending);
            debug_assert!(requeued, "slot was freed by the remove above");
            if requeued {
                self.queued_writes_per_bank[pending.bank_index] += 1;
            }
        } else {
            // Writes are posted: report completion when the cells finish
            // programming (useful for drain accounting; the CPU does not
            // block on it).
            self.events.push(Reverse(Event {
                at: issued.completion,
                id_raw: pending.request.id.raw(),
                is_read: false,
                arrival: pending.request.arrival,
                tenant: pending.request.tenant,
            }));
        }
        // The issue moved queue and bank state: the issue bound no longer
        // holds (nor does it for a second pick in the same tick).
        self.issue_bound.set(None);
        true
    }

    /// The audit probe behind [`issue_one`]'s opt-in decision record: with
    /// the chosen entry (position `index` of the `from_writes` queue) still
    /// in place, plans every other queued entry read-only and classifies it
    /// as gated (per [`BlockGate`]) or ready, then greedily builds the
    /// legal co-issue set — a ready peer joins when it is rook-compatible
    /// (distinct SAG *and* disjoint CD span) with the chosen command and
    /// every previously accepted peer on the same bank; peers on distinct
    /// banks are trivially parallel. Queue order (reads first, then
    /// writes) makes the greedy set deterministic.
    ///
    /// [`issue_one`]: Controller::issue_one
    fn audit_probe(&self, from_writes: bool, index: usize, now: Cycle) -> AuditProbe {
        let chosen_queue = if from_writes {
            &self.writes
        } else {
            &self.reads
        };
        let chosen = chosen_queue
            .iter()
            .nth(index)
            .expect("picked index exists");
        let mut probe = AuditProbe {
            considered: 0,
            blocked: [0; GATES],
            ready_peers: 0,
            co_issuable: 0,
            missed: Vec::new(),
        };
        // The accepted co-issue set, seeded with the chosen command:
        // (bank, sag, cd_first, cd_count) of everything already "issuing".
        let mut accepted: Vec<(usize, u32, u32, u32)> = vec![(
            chosen.bank_index,
            chosen.access.coord.sag,
            chosen.access.coord.cd_first,
            chosen.access.coord.cd_count,
        )];
        for (is_writes, queue) in [(false, &self.reads), (true, &self.writes)] {
            for (pos, p) in queue.iter().enumerate() {
                probe.considered += 1;
                if is_writes == from_writes && pos == index {
                    continue;
                }
                match self.banks[p.bank_index].plan(&p.access, now) {
                    Err(blocked) => {
                        let gate = match blocked.reason {
                            BlockReason::BankBusy => BlockGate::BankBusy,
                            BlockReason::SagBusy => BlockGate::SagBusy,
                            BlockReason::CdBusy => BlockGate::CdBusy,
                            BlockReason::ColumnPath => BlockGate::ColumnPath,
                            BlockReason::RowLocked => BlockGate::RowLocked,
                        };
                        probe.blocked[gate as usize] += 1;
                    }
                    Ok(_) => {
                        probe.ready_peers += 1;
                        let c = &p.access.coord;
                        let compatible = accepted.iter().all(|&(bank, sag, cd, cd_n)| {
                            bank != p.bank_index
                                || (sag != c.sag
                                    && !(c.cd_first < cd + cd_n && cd < c.cd_first + c.cd_count))
                        });
                        if compatible {
                            probe.co_issuable += 1;
                            probe.missed.push((c.sag, c.cd_first));
                            accepted.push((p.bank_index, c.sag, c.cd_first, c.cd_count));
                        }
                    }
                }
            }
        }
        probe
    }

    /// True when no requests are queued and no completions are pending.
    pub fn is_idle(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty() && self.events.is_empty()
    }

    /// True while at least one completion event is scheduled. A pending
    /// event is proof the channel is making forward progress (its retirement
    /// is a finite time away), which is what the watchdog distinguishes from
    /// a genuine livelock: a verify-failed write re-enters the queue
    /// *without* scheduling an event.
    pub fn has_pending_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// The earliest instant at or after `now` at which a tick could change
    /// state: retire a completion or issue a command. `None` when the
    /// channel is idle (no instant ever will).
    ///
    /// This mirrors `tick`'s issue policy exactly — the queues a tick at
    /// that instant would consult, per-entry bank gates via
    /// [`Bank::next_ready_hint`] and, where the hint is inconclusive,
    /// `plan` itself. The result is a *lower bound*: ticking at it may
    /// still issue nothing (e.g. a tFAW-gated pick), in which case the
    /// caller simply single-steps; it never lies *late*, so skipping to it
    /// can never jump over real work.
    ///
    /// The result is memoized in this channel's calendar slot and reused
    /// until it expires or a state mutation clears it; the memo is exact,
    /// not merely sound (see `NextAt`), which the calendar differential
    /// suite verifies against [`next_event_at_linear`].
    ///
    /// [`next_event_at_linear`]: Controller::next_event_at_linear
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        if let Some(cached) = self.next_cache.get() {
            match cached {
                // Nothing was queued or in flight, and only an enqueue
                // (which clears the memo) can change that.
                NextAt::Idle => return None,
                // A strictly future instant computed from unchanged state
                // is exactly what a fresh scan would return (see `NextAt`).
                NextAt::At(at) if at > now => return Some(at),
                // The memoized instant has arrived (or passed without a
                // mutation — e.g. a tFAW-gated pick issued nothing): the
                // bound is spent, recompute.
                NextAt::At(_) => {}
            }
        }
        let result = self.next_event_at_scan(now);
        self.next_cache.set(Some(match result {
            None => NextAt::Idle,
            Some(at) => NextAt::At(at),
        }));
        result
    }

    /// The calendar's scan: like [`next_event_at_linear`] but driven by
    /// the per-bank occupancy counts, so a fully gated channel costs one
    /// [`Bank::next_ready_hint`] call per *occupied bank* instead of one
    /// per queued entry. Per-entry `plan` consultation happens only for
    /// banks whose hint says "ready now" — exactly the entries the linear
    /// reference would consult too, so both compute the same minimum.
    ///
    /// [`next_event_at_linear`]: Controller::next_event_at_linear
    fn next_event_at_scan(&self, now: Cycle) -> Option<Cycle> {
        if self.is_idle() {
            return None;
        }
        let mut heap_at = Cycle::MAX;
        if let Some(Reverse(ev)) = self.events.peek() {
            if ev.at <= now {
                return Some(now);
            }
            heap_at = ev.at;
        }
        // Gate contributions (bank hints and blocked-plan retries) are
        // tracked apart from the event-heap head: their minimum is also
        // the issue bound published below, which must not be capped by a
        // completion instant — completions do not gate command issue.
        let mut gates = Cycle::MAX;
        let drain_next = self.drain.update(self.draining, self.writes.len());
        let consider_reads = !drain_next || self.scheduler.reads_during_drain();
        let consider_writes = drain_next || self.reads.is_empty();
        let queues = [
            (consider_reads, &self.reads, &self.queued_reads_per_bank),
            (consider_writes, &self.writes, &self.queued_writes_per_bank),
        ];
        for (consider, queue, counts) in queues {
            if !consider {
                continue;
            }
            for (bank_index, count) in counts.iter().enumerate() {
                if *count == 0 {
                    continue;
                }
                let bank = &self.banks[bank_index];
                let hint = bank.next_ready_hint(now);
                if hint > now {
                    // The bank cannot accept *any* access before `hint`,
                    // which gates every entry queued on it alike.
                    gates = gates.min(hint);
                    continue;
                }
                // Deduplicate plan calls by equivalence class (see
                // [`Bank::plan_class`]): a queue drains many same-shaped
                // accesses against one bank, so the dozens of entries here
                // usually collapse to a couple of verdicts. Fixed-size
                // stack buffer — classes beyond it just plan directly,
                // keeping the path allocation-free and exact either way.
                let mut classes = [(0u128, Cycle::MAX); 16];
                let mut class_count = 0usize;
                'entries: for pending in queue.iter().filter(|p| p.bank_index == bank_index) {
                    let key = bank.plan_class(&pending.access);
                    for &(k, retry) in &classes[..class_count] {
                        if k == key {
                            gates = gates.min(retry);
                            continue 'entries;
                        }
                    }
                    match bank.plan(&pending.access, now) {
                        Ok(_) => return Some(now),
                        Err(blocked) => {
                            debug_assert!(
                                blocked.retry_at > now,
                                "blocked plan must name a strictly future retry"
                            );
                            gates = gates.min(blocked.retry_at);
                            if class_count < classes.len() {
                                classes[class_count] = (key, blocked.retry_at);
                                class_count += 1;
                            }
                        }
                    }
                }
            }
        }
        // Every queued entry is provably gated until `gates`; retire-only
        // ticks before then can skip the pick scan (see `issue_bound`).
        self.issue_bound.set(Some(gates));
        Some(heap_at.min(gates))
    }

    /// The reference implementation of [`next_event_at`]: a full linear
    /// scan over the event heap and every queued request's bank gates,
    /// with no cross-call memoization. The memoized path must return
    /// exactly this value — the calendar differential suite pins that.
    ///
    /// [`next_event_at`]: Controller::next_event_at
    pub fn next_event_at_linear(&self, now: Cycle) -> Option<Cycle> {
        if self.is_idle() {
            return None;
        }
        let mut earliest = Cycle::MAX;
        if let Some(Reverse(ev)) = self.events.peek() {
            if ev.at <= now {
                return Some(now);
            }
            earliest = ev.at;
        }
        // Which queues would the next tick consider? `draining` is
        // settled from queue occupancy at every tick and across every
        // fast-forward skip (see `settle_drain`), so one update here is
        // exactly the value the next tick will see — any enqueue in
        // between clears the calendar memo and forces a rescan.
        let drain_next = self.drain.update(self.draining, self.writes.len());
        let consider_reads = !drain_next || self.scheduler.reads_during_drain();
        let consider_writes = drain_next || self.reads.is_empty();
        let queues = [
            (consider_reads, &self.reads),
            (consider_writes, &self.writes),
        ];
        for (consider, queue) in queues {
            if !consider {
                continue;
            }
            for pending in queue.iter() {
                let bank = &self.banks[pending.bank_index];
                let hint = bank.next_ready_hint(now);
                if hint > now {
                    // The bank cannot accept *any* access before `hint`.
                    earliest = earliest.min(hint);
                    continue;
                }
                match bank.plan(&pending.access, now) {
                    Ok(_) => return Some(now),
                    Err(blocked) => {
                        debug_assert!(
                            blocked.retry_at > now,
                            "blocked plan must name a strictly future retry"
                        );
                        earliest = earliest.min(blocked.retry_at);
                    }
                }
            }
        }
        Some(earliest)
    }

    /// The earliest instant any occupied bank could accept a command:
    /// `now` as soon as one occupied bank's hint has arrived (a pick must
    /// run), otherwise the minimum hint over every bank with at least one
    /// queued read or write (`Cycle::MAX` when both queues are empty).
    /// Banks occupied by *either* queue are consulted — a superset of
    /// whatever the drain policy would let the pick see, so a closed
    /// result is sound for every scheduler.
    fn earliest_bank_gate(&self, now: Cycle) -> Cycle {
        let mut earliest = Cycle::MAX;
        for counts in [&self.queued_reads_per_bank, &self.queued_writes_per_bank] {
            for (bank_index, count) in counts.iter().enumerate() {
                if *count == 0 {
                    continue;
                }
                let hint = self.banks[bank_index].next_ready_hint(now);
                if hint <= now {
                    return now;
                }
                earliest = earliest.min(hint);
            }
        }
        earliest
    }

    /// Switches the issue-gating strategy for event-driven (fast-forward)
    /// versus cycle-stepped operation; see
    /// `Controller::event_driven`. Both settings are
    /// bit-identical — this only moves where the work happens.
    pub fn set_event_driven(&mut self, enabled: bool) {
        self.event_driven = enabled;
        self.issue_bound.set(None);
    }

    /// Accounts the per-tick queue-depth statistics for `skipped` cycles
    /// that fast-forward elided. Queue contents are provably unchanged
    /// across a skip, so the bulk update is bit-identical to having ticked.
    pub fn account_skipped_cycles(&self, skipped: u64, stats: &mut SystemStats) {
        stats.read_queue_depth_sum += self.reads.len() as u64 * skipped;
        stats.queue_depth_samples += skipped;
    }

    /// Applies the drain-hysteresis updates the elided ticks would have
    /// applied. Queue occupancy is frozen across a skip and
    /// [`DrainPolicy::update`] is a fixpoint under constant occupancy, so
    /// one update folds the whole stretch. Fast-forward must call this
    /// when it skips: the flag otherwise stays stale until the next
    /// sparse tick, by which time *enqueues* may have moved the occupancy
    /// — the hysteresis would then read a future queue depth and diverge
    /// from a cycle-stepped run at the watermarks (a stepped run settles
    /// the flag every cycle, including the cycles a skip elides).
    pub fn settle_drain(&mut self) {
        self.draining = self.drain.update(self.draining, self.writes.len());
    }

    /// Occupancy of the read queue.
    pub fn read_queue_len(&self) -> usize {
        self.reads.len()
    }

    /// Occupancy of the write queue.
    pub fn write_queue_len(&self) -> usize {
        self.writes.len()
    }

    /// True while the write-drain state machine is active.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Sums the per-bank counters of this channel.
    pub fn bank_stats(&self) -> BankStats {
        let mut total = BankStats::new();
        for bank in &self.banks {
            total += *bank.stats();
        }
        total
    }

    /// The counters of each bank in this channel, in bank order.
    pub fn bank_stats_per_bank(&self) -> Vec<BankStats> {
        self.banks.iter().map(|b| *b.stats()).collect()
    }

    /// Cycles of data-bus occupancy so far.
    pub fn bus_busy_cycles(&self) -> CycleCount {
        self.bus.busy_cycles()
    }

    /// Enables command logging with the given ring-buffer capacity.
    pub fn enable_command_log(&mut self, capacity: usize) {
        self.log.enable(capacity);
    }

    /// The command log (empty unless enabled).
    pub fn command_log(&self) -> &CommandLog {
        &self.log
    }

    /// Drains the rows flagged uncorrectable since the last call, as
    /// `(bank_index, row)` pairs. The memory system remaps them to spares.
    pub fn take_bad_rows(&mut self) -> Vec<(usize, u32)> {
        std::mem::take(&mut self.bad_rows)
    }

    /// One-line-per-fact dump of queue and bank state, for the watchdog's
    /// diagnostic report. Includes why the head of each queue cannot issue.
    pub fn state_dump(&self, now: Cycle) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  reads={} writes={} events={} draining={}",
            self.reads.len(),
            self.writes.len(),
            self.events.len(),
            self.draining
        );
        for (label, queue) in [("read", &self.reads), ("write", &self.writes)] {
            for pending in queue.iter().take(4) {
                match self.banks[pending.bank_index].plan(&pending.access, now) {
                    Ok(_) => {
                        let _ = writeln!(
                            out,
                            "  {label} {} bank{} row{}: issuable",
                            pending.request.id, pending.bank_index, pending.access.row
                        );
                    }
                    Err(blocked) => {
                        let _ = writeln!(
                            out,
                            "  {label} {} bank{} row{}: {} (retry at {})",
                            pending.request.id,
                            pending.bank_index,
                            pending.access.row,
                            blocked.reason,
                            blocked.retry_at
                        );
                    }
                }
            }
        }
        out
    }

    /// Serialize every piece of mutable controller state (queues, in-flight
    /// completion events, bus occupancy, drain flag, tFAW windows, pending
    /// bad rows, scheduler state, command log, and all bank FSMs).
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("ctrl");
        w.u32(self.channel);
        self.reads.save_state(w);
        self.writes.save_state(w);
        // BinaryHeap iteration order is arbitrary; sort so identical state
        // always produces identical bytes.
        let mut events: Vec<Event> = self.events.iter().map(|e| e.0).collect();
        events.sort_unstable();
        w.usize(events.len());
        for e in events {
            w.u64(e.at.raw());
            w.u64(e.id_raw);
            w.bool(e.is_read);
            w.u64(e.arrival.raw());
            w.u32(u32::from(e.tenant));
        }
        self.bus.save_state(w);
        match self.last_burst {
            None => w.bool(false),
            Some((rank, end)) => {
                w.bool(true);
                w.u32(rank);
                w.u64(end.raw());
            }
        }
        w.bool(self.draining);
        match &self.faw {
            None => w.bool(false),
            Some(faw) => {
                w.bool(true);
                w.usize(faw.windows.len());
                for window in &faw.windows {
                    for slot in window {
                        w.opt_u64(slot.map(Cycle::raw));
                    }
                }
            }
        }
        w.usize(self.bad_rows.len());
        for (bank_index, row) in &self.bad_rows {
            w.usize(*bank_index);
            w.u32(*row);
        }
        self.scheduler.save_state(w);
        self.log.save_state(w);
        w.bool(self.chaos);
        w.usize(self.banks.len());
        for bank in &self.banks {
            bank.save_state(w);
        }
    }

    /// Restore state written by [`Controller::save_state`] into a freshly
    /// built controller of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](fgnvm_types::SnapshotError) when the
    /// stream is truncated, corrupt, or describes a different channel or
    /// bank layout.
    pub fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("ctrl")?;
        let channel = r.u32()?;
        if channel != self.channel {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "checkpoint is for channel {channel}, controller is channel {}",
                self.channel
            )));
        }
        self.reads.load_state(r)?;
        self.writes.load_state(r)?;
        let n_events = r.usize()?;
        self.events.clear();
        for _ in 0..n_events {
            let at = Cycle::new(r.u64()?);
            let id_raw = r.u64()?;
            let is_read = r.bool()?;
            let arrival = Cycle::new(r.u64()?);
            let tenant = r.u32()? as u16;
            self.events.push(Reverse(Event {
                at,
                id_raw,
                is_read,
                arrival,
                tenant,
            }));
        }
        self.bus.load_state(r)?;
        self.last_burst = if r.bool()? {
            let rank = r.u32()?;
            let end = Cycle::new(r.u64()?);
            Some((rank, end))
        } else {
            None
        };
        self.draining = r.bool()?;
        let has_faw = r.bool()?;
        if has_faw != self.faw.is_some() {
            return Err(fgnvm_types::SnapshotError::Corrupt(
                "tFAW tracker presence mismatch between checkpoint and config".into(),
            ));
        }
        if let Some(faw) = &mut self.faw {
            let ranks = r.usize()?;
            if ranks != faw.windows.len() {
                return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                    "checkpoint has {ranks} tFAW ranks, config has {}",
                    faw.windows.len()
                )));
            }
            for window in &mut faw.windows {
                for slot in window.iter_mut() {
                    *slot = r.opt_u64()?.map(Cycle::new);
                }
            }
        }
        let n_bad = r.usize()?;
        self.bad_rows.clear();
        for _ in 0..n_bad {
            let bank_index = r.usize()?;
            let row = r.u32()?;
            self.bad_rows.push((bank_index, row));
        }
        self.scheduler.load_state(r)?;
        self.log = CommandLog::load_state(r)?;
        self.chaos = r.bool()?;
        let n_banks = r.usize()?;
        if n_banks != self.banks.len() {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "checkpoint has {n_banks} banks, config has {}",
                self.banks.len()
            )));
        }
        for bank in &mut self.banks {
            bank.load_state(r)?;
        }
        // Everything the calendar slot was derived from may have changed.
        self.next_cache.set(None);
        self.issue_bound.set(None);
        self.queued_reads_per_bank.fill(0);
        for p in self.reads.iter() {
            let Some(count) = self.queued_reads_per_bank.get_mut(p.bank_index) else {
                return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                    "queued read names bank {}, channel has {n_banks} banks",
                    p.bank_index
                )));
            };
            *count += 1;
        }
        self.queued_writes_per_bank.fill(0);
        for p in self.writes.iter() {
            let Some(count) = self.queued_writes_per_bank.get_mut(p.bank_index) else {
                return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                    "queued write names bank {}, channel has {n_banks} banks",
                    p.bank_index
                )));
            };
            *count += 1;
        }
        // Restored queues can legally hold a full complement of requests;
        // keep the event heap's no-reallocation guarantee intact.
        let reserve = self.reads.capacity() + self.writes.capacity() + 64;
        if self.events.capacity() < reserve {
            self.events.reserve(reserve - self.events.len());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_bank::Access;
    use fgnvm_types::address::{DecodedAddr, PhysAddr, TileCoord};
    use fgnvm_types::request::{Request, RequestId};

    fn controller(config: &SystemConfig) -> Controller {
        Controller::new(config).unwrap()
    }

    fn pending(id: u64, op: Op, bank: usize, row: u32, line: u32) -> Pending {
        Pending {
            request: Request::new(
                RequestId::new(id),
                op,
                PhysAddr::new(id * 64 + ((bank as u64) << 10)),
                Cycle::ZERO,
            ),
            decoded: DecodedAddr {
                channel: 0,
                rank: 0,
                bank: bank as u32,
                row,
                line,
            },
            access: Access {
                op,
                row,
                line,
                coord: TileCoord {
                    sag: 0,
                    cd_first: 0,
                    cd_count: 1,
                },
            },
            bank_index: bank,
        }
    }

    #[test]
    fn drain_mode_engages_and_releases_on_watermarks() {
        let config = SystemConfig::baseline();
        let mut c = controller(&config);
        let mut stats = SystemStats::new();
        // Fill the write queue past the high watermark (48 of 64) with
        // unique addresses spread over banks.
        for i in 0..50u64 {
            let p = pending(i, Op::Write, (i % 8) as usize, (i / 8) as u32, 0);
            assert_eq!(c.enqueue(p, Cycle::ZERO, &mut stats), Enqueue::Accepted);
        }
        assert!(!c.is_draining(), "drain engages at the next tick");
        let mut out = Vec::new();
        c.tick(Cycle::ZERO, &mut stats, &mut out, None);
        assert!(c.is_draining());
        // Tick until the queue falls to the low watermark (16).
        let mut now = Cycle::ZERO;
        for _ in 0..20_000 {
            now.advance();
            c.tick(now, &mut stats, &mut out, None);
            if !c.is_draining() {
                break;
            }
        }
        assert!(
            !c.is_draining(),
            "drain should release at the low watermark"
        );
        assert!(c.write_queue_len() <= 16);
    }

    #[test]
    fn tfaw_limits_rank_activation_rate() {
        // Eight cold reads to eight different DRAM banks on one rank: the
        // first four activations may issue back-to-back, but any rolling
        // tFAW window must contain at most four activations.
        let config = SystemConfig::dram();
        let mut c = controller(&config);
        c.log.enable(64);
        let mut stats = SystemStats::new();
        let t_faw = RefreshCycles::ddr3_like().t_faw;
        // Start past every staggered refresh window phase.
        let start = 3_200u64;
        for bank in 0..8usize {
            let p = pending(bank as u64, Op::Read, bank, 5, 0);
            assert_eq!(
                c.enqueue(p, Cycle::new(start), &mut stats),
                Enqueue::Accepted
            );
        }
        let mut out = Vec::new();
        for t in 0..400u64 {
            c.tick(Cycle::new(start + t), &mut stats, &mut out, None);
        }
        let acts: Vec<Cycle> = c
            .log
            .records()
            .filter(|r| r.kind.senses())
            .map(|r| r.at)
            .collect();
        assert_eq!(acts.len(), 8, "all eight activations eventually issue");
        for window in acts.windows(5) {
            assert!(
                window[4] >= window[0] + t_faw,
                "five activations inside one tFAW window: {window:?}"
            );
        }
        // And the gate actually bound: the fifth activation was pushed to
        // at least t_faw after the first.
        assert!(acts[4] >= acts[0] + t_faw);
    }

    #[test]
    fn commands_per_cycle_budget_is_respected() {
        // Multi-issue width 2: two cold reads to different banks issue in
        // one tick; width 1 issues only one.
        for (width, expected_after_one_tick) in [(1u32, 1usize), (2, 2)] {
            let mut config = SystemConfig::fgnvm_multi_issue(8, 2, width.max(1)).unwrap();
            config.commands_per_cycle = width;
            config.data_bus_width = width;
            let mut c = controller(&config);
            let mut stats = SystemStats::new();
            c.enqueue(pending(0, Op::Read, 0, 0, 0), Cycle::ZERO, &mut stats);
            c.enqueue(pending(1, Op::Read, 1, 0, 0), Cycle::ZERO, &mut stats);
            let mut out = Vec::new();
            c.tick(Cycle::ZERO, &mut stats, &mut out, None);
            assert_eq!(
                2 - c.read_queue_len(),
                expected_after_one_tick,
                "width {width}"
            );
        }
    }

    #[test]
    fn completions_deliver_in_time_order() {
        let config = SystemConfig::baseline();
        let mut c = controller(&config);
        let mut stats = SystemStats::new();
        c.enqueue(pending(0, Op::Read, 0, 0, 0), Cycle::ZERO, &mut stats);
        c.enqueue(pending(1, Op::Read, 1, 0, 0), Cycle::ZERO, &mut stats);
        let mut out = Vec::new();
        let mut now = Cycle::ZERO;
        for _ in 0..200 {
            c.tick(now, &mut stats, &mut out, None);
            now.advance();
        }
        assert_eq!(out.len(), 2);
        assert!(out[0].finished <= out[1].finished);
        assert!(c.is_idle());
    }

    #[test]
    fn opportunistic_drain_runs_writes_when_reads_are_idle() {
        let config = SystemConfig::baseline();
        let mut c = controller(&config);
        let mut stats = SystemStats::new();
        // A single write, far below the watermark.
        c.enqueue(pending(0, Op::Write, 0, 0, 0), Cycle::ZERO, &mut stats);
        let mut out = Vec::new();
        let mut now = Cycle::ZERO;
        for _ in 0..200 {
            c.tick(now, &mut stats, &mut out, None);
            now.advance();
        }
        assert!(c.is_idle(), "idle read queue should not strand writes");
        assert_eq!(c.bank_stats().writes, 1);
    }
}
