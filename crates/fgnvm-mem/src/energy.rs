//! Energy accounting (§6 of the paper).
//!
//! Three components, mirroring the paper's model:
//!
//! * **Sense energy** — 2 pJ per sensed bit, charged at (partial)
//!   activation. The baseline senses the full 1 KB row; an `S×C` FgNVM
//!   senses `row / C` per column division touched, which is where the
//!   37 % / 65 % / 73 % reductions of Fig. 5 come from.
//! * **Write energy** — 16 pJ per driven bit. Only 64 write drivers exist,
//!   so a cache-line write always drives the full 512 bits regardless of
//!   the subdivision — the paper's "inability to decrease the energy of
//!   writes".
//! * **Background energy** — the paper states "background power averages to
//!   be 0.08 pJ per bit of memory" with no time base. We charge
//!   `0.08 pJ × (row-buffer bits across all banks)` once per
//!   [`BG_EPOCH_CYCLES`] controller cycles. The epoch constant is
//!   calibrated so that baseline background energy is roughly 5–15 % of
//!   baseline total energy on the paper's workload mix, reproducing the
//!   non-ideal scaling the paper attributes to background power. Crucially,
//!   this charge is *independent of the subdivision* (standby power does
//!   not shrink with CD count), so it bounds the achievable savings exactly
//!   as in Fig. 5.

use serde::{Deserialize, Serialize};

use fgnvm_bank::BankStats;
use fgnvm_types::config::SystemConfig;
use fgnvm_types::time::CycleCount;

/// Controller cycles per background-energy epoch (see module docs).
pub const BG_EPOCH_CYCLES: f64 = 512.0;

/// Per-component energy totals in picojoules.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Activation sensing energy.
    pub sense_pj: f64,
    /// Cell-programming energy.
    pub write_pj: f64,
    /// Standby/background energy.
    pub background_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.sense_pj + self.write_pj + self.background_pj
    }

    /// This breakdown's total relative to `baseline`'s total.
    ///
    /// # Panics
    ///
    /// Panics if the baseline total is zero.
    pub fn relative_to(&self, baseline: &EnergyBreakdown) -> f64 {
        let base = baseline.total_pj();
        assert!(base > 0.0, "baseline energy must be positive");
        self.total_pj() / base
    }
}

/// Converts bank counters and elapsed time into energy.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    read_pj_per_bit: f64,
    write_pj_per_bit: f64,
    background_pj_per_cycle: f64,
}

impl EnergyModel {
    /// Builds the model for `config`, deriving the per-cycle background
    /// rate from the total row-buffer capacity (one row buffer per bank).
    pub fn new(config: &SystemConfig) -> Self {
        let row_buffer_bits =
            f64::from(config.geometry.row_bytes()) * 8.0 * f64::from(config.geometry.total_banks());
        EnergyModel {
            read_pj_per_bit: config.energy.read_pj_per_bit,
            write_pj_per_bit: config.energy.write_pj_per_bit,
            background_pj_per_cycle: config.energy.background_pj_per_bit * row_buffer_bits
                / BG_EPOCH_CYCLES,
        }
    }

    /// Energy consumed given aggregated bank counters over `elapsed` cycles.
    pub fn breakdown(&self, banks: &BankStats, elapsed: CycleCount) -> EnergyBreakdown {
        EnergyBreakdown {
            sense_pj: banks.sensed_bits as f64 * self.read_pj_per_bit,
            write_pj: banks.written_bits as f64 * self.write_pj_per_bit,
            background_pj: elapsed.raw() as f64 * self.background_pj_per_cycle,
        }
    }

    /// The per-cycle background power in pJ/cycle (for reporting).
    pub fn background_pj_per_cycle(&self) -> f64 {
        self.background_pj_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(&SystemConfig::baseline())
    }

    #[test]
    fn sense_energy_uses_paper_constant() {
        let m = model();
        let stats = BankStats {
            sensed_bits: 8192,
            ..BankStats::new()
        };
        let e = m.breakdown(&stats, CycleCount::ZERO);
        assert!((e.sense_pj - 16384.0).abs() < 1e-9); // 8192 bits × 2 pJ
        assert_eq!(e.write_pj, 0.0);
    }

    #[test]
    fn write_energy_is_16pj_per_bit() {
        let m = model();
        let stats = BankStats {
            written_bits: 512,
            ..BankStats::new()
        };
        let e = m.breakdown(&stats, CycleCount::ZERO);
        assert!((e.write_pj - 8192.0).abs() < 1e-9);
    }

    #[test]
    fn background_scales_with_time_not_subdivision() {
        let base = EnergyModel::new(&SystemConfig::baseline());
        let fg = EnergyModel::new(&SystemConfig::fgnvm(8, 8).unwrap());
        // Same geometry capacity → identical background rate.
        assert!((base.background_pj_per_cycle() - fg.background_pj_per_cycle()).abs() < 1e-9);
        let e = base.breakdown(&BankStats::new(), CycleCount::new(512));
        // One epoch: 0.08 pJ × 8 banks × 8192 bits.
        assert!((e.background_pj - 0.08 * 8.0 * 8192.0).abs() < 1e-6);
    }

    #[test]
    fn relative_comparison() {
        let a = EnergyBreakdown {
            sense_pj: 50.0,
            write_pj: 25.0,
            background_pj: 25.0,
        };
        let b = EnergyBreakdown {
            sense_pj: 25.0,
            write_pj: 25.0,
            background_pj: 0.0,
        };
        assert!((b.relative_to(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "baseline energy")]
    fn relative_to_zero_baseline_panics() {
        let zero = EnergyBreakdown::default();
        let _ = zero.relative_to(&zero);
    }
}
