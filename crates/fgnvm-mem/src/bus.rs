//! The channel data bus.
//!
//! All banks of a channel share one data bus; each transfer occupies it for
//! `tBURST` cycles. The paper's *Multi-Issue* variant widens the bus so that
//! several bursts can be in flight simultaneously ("multiple data may be
//! returned via larger data bus") — modeled here as `width` independent
//! burst slots.

use fgnvm_types::time::{Cycle, CycleCount};

/// Shared data bus with `width` concurrent burst slots.
///
/// ```
/// use fgnvm_mem::bus::DataBus;
/// use fgnvm_types::time::{Cycle, CycleCount};
///
/// let mut bus = DataBus::new(1, CycleCount::new(4));
/// assert_eq!(bus.reserve(Cycle::new(10)), Cycle::new(10));
/// // The next burst queues behind the first.
/// assert_eq!(bus.reserve(Cycle::new(10)), Cycle::new(14));
/// ```
#[derive(Debug, Clone)]
pub struct DataBus {
    /// Earliest free instant of each burst slot.
    slots: Vec<Cycle>,
    burst: CycleCount,
    /// Total cycles of burst occupancy reserved (utilization statistics).
    busy_cycles: CycleCount,
}

impl DataBus {
    /// Creates an idle bus with `width` slots and `burst`-cycle transfers.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u32, burst: CycleCount) -> Self {
        assert!(width > 0, "data bus needs at least one slot");
        DataBus {
            slots: vec![Cycle::ZERO; width as usize],
            burst,
            busy_cycles: CycleCount::ZERO,
        }
    }

    /// Earliest cycle a burst could start, given the bank can deliver data
    /// at `earliest`. Does not reserve anything.
    pub fn probe(&self, earliest: Cycle) -> Cycle {
        let best = self.slots.iter().copied().min().expect("bus has slots");
        best.max(earliest)
    }

    /// Reserves a burst starting no earlier than `earliest`, returning the
    /// actual start instant.
    pub fn reserve(&mut self, earliest: Cycle) -> Cycle {
        let slot = self
            .slots
            .iter_mut()
            .min_by_key(|c| **c)
            .expect("bus has slots");
        let start = (*slot).max(earliest);
        *slot = start + self.burst;
        self.busy_cycles += self.burst;
        start
    }

    /// Total cycles of burst traffic carried so far.
    pub fn busy_cycles(&self) -> CycleCount {
        self.busy_cycles
    }

    /// Number of concurrent burst slots.
    pub fn width(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Serialize slot occupancy and utilization into a checkpoint.
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("bus");
        w.usize(self.slots.len());
        for s in &self.slots {
            w.u64(s.raw());
        }
        w.u64(self.busy_cycles.raw());
    }

    /// Restore occupancy written by [`DataBus::save_state`] into this bus.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](fgnvm_types::SnapshotError) when the
    /// checkpoint's slot count disagrees with this bus's width.
    pub fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("bus")?;
        let n = r.usize()?;
        if n != self.slots.len() {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "checkpoint bus has {n} slots, config has {}",
                self.slots.len()
            )));
        }
        for s in &mut self.slots {
            *s = Cycle::new(r.u64()?);
        }
        self.busy_cycles = CycleCount::new(r.u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_serializes() {
        let mut bus = DataBus::new(1, CycleCount::new(4));
        assert_eq!(bus.reserve(Cycle::new(10)), Cycle::new(10));
        // Second burst wanting cycle 10 must wait for the first to finish.
        assert_eq!(bus.reserve(Cycle::new(10)), Cycle::new(14));
        assert_eq!(bus.busy_cycles(), CycleCount::new(8));
    }

    #[test]
    fn wide_bus_overlaps() {
        let mut bus = DataBus::new(2, CycleCount::new(4));
        assert_eq!(bus.reserve(Cycle::new(10)), Cycle::new(10));
        assert_eq!(bus.reserve(Cycle::new(10)), Cycle::new(10));
        // Third must wait for a slot.
        assert_eq!(bus.reserve(Cycle::new(10)), Cycle::new(14));
    }

    #[test]
    fn probe_does_not_reserve() {
        let mut bus = DataBus::new(1, CycleCount::new(4));
        assert_eq!(bus.probe(Cycle::new(3)), Cycle::new(3));
        assert_eq!(bus.probe(Cycle::new(3)), Cycle::new(3));
        bus.reserve(Cycle::new(3));
        assert_eq!(bus.probe(Cycle::new(3)), Cycle::new(7));
    }

    #[test]
    fn late_bank_dominates() {
        let mut bus = DataBus::new(1, CycleCount::new(4));
        bus.reserve(Cycle::new(0)); // busy 0..4
                                    // Bank can deliver at 100: bus is long free by then.
        assert_eq!(bus.reserve(Cycle::new(100)), Cycle::new(100));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_width_rejected() {
        let _ = DataBus::new(0, CycleCount::new(4));
    }
}
