//! System-level statistics.

use fgnvm_types::time::CycleCount;

/// Latency histogram with power-of-two buckets (bucket *i* counts latencies
/// in `[2^i, 2^(i+1))` cycles; bucket 0 counts 0–1).
const HIST_BUCKETS: usize = 20;

/// Counters accumulated by a [`MemorySystem`](crate::MemorySystem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemStats {
    /// Reads accepted into a controller queue.
    pub enqueued_reads: u64,
    /// Writes accepted into a write queue.
    pub enqueued_writes: u64,
    /// Reads served directly from the write queue (store-to-load
    /// forwarding).
    pub forwarded_reads: u64,
    /// Writes merged into an existing write-queue entry for the same line.
    pub merged_writes: u64,
    /// Reads whose data burst has completed.
    pub completed_reads: u64,
    /// Sum of read latencies (arrival → last data beat).
    pub read_latency_total: CycleCount,
    /// Largest single read latency observed.
    pub read_latency_max: CycleCount,
    /// Power-of-two read-latency histogram.
    pub read_latency_hist: [u64; HIST_BUCKETS],
    /// Enqueue attempts rejected because a queue was full.
    pub rejected: u64,
    /// Sum of read-queue occupancies sampled once per controller tick.
    pub read_queue_depth_sum: u64,
    /// Ticks sampled for the queue-depth average.
    pub queue_depth_samples: u64,
    /// Reads whose transient bit errors ECC corrected (decode latency paid).
    pub corrected_errors: u64,
    /// Reads ECC could not correct (stuck-at fault or too many bit flips);
    /// the row is remapped to a spare.
    pub uncorrectable_errors: u64,
    /// Rows remapped to spares after uncorrectable errors.
    pub remapped_rows: u64,
    /// Spare candidates rejected during remapping because the spare had
    /// itself already failed (retired or remapped away); handing one out
    /// would silently alias two logical rows onto one dead physical row.
    pub remap_collisions: u64,
    /// Writes re-issued from the controller after the device exhausted its
    /// on-die write-verify retry budget.
    pub reissued_writes: u64,
}

impl SystemStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        SystemStats {
            enqueued_reads: 0,
            enqueued_writes: 0,
            forwarded_reads: 0,
            merged_writes: 0,
            completed_reads: 0,
            read_latency_total: CycleCount::ZERO,
            read_latency_max: CycleCount::ZERO,
            read_latency_hist: [0; HIST_BUCKETS],
            rejected: 0,
            read_queue_depth_sum: 0,
            queue_depth_samples: 0,
            corrected_errors: 0,
            uncorrectable_errors: 0,
            remapped_rows: 0,
            remap_collisions: 0,
            reissued_writes: 0,
        }
    }

    /// Records one completed read of the given latency.
    pub fn record_read(&mut self, latency: CycleCount) {
        self.completed_reads += 1;
        self.read_latency_total += latency;
        self.read_latency_max = self.read_latency_max.max(latency);
        let bucket = (64 - latency.raw().leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.read_latency_hist[bucket] += 1;
    }

    /// Mean read-queue occupancy per tick (the congestion the scheduler
    /// works against); zero before any tick.
    pub fn avg_read_queue_depth(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.read_queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// Mean read latency in cycles; zero when no reads completed.
    pub fn avg_read_latency(&self) -> f64 {
        if self.completed_reads == 0 {
            0.0
        } else {
            self.read_latency_total.raw() as f64 / self.completed_reads as f64
        }
    }

    /// Approximate read-latency percentile from the power-of-two
    /// histogram: the upper bound of the bucket containing the `p`-th
    /// percentile sample (p in `[0, 1]`). Zero when no reads completed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn read_latency_percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile out of range");
        if self.completed_reads == 0 {
            return 0;
        }
        let rank = (p * self.completed_reads as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.read_latency_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Bucket i holds latencies < 2^i (bucket 0: 0..1).
                return (1u64 << bucket).saturating_sub(1).max(1);
            }
        }
        u64::MAX
    }
}

impl Default for SystemStats {
    fn default() -> Self {
        SystemStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_recording() {
        let mut s = SystemStats::new();
        s.record_read(CycleCount::new(40));
        s.record_read(CycleCount::new(60));
        assert_eq!(s.completed_reads, 2);
        assert!((s.avg_read_latency() - 50.0).abs() < 1e-12);
        assert_eq!(s.read_latency_max, CycleCount::new(60));
    }

    #[test]
    fn histogram_buckets() {
        let mut s = SystemStats::new();
        s.record_read(CycleCount::new(0));
        s.record_read(CycleCount::new(1));
        s.record_read(CycleCount::new(2));
        s.record_read(CycleCount::new(40));
        assert_eq!(s.read_latency_hist[0], 1); // latency 0
        assert_eq!(s.read_latency_hist[1], 1); // latency 1
        assert_eq!(s.read_latency_hist[2], 1); // latency 2..3
        assert_eq!(s.read_latency_hist[6], 1); // latency 32..63
    }

    #[test]
    fn queue_depth_average() {
        let mut s = SystemStats::new();
        s.read_queue_depth_sum = 30;
        s.queue_depth_samples = 10;
        assert!((s.avg_read_queue_depth() - 3.0).abs() < 1e-12);
        assert_eq!(SystemStats::new().avg_read_queue_depth(), 0.0);
    }

    #[test]
    fn empty_average_is_zero() {
        assert_eq!(SystemStats::new().avg_read_latency(), 0.0);
        assert_eq!(SystemStats::new().read_latency_percentile(0.99), 0);
    }

    #[test]
    fn percentiles_track_the_histogram() {
        let mut s = SystemStats::new();
        for _ in 0..90 {
            s.record_read(CycleCount::new(50)); // bucket 6 (< 64)
        }
        for _ in 0..10 {
            s.record_read(CycleCount::new(900)); // bucket 10 (< 1024)
        }
        assert_eq!(s.read_latency_percentile(0.5), 63);
        assert_eq!(s.read_latency_percentile(0.9), 63);
        assert_eq!(s.read_latency_percentile(0.99), 1023);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn bad_percentile_rejected() {
        let _ = SystemStats::new().read_latency_percentile(1.5);
    }
}
