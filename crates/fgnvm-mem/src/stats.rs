//! System-level statistics.

use fgnvm_types::hist::{latency_bucket, percentile_from_hist, HIST_BUCKETS};
use fgnvm_types::time::CycleCount;

/// Counters accumulated by a [`MemorySystem`](crate::MemorySystem).
///
/// Latency histograms use the workspace-wide power-of-two bucketing
/// ([`fgnvm_types::hist`]): bucket 0 holds exactly latency 0, bucket *i* ≥ 1
/// holds `[2^(i-1), 2^i)`. Percentiles report a bucket's inclusive upper
/// bound, overstating the true value by strictly less than 2× (bucket 0 is
/// exact); the tracked `*_latency_max` fields are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemStats {
    /// Reads accepted into a controller queue.
    pub enqueued_reads: u64,
    /// Writes accepted into a write queue.
    pub enqueued_writes: u64,
    /// Reads served directly from the write queue (store-to-load
    /// forwarding).
    pub forwarded_reads: u64,
    /// Writes merged into an existing write-queue entry for the same line.
    pub merged_writes: u64,
    /// Reads whose data burst has completed.
    pub completed_reads: u64,
    /// Sum of read latencies (arrival → last data beat).
    pub read_latency_total: CycleCount,
    /// Largest single read latency observed.
    pub read_latency_max: CycleCount,
    /// Power-of-two read-latency histogram.
    pub read_latency_hist: [u64; HIST_BUCKETS],
    /// Writes whose device operation (verify retries included) completed.
    pub completed_writes: u64,
    /// Sum of write latencies (arrival → device completion).
    pub write_latency_total: CycleCount,
    /// Largest single write latency observed.
    pub write_latency_max: CycleCount,
    /// Power-of-two write-latency histogram.
    pub write_latency_hist: [u64; HIST_BUCKETS],
    /// Enqueue attempts rejected because a queue was full.
    pub rejected: u64,
    /// Sum of read-queue occupancies sampled once per controller tick.
    pub read_queue_depth_sum: u64,
    /// Ticks sampled for the queue-depth average.
    pub queue_depth_samples: u64,
    /// Reads whose transient bit errors ECC corrected (decode latency paid).
    pub corrected_errors: u64,
    /// Reads ECC could not correct (stuck-at fault or too many bit flips);
    /// the row is remapped to a spare.
    pub uncorrectable_errors: u64,
    /// Rows remapped to spares after uncorrectable errors.
    pub remapped_rows: u64,
    /// Spare candidates rejected during remapping because the spare had
    /// itself already failed (retired or remapped away); handing one out
    /// would silently alias two logical rows onto one dead physical row.
    pub remap_collisions: u64,
    /// Writes re-issued from the controller after the device exhausted its
    /// on-die write-verify retry budget.
    pub reissued_writes: u64,
    /// Rows retired outright because the bank's spare-row pool was already
    /// exhausted (second rung of the wear-out escalation ladder): the row's
    /// capacity is lost and reads return best-effort data.
    pub retired_rows: u64,
    /// Banks currently degraded to read-only mode because their retired-row
    /// count crossed `ReliabilityConfig::read_only_row_threshold`.
    pub read_only_banks: u64,
    /// Write enqueue attempts rejected because the target bank is read-only.
    pub read_only_write_rejections: u64,
    /// Per-tenant counters, indexed by tenant id and grown on demand.
    /// *Every* request is accounted here (untagged traffic is tenant 0),
    /// so the per-tenant sums fold exactly to the global counters above —
    /// the tenant-conservation invariant in `fgnvm-check` pins that.
    pub tenants: Vec<TenantStats>,
}

/// Cumulative counters of one tenant's traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Reads accepted into a controller queue (forwarded reads included).
    pub enqueued_reads: u64,
    /// Writes accepted into a write queue (merged writes included).
    pub enqueued_writes: u64,
    /// Reads whose data burst has completed.
    pub completed_reads: u64,
    /// Writes whose device operation completed.
    pub completed_writes: u64,
    /// Sum of this tenant's read latencies.
    pub read_latency_total: u64,
    /// Sum of this tenant's write latencies.
    pub write_latency_total: u64,
    /// Power-of-two read-latency histogram.
    pub read_latency_hist: [u64; HIST_BUCKETS],
    /// Power-of-two write-latency histogram.
    pub write_latency_hist: [u64; HIST_BUCKETS],
}

impl TenantStats {
    /// Approximate read-latency percentile (same bucket semantics as
    /// [`SystemStats::read_latency_percentile`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn read_latency_percentile(&self, p: f64) -> u64 {
        percentile_from_hist(&self.read_latency_hist, p)
    }

    /// Approximate write-latency percentile.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn write_latency_percentile(&self, p: f64) -> u64 {
        percentile_from_hist(&self.write_latency_hist, p)
    }

    fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("tstats");
        for v in [
            self.enqueued_reads,
            self.enqueued_writes,
            self.completed_reads,
            self.completed_writes,
            self.read_latency_total,
            self.write_latency_total,
        ] {
            w.u64(v);
        }
        for b in self
            .read_latency_hist
            .iter()
            .chain(&self.write_latency_hist)
        {
            w.u64(*b);
        }
    }

    fn load_state(
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<TenantStats, fgnvm_types::SnapshotError> {
        r.tag("tstats")?;
        let mut t = TenantStats {
            enqueued_reads: r.u64()?,
            enqueued_writes: r.u64()?,
            completed_reads: r.u64()?,
            completed_writes: r.u64()?,
            read_latency_total: r.u64()?,
            write_latency_total: r.u64()?,
            ..TenantStats::default()
        };
        for b in t
            .read_latency_hist
            .iter_mut()
            .chain(t.write_latency_hist.iter_mut())
        {
            *b = r.u64()?;
        }
        Ok(t)
    }
}

impl SystemStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        SystemStats {
            enqueued_reads: 0,
            enqueued_writes: 0,
            forwarded_reads: 0,
            merged_writes: 0,
            completed_reads: 0,
            read_latency_total: CycleCount::ZERO,
            read_latency_max: CycleCount::ZERO,
            read_latency_hist: [0; HIST_BUCKETS],
            completed_writes: 0,
            write_latency_total: CycleCount::ZERO,
            write_latency_max: CycleCount::ZERO,
            write_latency_hist: [0; HIST_BUCKETS],
            rejected: 0,
            read_queue_depth_sum: 0,
            queue_depth_samples: 0,
            corrected_errors: 0,
            uncorrectable_errors: 0,
            remapped_rows: 0,
            remap_collisions: 0,
            reissued_writes: 0,
            retired_rows: 0,
            read_only_banks: 0,
            read_only_write_rejections: 0,
            tenants: Vec::new(),
        }
    }

    /// The mutable per-tenant slot for `tenant`, growing the table on
    /// first touch so idle tenants cost nothing until they send traffic.
    pub fn tenant_mut(&mut self, tenant: u16) -> &mut TenantStats {
        let index = usize::from(tenant);
        if self.tenants.len() <= index {
            self.tenants.resize_with(index + 1, TenantStats::default);
        }
        &mut self.tenants[index]
    }

    /// Accounts one accepted (or forwarded/merged) request for `tenant`.
    pub fn note_enqueued(&mut self, tenant: u16, is_read: bool) {
        let t = self.tenant_mut(tenant);
        if is_read {
            t.enqueued_reads += 1;
        } else {
            t.enqueued_writes += 1;
        }
    }

    /// Serialize every counter and histogram into a checkpoint.
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("sysstats");
        for v in [
            self.enqueued_reads,
            self.enqueued_writes,
            self.forwarded_reads,
            self.merged_writes,
            self.completed_reads,
            self.read_latency_total.raw(),
            self.read_latency_max.raw(),
            self.completed_writes,
            self.write_latency_total.raw(),
            self.write_latency_max.raw(),
            self.rejected,
            self.read_queue_depth_sum,
            self.queue_depth_samples,
            self.corrected_errors,
            self.uncorrectable_errors,
            self.remapped_rows,
            self.remap_collisions,
            self.reissued_writes,
            self.retired_rows,
            self.read_only_banks,
            self.read_only_write_rejections,
        ] {
            w.u64(v);
        }
        for b in &self.read_latency_hist {
            w.u64(*b);
        }
        for b in &self.write_latency_hist {
            w.u64(*b);
        }
        w.usize(self.tenants.len());
        for t in &self.tenants {
            t.save_state(w);
        }
    }

    /// Restore counters written by [`SystemStats::save_state`].
    pub fn load_state(
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<SystemStats, fgnvm_types::SnapshotError> {
        r.tag("sysstats")?;
        let mut s = SystemStats::new();
        s.enqueued_reads = r.u64()?;
        s.enqueued_writes = r.u64()?;
        s.forwarded_reads = r.u64()?;
        s.merged_writes = r.u64()?;
        s.completed_reads = r.u64()?;
        s.read_latency_total = CycleCount::new(r.u64()?);
        s.read_latency_max = CycleCount::new(r.u64()?);
        s.completed_writes = r.u64()?;
        s.write_latency_total = CycleCount::new(r.u64()?);
        s.write_latency_max = CycleCount::new(r.u64()?);
        s.rejected = r.u64()?;
        s.read_queue_depth_sum = r.u64()?;
        s.queue_depth_samples = r.u64()?;
        s.corrected_errors = r.u64()?;
        s.uncorrectable_errors = r.u64()?;
        s.remapped_rows = r.u64()?;
        s.remap_collisions = r.u64()?;
        s.reissued_writes = r.u64()?;
        s.retired_rows = r.u64()?;
        s.read_only_banks = r.u64()?;
        s.read_only_write_rejections = r.u64()?;
        for b in &mut s.read_latency_hist {
            *b = r.u64()?;
        }
        for b in &mut s.write_latency_hist {
            *b = r.u64()?;
        }
        let n_tenants = r.usize()?;
        for _ in 0..n_tenants.min(u16::MAX as usize + 1) {
            s.tenants.push(TenantStats::load_state(r)?);
        }
        Ok(s)
    }

    /// Records one completed read of the given latency for `tenant`.
    pub fn record_read(&mut self, tenant: u16, latency: CycleCount) {
        self.completed_reads += 1;
        self.read_latency_total += latency;
        self.read_latency_max = self.read_latency_max.max(latency);
        self.read_latency_hist[latency_bucket(latency.raw())] += 1;
        let t = self.tenant_mut(tenant);
        t.completed_reads += 1;
        t.read_latency_total += latency.raw();
        t.read_latency_hist[latency_bucket(latency.raw())] += 1;
    }

    /// Records one completed write of the given latency for `tenant`.
    pub fn record_write(&mut self, tenant: u16, latency: CycleCount) {
        self.completed_writes += 1;
        self.write_latency_total += latency;
        self.write_latency_max = self.write_latency_max.max(latency);
        self.write_latency_hist[latency_bucket(latency.raw())] += 1;
        let t = self.tenant_mut(tenant);
        t.completed_writes += 1;
        t.write_latency_total += latency.raw();
        t.write_latency_hist[latency_bucket(latency.raw())] += 1;
    }

    /// Mean read-queue occupancy per tick (the congestion the scheduler
    /// works against); zero before any tick.
    pub fn avg_read_queue_depth(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.read_queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// Mean read latency in cycles; zero when no reads completed.
    pub fn avg_read_latency(&self) -> f64 {
        if self.completed_reads == 0 {
            0.0
        } else {
            self.read_latency_total.raw() as f64 / self.completed_reads as f64
        }
    }

    /// Mean write latency in cycles; zero when no writes completed.
    pub fn avg_write_latency(&self) -> f64 {
        if self.completed_writes == 0 {
            0.0
        } else {
            self.write_latency_total.raw() as f64 / self.completed_writes as f64
        }
    }

    /// Approximate read-latency percentile from the power-of-two
    /// histogram: the inclusive upper bound of the bucket containing the
    /// `p`-th percentile sample (p in `[0, 1]`), i.e. `2^i - 1` for bucket
    /// *i* ≥ 1 and exactly 0 for bucket 0. Zero when no reads completed.
    /// Overstates the true percentile by strictly less than 2×.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn read_latency_percentile(&self, p: f64) -> u64 {
        percentile_from_hist(&self.read_latency_hist, p)
    }

    /// Approximate write-latency percentile; same bucket semantics as
    /// [`read_latency_percentile`](Self::read_latency_percentile).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn write_latency_percentile(&self, p: f64) -> u64 {
        percentile_from_hist(&self.write_latency_hist, p)
    }
}

impl Default for SystemStats {
    fn default() -> Self {
        SystemStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_recording() {
        let mut s = SystemStats::new();
        s.record_read(0, CycleCount::new(40));
        s.record_read(0, CycleCount::new(60));
        assert_eq!(s.completed_reads, 2);
        assert!((s.avg_read_latency() - 50.0).abs() < 1e-12);
        assert_eq!(s.read_latency_max, CycleCount::new(60));
    }

    #[test]
    fn write_recording_mirrors_reads() {
        let mut s = SystemStats::new();
        s.record_write(0, CycleCount::new(400));
        s.record_write(0, CycleCount::new(600));
        assert_eq!(s.completed_writes, 2);
        assert!((s.avg_write_latency() - 500.0).abs() < 1e-12);
        assert_eq!(s.write_latency_max, CycleCount::new(600));
        assert_eq!(s.write_latency_hist[9], 1); // 256..=511
        assert_eq!(s.write_latency_hist[10], 1); // 512..=1023
        assert_eq!(s.write_latency_percentile(0.99), 1023);
        // Read-side counters untouched.
        assert_eq!(s.completed_reads, 0);
        assert_eq!(s.read_latency_percentile(0.99), 0);
    }

    #[test]
    fn histogram_buckets() {
        let mut s = SystemStats::new();
        s.record_read(0, CycleCount::new(0));
        s.record_read(0, CycleCount::new(1));
        s.record_read(0, CycleCount::new(2));
        s.record_read(0, CycleCount::new(40));
        assert_eq!(s.read_latency_hist[0], 1); // latency 0
        assert_eq!(s.read_latency_hist[1], 1); // latency 1
        assert_eq!(s.read_latency_hist[2], 1); // latency 2..3
        assert_eq!(s.read_latency_hist[6], 1); // latency 32..63
    }

    #[test]
    fn queue_depth_average() {
        let mut s = SystemStats::new();
        s.read_queue_depth_sum = 30;
        s.queue_depth_samples = 10;
        assert!((s.avg_read_queue_depth() - 3.0).abs() < 1e-12);
        assert_eq!(SystemStats::new().avg_read_queue_depth(), 0.0);
    }

    #[test]
    fn empty_average_is_zero() {
        assert_eq!(SystemStats::new().avg_read_latency(), 0.0);
        assert_eq!(SystemStats::new().avg_write_latency(), 0.0);
        assert_eq!(SystemStats::new().read_latency_percentile(0.99), 0);
        assert_eq!(SystemStats::new().write_latency_percentile(0.99), 0);
    }

    #[test]
    fn zero_latency_percentile_is_zero() {
        // Regression: bucket 0 (latency 0) used to report 1 because of a
        // `.max(1)` on the bucket bound.
        let mut s = SystemStats::new();
        for _ in 0..5 {
            s.record_read(0, CycleCount::ZERO);
        }
        assert_eq!(s.read_latency_percentile(0.99), 0);
    }

    #[test]
    fn percentiles_track_the_histogram() {
        let mut s = SystemStats::new();
        for _ in 0..90 {
            s.record_read(0, CycleCount::new(50)); // bucket 6 (< 64)
        }
        for _ in 0..10 {
            s.record_read(0, CycleCount::new(900)); // bucket 10 (< 1024)
        }
        assert_eq!(s.read_latency_percentile(0.5), 63);
        assert_eq!(s.read_latency_percentile(0.9), 63);
        assert_eq!(s.read_latency_percentile(0.99), 1023);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn bad_percentile_rejected() {
        let _ = SystemStats::new().read_latency_percentile(1.5);
    }
}
