//! Cycle-level PCM main-memory simulator with FgNVM tile-level parallelism.
//!
//! This crate is the NVMain-replacement substrate of the reproduction: a
//! complete memory system (channels → ranks → banks) driven cycle by cycle,
//! with FRFCFS / TLP-aware scheduling, a posted write queue with watermark
//! draining and store-to-load forwarding, a shared (or Multi-Issue widened)
//! data bus, and the paper's energy model.
//!
//! The bank models themselves live in [`fgnvm_bank`]; this crate
//! instantiates whichever the [`SystemConfig`](fgnvm_types::SystemConfig)
//! names and arbitrates the shared channel resources above them.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fgnvm_mem::MemorySystem;
//! use fgnvm_types::config::SystemConfig;
//! use fgnvm_types::request::Op;
//! use fgnvm_types::PhysAddr;
//!
//! // Compare one bank-conflicted pair of reads on baseline vs FgNVM.
//! let mut baseline = MemorySystem::new(SystemConfig::baseline())?;
//! let mut fgnvm = MemorySystem::new(SystemConfig::fgnvm(8, 2)?)?;
//! for mem in [&mut baseline, &mut fgnvm] {
//!     mem.enqueue(Op::Read, PhysAddr::new(0));
//!     mem.enqueue(Op::Read, PhysAddr::new(8 * 1024 * 1024 + 512));
//!     mem.run_until_idle(100_000);
//! }
//! assert!(fgnvm.now() <= baseline.now());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod bus;
pub mod checker;
pub mod cmdlog;
pub mod controller;
pub mod data;
pub mod energy;
pub mod hybrid;
pub mod queues;
pub mod scheduler;
pub mod stats;
pub mod system;
pub mod wear;

pub use backend::MemoryBackend;
pub use checker::{ProtocolChecker, ProtocolReport, Violation};
pub use cmdlog::{CommandLog, CommandRecord};
pub use controller::{Controller, Enqueue};
pub use data::DataStore;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use hybrid::HybridMemory;
pub use stats::{SystemStats, TenantStats};
pub use system::{MemorySystem, Sample};
pub use wear::{StartGap, WearTracker};
