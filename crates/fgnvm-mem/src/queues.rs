//! Controller-side request queues.
//!
//! Reads live in a bounded transaction queue; writes are *posted* into a
//! separate write queue ("64 write drivers" in Table 2) and drained in the
//! background by watermark. Reads that hit a queued write are forwarded from
//! the buffer without touching the array.

use std::collections::VecDeque;

use fgnvm_bank::Access;
use fgnvm_types::address::{DecodedAddr, PhysAddr};
use fgnvm_types::error::SimError;
use fgnvm_types::request::Request;

/// A request waiting at the controller, with its decode cached.
#[derive(Debug, Clone, Copy)]
pub struct Pending {
    /// The original request.
    pub request: Request,
    /// Decoded hierarchy coordinates.
    pub decoded: DecodedAddr,
    /// Bank-level access description (row, line, tile coordinates).
    pub access: Access,
    /// Channel-local bank index (`rank × banks_per_rank + bank`).
    pub bank_index: usize,
}

/// One physical slot: a pending request, or the tombstone a mid-queue
/// removal left behind.
#[derive(Debug, Clone, Copy)]
struct Slot {
    pending: Pending,
    dead: bool,
}

/// Bounded FIFO of pending requests preserving arrival order.
///
/// Mid-queue removal is tombstone-based: FCFS/FRFCFS age order must be
/// preserved exactly (a swap-remove would reorder arrivals), so a removed
/// entry is marked dead in place instead of shifting every younger entry
/// forward. Dead slots at the front are popped eagerly, and the backing
/// ring is compacted in place once tombstones reach the queue's capacity,
/// so the storage stays bounded at `2 × capacity` and removal is amortized
/// O(live) slot *scans* with no entry moves in the common case. Iteration,
/// indices, and occupancy are all expressed in live entries only —
/// tombstones are invisible through the public API.
#[derive(Debug, Clone)]
pub struct RequestQueue {
    entries: VecDeque<Slot>,
    /// Live (non-tombstone) entries — the queue's logical occupancy.
    live: usize,
    capacity: usize,
}

impl RequestQueue {
    /// Creates an empty queue holding at most `capacity` requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        RequestQueue {
            // Twice the logical capacity so tombstones never force a
            // reallocation: compaction runs before the ring can outgrow it
            // (part of the steady-state zero-allocation guarantee).
            entries: VecDeque::with_capacity(capacity * 2),
            live: 0,
            capacity,
        }
    }

    /// Attempts to append a request; returns `false` when full.
    pub fn push(&mut self, pending: Pending) -> bool {
        if self.live >= self.capacity {
            return false;
        }
        if self.entries.len() - self.live >= self.capacity {
            // Tombstones have piled up to the reallocation boundary:
            // compact in place (drops ≥ capacity slots, so this is
            // amortized O(1) per removal and never allocates).
            self.entries.retain(|slot| !slot.dead);
        }
        self.entries.push_back(Slot {
            pending,
            dead: false,
        });
        self.live += 1;
        true
    }

    /// Removes and returns the live entry at `index` (0 = oldest).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QueueIndex`] when `index` is not a live entry
    /// (debug builds additionally assert: every caller derives indices
    /// from this queue, so an out-of-range index is a scheduler bug).
    pub fn remove(&mut self, index: usize) -> Result<Pending, SimError> {
        debug_assert!(
            index < self.live,
            "queue index {index} out of range ({} live entries)",
            self.live
        );
        let mut seen = 0usize;
        for slot in self.entries.iter_mut() {
            if slot.dead {
                continue;
            }
            if seen == index {
                slot.dead = true;
                self.live -= 1;
                let pending = slot.pending;
                // Keep the front live so age-0 lookups stay O(1).
                while self.entries.front().is_some_and(|s| s.dead) {
                    self.entries.pop_front();
                }
                return Ok(pending);
            }
            seen += 1;
        }
        Err(SimError::QueueIndex {
            index,
            len: self.live,
        })
    }

    /// Entries in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Pending> {
        self.entries
            .iter()
            .filter(|slot| !slot.dead)
            .map(|slot| &slot.pending)
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// True when no more requests fit.
    pub fn is_full(&self) -> bool {
        self.live >= self.capacity
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if any queued entry targets `addr` (line-aligned match).
    pub fn contains_addr(&self, addr: PhysAddr) -> bool {
        self.iter().any(|p| p.request.addr == addr)
    }

    /// Index of the first entry targeting `addr`, if any.
    pub fn position_addr(&self, addr: PhysAddr) -> Option<usize> {
        self.iter().position(|p| p.request.addr == addr)
    }

    /// Serialize the queued entries (capacity is structural and rebuilt
    /// from configuration; tombstones are a transient storage detail and
    /// are not part of the state).
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("rqueue");
        w.usize(self.live);
        for p in self.iter() {
            save_pending(p, w);
        }
    }

    /// Restore entries written by [`RequestQueue::save_state`] into this
    /// queue, replacing its current contents.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](fgnvm_types::SnapshotError) when the
    /// checkpoint holds more entries than this queue's capacity.
    pub fn load_state(
        &mut self,
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<(), fgnvm_types::SnapshotError> {
        r.tag("rqueue")?;
        let n = r.usize()?;
        if n > self.capacity {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "checkpoint queue holds {n} entries, capacity is {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push_back(Slot {
                pending: load_pending(r)?,
                dead: false,
            });
        }
        self.live = n;
        Ok(())
    }
}

/// Serialize one [`Pending`] entry.
pub(crate) fn save_pending(p: &Pending, w: &mut fgnvm_types::SnapshotWriter) {
    use fgnvm_types::request::{Op, Priority};
    w.u64(p.request.id.raw());
    w.u8(match p.request.op {
        Op::Read => 0,
        Op::Write => 1,
    });
    w.u64(p.request.addr.raw());
    w.u64(p.request.arrival.raw());
    w.u8(match p.request.priority {
        Priority::Demand => 0,
        Priority::Prefetch => 1,
    });
    w.u32(u32::from(p.request.tenant));
    w.u32(p.decoded.channel);
    w.u32(p.decoded.rank);
    w.u32(p.decoded.bank);
    w.u32(p.decoded.row);
    w.u32(p.decoded.line);
    w.u8(match p.access.op {
        Op::Read => 0,
        Op::Write => 1,
    });
    w.u32(p.access.row);
    w.u32(p.access.line);
    w.u32(p.access.coord.sag);
    w.u32(p.access.coord.cd_first);
    w.u32(p.access.coord.cd_count);
    w.usize(p.bank_index);
}

/// Restore one [`Pending`] entry written by [`save_pending`].
pub(crate) fn load_pending(
    r: &mut fgnvm_types::SnapshotReader<'_>,
) -> Result<Pending, fgnvm_types::SnapshotError> {
    use fgnvm_types::address::TileCoord;
    use fgnvm_types::request::{Op, Priority, RequestId};
    use fgnvm_types::time::Cycle;
    fn op_from(d: u8) -> Result<Op, fgnvm_types::SnapshotError> {
        match d {
            0 => Ok(Op::Read),
            1 => Ok(Op::Write),
            other => Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "unknown op discriminant {other}"
            ))),
        }
    }
    let id = RequestId::new(r.u64()?);
    let op = op_from(r.u8()?)?;
    let addr = PhysAddr::new(r.u64()?);
    let arrival = Cycle::new(r.u64()?);
    let priority = match r.u8()? {
        0 => Priority::Demand,
        1 => Priority::Prefetch,
        other => {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "unknown priority discriminant {other}"
            )))
        }
    };
    let mut request = Request::new(id, op, addr, arrival);
    request.priority = priority;
    request.tenant = r.u32()? as u16;
    let decoded = DecodedAddr {
        channel: r.u32()?,
        rank: r.u32()?,
        bank: r.u32()?,
        row: r.u32()?,
        line: r.u32()?,
    };
    let access = Access {
        op: op_from(r.u8()?)?,
        row: r.u32()?,
        line: r.u32()?,
        coord: TileCoord {
            sag: r.u32()?,
            cd_first: r.u32()?,
            cd_count: r.u32()?,
        },
    };
    let bank_index = r.usize()?;
    Ok(Pending {
        request,
        decoded,
        access,
        bank_index,
    })
}

/// Write-drain hysteresis: drain begins above the high watermark and stops
/// at or below the low watermark.
#[derive(Debug, Clone, Copy)]
pub struct DrainPolicy {
    /// Queue occupancy (entries) that triggers draining.
    pub high: usize,
    /// Occupancy at which draining stops.
    pub low: usize,
}

impl DrainPolicy {
    /// Standard policy for a queue of `capacity`: drain from ¾ down to ¼.
    pub fn for_capacity(capacity: usize) -> Self {
        DrainPolicy {
            high: (capacity * 3 / 4).max(1),
            low: capacity / 4,
        }
    }

    /// Updates `draining` given current queue occupancy.
    ///
    /// This is a pure function, and it is a *fixpoint* under constant
    /// occupancy: `update(update(d, n), n) == update(d, n)`. The
    /// event-driven fast-forward path depends on that — while nothing
    /// issues, retires, *or enqueues*, queue occupancy is frozen, so the
    /// drain flag settles after one update and every skipped controller
    /// tick would have recomputed the same value. Enqueues *do* land
    /// between ticks, which is why every fast-forward skip settles the
    /// flag over the elided stretch before the occupancy can move again
    /// (`Controller::settle_drain`).
    pub fn update(&self, draining: bool, occupancy: usize) -> bool {
        if draining {
            occupancy > self.low
        } else {
            occupancy >= self.high
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnvm_types::address::TileCoord;
    use fgnvm_types::request::{Op, RequestId};
    use fgnvm_types::time::Cycle;

    fn pending(id: u64, addr: u64) -> Pending {
        Pending {
            request: Request::new(
                RequestId::new(id),
                Op::Read,
                PhysAddr::new(addr),
                Cycle::ZERO,
            ),
            decoded: DecodedAddr::default(),
            access: Access {
                op: Op::Read,
                row: 0,
                line: 0,
                coord: TileCoord {
                    sag: 0,
                    cd_first: 0,
                    cd_count: 1,
                },
            },
            bank_index: 0,
        }
    }

    #[test]
    fn push_respects_capacity() {
        let mut q = RequestQueue::new(2);
        assert!(q.push(pending(1, 0)));
        assert!(q.push(pending(2, 64)));
        assert!(!q.push(pending(3, 128)));
        assert!(q.is_full());
    }

    #[test]
    fn remove_preserves_order() {
        let mut q = RequestQueue::new(4);
        for i in 0..4 {
            q.push(pending(i, i * 64));
        }
        let removed = q.remove(1).unwrap();
        assert_eq!(removed.request.id, RequestId::new(1));
        let ids: Vec<u64> = q.iter().map(|p| p.request.id.raw()).collect();
        assert_eq!(ids, vec![0, 2, 3]);
    }

    #[test]
    fn remove_out_of_range_is_a_structured_error() {
        let mut q = RequestQueue::new(4);
        q.push(pending(0, 0));
        if cfg!(debug_assertions) {
            // Debug builds assert: an out-of-range index is a scheduler
            // bug and should fail loudly under test.
            let panicked =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.remove(1))).is_err();
            assert!(panicked, "debug builds must assert on a bad index");
        } else {
            // Release builds degrade to a structured error so a long run
            // stalls diagnosably instead of aborting.
            let err = q.remove(1).unwrap_err();
            assert!(matches!(err, SimError::QueueIndex { index: 1, len: 1 }));
        }
        // The queue is untouched by the failed removal.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn tombstones_never_grow_the_ring_or_leak_capacity() {
        // Churn: fill, remove from the middle, refill — many times over.
        // Live indices must stay consistent, capacity must never be lost
        // to tombstones, and the backing ring must never outgrow its
        // initial 2× reservation (the zero-allocation guarantee).
        let mut q = RequestQueue::new(8);
        let reserved = q.entries.capacity();
        let mut next_id = 0u64;
        for _ in 0..8 {
            q.push(pending(next_id, next_id * 64));
            next_id += 1;
        }
        for round in 0..100u64 {
            // Remove a middle entry, then a front entry, then refill.
            let victim = (round % 6) as usize + 1;
            let removed = q.remove(victim).unwrap();
            assert!(!q.is_full());
            let front = q.remove(0).unwrap();
            assert!(front.request.id.raw() < removed.request.id.raw() + 8);
            for _ in 0..2 {
                assert!(q.push(pending(next_id, next_id * 64)));
                next_id += 1;
            }
            assert!(q.is_full());
            assert_eq!(q.iter().count(), q.len());
            // Arrival order is preserved across tombstoning/compaction.
            let ids: Vec<u64> = q.iter().map(|p| p.request.id.raw()).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "arrival order must survive churn");
            assert!(q.entries.capacity() <= reserved.max(16));
        }
        assert_eq!(q.entries.capacity(), reserved, "ring must never grow");
    }

    #[test]
    fn addr_lookup() {
        let mut q = RequestQueue::new(4);
        q.push(pending(0, 0));
        q.push(pending(1, 128));
        assert!(q.contains_addr(PhysAddr::new(128)));
        assert!(!q.contains_addr(PhysAddr::new(64)));
        assert_eq!(q.position_addr(PhysAddr::new(128)), Some(1));
    }

    #[test]
    fn drain_hysteresis() {
        let p = DrainPolicy::for_capacity(64);
        assert_eq!((p.high, p.low), (48, 16));
        assert!(!p.update(false, 47));
        assert!(p.update(false, 48));
        assert!(p.update(true, 17));
        assert!(!p.update(true, 16));
    }

    #[test]
    fn drain_update_is_a_fixpoint_under_constant_occupancy() {
        // Fast-forward soundness: skipped ticks recompute the drain flag
        // from unchanged occupancy, so one update must settle it.
        for capacity in [1usize, 2, 8, 64] {
            let p = DrainPolicy::for_capacity(capacity);
            for occupancy in 0..=capacity {
                for start in [false, true] {
                    let once = p.update(start, occupancy);
                    assert_eq!(
                        p.update(once, occupancy),
                        once,
                        "capacity {capacity}, occupancy {occupancy}, start {start}"
                    );
                }
            }
        }
    }

    #[test]
    fn drain_policy_tiny_queue() {
        let p = DrainPolicy::for_capacity(1);
        assert_eq!(p.high, 1);
        assert!(p.update(false, 1));
        assert!(!p.update(true, 0));
    }
}
