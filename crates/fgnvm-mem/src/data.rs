//! Functional (architectural) memory contents.
//!
//! The timing simulator models *when* data moves; this module models *what*
//! the data is. Contents live in a sparse line-granular store — untouched
//! memory reads as zeros, like NVMain's optional data encoding layer.
//! Functional state is updated in program (enqueue) order, so
//! read-your-writes holds regardless of how the timing side reorders
//! commands: reordering in the controller never violates same-address
//! ordering because reads to queued writes are forwarded and duplicate
//! writes are merged.

use std::collections::HashMap;

use fgnvm_types::address::PhysAddr;

/// Sparse, line-granular backing store.
///
/// ```
/// use fgnvm_mem::DataStore;
/// use fgnvm_types::PhysAddr;
///
/// let mut store = DataStore::new(64);
/// store.write(PhysAddr::new(0x1000), b"fgnvm");
/// let mut buf = [0u8; 5];
/// store.read(PhysAddr::new(0x1000), &mut buf);
/// assert_eq!(&buf, b"fgnvm");
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataStore {
    line_bytes: usize,
    lines: HashMap<u64, Box<[u8]>>,
}

impl DataStore {
    /// Creates an empty store with `line_bytes`-sized lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero or not a power of two.
    pub fn new(line_bytes: u32) -> Self {
        assert!(
            line_bytes > 0 && line_bytes.is_power_of_two(),
            "line size must be a positive power of two"
        );
        DataStore {
            line_bytes: line_bytes as usize,
            lines: HashMap::new(),
        }
    }

    /// The line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Number of lines that have ever been written.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    fn line_index(&self, addr: PhysAddr) -> u64 {
        addr.raw() / self.line_bytes as u64
    }

    /// Writes `data` at `addr`. The write may start anywhere within a line
    /// and may span line boundaries; absent portions of touched lines are
    /// zero-filled first.
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        let mut offset = (addr.raw() % self.line_bytes as u64) as usize;
        let mut line = self.line_index(addr);
        let mut remaining = data;
        while !remaining.is_empty() {
            let space = self.line_bytes - offset;
            let take = space.min(remaining.len());
            let buf = self
                .lines
                .entry(line)
                .or_insert_with(|| vec![0u8; self.line_bytes].into_boxed_slice());
            buf[offset..offset + take].copy_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
            offset = 0;
            line += 1;
        }
    }

    /// Reads into `buf` starting at `addr`; unwritten memory reads as
    /// zeros. May span line boundaries.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        let mut offset = (addr.raw() % self.line_bytes as u64) as usize;
        let mut line = self.line_index(addr);
        let mut out = buf;
        while !out.is_empty() {
            let space = self.line_bytes - offset;
            let take = space.min(out.len());
            match self.lines.get(&line) {
                Some(data) => out[..take].copy_from_slice(&data[offset..offset + take]),
                None => out[..take].fill(0),
            }
            out = &mut out[take..];
            offset = 0;
            line += 1;
        }
    }

    /// Returns a reference to one full line's contents, or `None` if that
    /// line was never written.
    pub fn line(&self, addr: PhysAddr) -> Option<&[u8]> {
        self.lines.get(&self.line_index(addr)).map(|b| &b[..])
    }

    /// Serialize the resident lines in sorted index order.
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("data");
        w.usize(self.line_bytes);
        let mut indices: Vec<u64> = self.lines.keys().copied().collect();
        indices.sort_unstable();
        w.usize(indices.len());
        for idx in indices {
            w.u64(idx);
            w.bytes(&self.lines[&idx]);
        }
    }

    /// Restore contents written by [`DataStore::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](fgnvm_types::SnapshotError) on a
    /// truncated stream or a line whose length disagrees with the store's
    /// line size.
    pub fn load_state(
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<DataStore, fgnvm_types::SnapshotError> {
        r.tag("data")?;
        let line_bytes = r.usize()?;
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                "line size {line_bytes} is not a positive power of two"
            )));
        }
        let n = r.usize()?;
        let mut lines = HashMap::with_capacity(n);
        for _ in 0..n {
            let idx = r.u64()?;
            let data = r.bytes()?;
            if data.len() != line_bytes {
                return Err(fgnvm_types::SnapshotError::Corrupt(format!(
                    "line {idx} has {} bytes, expected {line_bytes}",
                    data.len()
                )));
            }
            lines.insert(idx, data.to_vec().into_boxed_slice());
        }
        Ok(DataStore { line_bytes, lines })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let store = DataStore::new(64);
        let mut buf = [0xffu8; 16];
        store.read(PhysAddr::new(0x1234), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(store.line(PhysAddr::new(0x1234)), None);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut store = DataStore::new(64);
        store.write(PhysAddr::new(0x100), b"hello fgnvm");
        let mut buf = [0u8; 11];
        store.read(PhysAddr::new(0x100), &mut buf);
        assert_eq!(&buf, b"hello fgnvm");
    }

    #[test]
    fn cross_line_write_and_read() {
        let mut store = DataStore::new(64);
        // Start 10 bytes before a line boundary, write 20 bytes.
        let addr = PhysAddr::new(64 - 10);
        let data: Vec<u8> = (0..20).collect();
        store.write(addr, &data);
        let mut buf = [0u8; 20];
        store.read(addr, &mut buf);
        assert_eq!(buf.as_slice(), data.as_slice());
        assert_eq!(store.resident_lines(), 2);
    }

    #[test]
    fn partial_write_preserves_rest_of_line() {
        let mut store = DataStore::new(64);
        store.write(PhysAddr::new(0), &[0xaa; 64]);
        store.write(PhysAddr::new(8), &[0xbb; 4]);
        let mut buf = [0u8; 64];
        store.read(PhysAddr::new(0), &mut buf);
        assert_eq!(&buf[..8], &[0xaa; 8]);
        assert_eq!(&buf[8..12], &[0xbb; 4]);
        assert_eq!(&buf[12..], &[0xaa; 52]);
    }

    #[test]
    fn overwrite_takes_effect() {
        let mut store = DataStore::new(64);
        store.write(PhysAddr::new(0x40), &[1; 8]);
        store.write(PhysAddr::new(0x40), &[2; 8]);
        let mut buf = [0u8; 8];
        store.read(PhysAddr::new(0x40), &mut buf);
        assert_eq!(buf, [2; 8]);
        assert_eq!(store.resident_lines(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = DataStore::new(48);
    }
}
