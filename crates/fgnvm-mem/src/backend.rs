//! The memory-backend abstraction the CPU models drive.
//!
//! [`MemorySystem`](crate::MemorySystem) is the flat main memory;
//! [`HybridMemory`](crate::hybrid::HybridMemory) layers a DRAM buffer in
//! front of it. Cores are generic over this trait so either can sit
//! behind them.

use fgnvm_types::address::PhysAddr;
use fgnvm_types::request::{Completion, Op, RequestId};
use fgnvm_types::time::Cycle;

/// A tickable memory that accepts line-granular requests.
pub trait MemoryBackend {
    /// Presents a demand request; `None` means backpressure (retry later).
    fn enqueue(&mut self, op: Op, addr: PhysAddr) -> Option<RequestId>;

    /// Presents a speculative prefetch; may be dropped (`None`).
    fn enqueue_prefetch(&mut self, addr: PhysAddr) -> Option<RequestId>;

    /// Advances one memory cycle, appending completions to `out`.
    fn tick_into(&mut self, out: &mut Vec<Completion>);

    /// The earliest instant at which a tick could change state (retire a
    /// completion or issue a command), or `None` when the backend is idle
    /// or cannot tell. A `Some` answer is a *lower bound*: CPU models may
    /// leap both clocks over the dead stretch, knowing the skipped memory
    /// ticks would have done nothing. The default `None` simply disables
    /// that optimization.
    fn next_event_at(&self) -> Option<Cycle> {
        None
    }

    /// Advances the clock to exactly `target`, appending completions —
    /// equivalent to calling [`tick_into`](Self::tick_into) until
    /// [`now`](Self::now) reaches `target`. Backends with an event-driven
    /// core override this to jump dead stretches.
    fn tick_to(&mut self, target: Cycle, out: &mut Vec<Completion>) {
        while self.now() < target {
            self.tick_into(out);
        }
    }

    /// The current memory cycle.
    fn now(&self) -> Cycle;

    /// Runs until fully drained (bounded); returns remaining completions.
    ///
    /// # Panics
    ///
    /// Implementations panic if draining exceeds `max_cycles`.
    fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Completion>;
}

impl MemoryBackend for crate::MemorySystem {
    fn enqueue(&mut self, op: Op, addr: PhysAddr) -> Option<RequestId> {
        crate::MemorySystem::enqueue(self, op, addr)
    }

    fn enqueue_prefetch(&mut self, addr: PhysAddr) -> Option<RequestId> {
        crate::MemorySystem::enqueue_prefetch(self, addr)
    }

    fn tick_into(&mut self, out: &mut Vec<Completion>) {
        crate::MemorySystem::tick_into(self, out);
    }

    fn next_event_at(&self) -> Option<Cycle> {
        // Reported only while fast-forward is on, so CPU models driven by a
        // cycle-stepped (reference) system degrade to pure stepping too —
        // one switch controls the whole stack in differential tests.
        if self.fast_forward_enabled() {
            crate::MemorySystem::next_event_at(self)
        } else {
            None
        }
    }

    fn tick_to(&mut self, target: Cycle, out: &mut Vec<Completion>) {
        crate::MemorySystem::tick_to(self, target, out);
    }

    fn now(&self) -> Cycle {
        crate::MemorySystem::now(self)
    }

    fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Completion> {
        crate::MemorySystem::run_until_idle(self, max_cycles)
    }
}
