//! Steady-state fast-forward must not touch the heap.
//!
//! The event-driven core (`next_event_at` + `skip_to` + sparse ticks) is
//! the per-cycle inner loop of every sweep; an allocation there is a
//! per-event cost multiplied by billions of simulated cycles. This test
//! pins the guarantee with a counting global allocator: after a warm-up
//! that grows every internal buffer to its steady-state capacity
//! (request-queue rings, the event heap, the completion vector), further
//! enqueue/drain waves of the same shape must perform **zero** heap
//! allocations and **zero** reallocations.
//!
//! The armed flag is thread-local (const-initialized, so reading it never
//! itself allocates or registers a destructor): only allocations made by
//! the test's own thread count, keeping libtest's harness threads from
//! poisoning the tally.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use fgnvm_mem::MemorySystem;
use fgnvm_types::config::SystemConfig;
use fgnvm_types::request::Op;
use fgnvm_types::PhysAddr;

/// Forwards to the system allocator, counting alloc/realloc calls while
/// the current thread is armed. Deallocations are not counted: freeing
/// warm-up scratch late is harmless, acquiring new memory mid-loop is the
/// regression.
struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicU64 = AtomicU64::new(0);

fn armed() -> bool {
    ARMED.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One wave of the bench's write-drain pattern: 32 writes onto one bank
/// across 16 rows, then drain to idle. Identical shape every wave, so the
/// first wave settles every buffer at its high-water mark.
fn wave(mem: &mut MemorySystem, id: &mut u64, out: &mut Vec<fgnvm_types::request::Completion>) {
    for _ in 0..32 {
        let addr = PhysAddr::new(((*id % 8) << 13) | (((*id / 8) % 16) << 6));
        *id += 1;
        while mem.enqueue(Op::Write, addr).is_none() {
            mem.tick_to(fgnvm_types::time::Cycle::new(mem.now().raw() + 1), out);
        }
    }
    // Drain: hop event to event until idle (the fast-forward inner loop).
    while !mem.is_idle() {
        let target = fgnvm_types::time::Cycle::new(mem.now().raw() + 1_000_000);
        mem.tick_to(target, out);
        assert!(
            mem.is_idle() || mem.now().raw() < target.raw(),
            "drain failed to converge"
        );
    }
}

#[test]
fn fast_forward_steady_state_allocates_nothing() {
    let mut mem = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
    mem.set_fast_forward(true);
    let mut id = 0u64;
    let mut out = Vec::with_capacity(4096);

    // Warm-up: two full waves grow the queues, the event heap, and `out`
    // to the repeating pattern's high-water marks.
    for _ in 0..2 {
        wave(&mut mem, &mut id, &mut out);
    }
    out.clear();

    // Armed: ten more identical waves must never touch the allocator.
    ALLOCS.store(0, Relaxed);
    ARMED.with(|a| a.set(true));
    for _ in 0..10 {
        wave(&mut mem, &mut id, &mut out);
        out.clear();
    }
    ARMED.with(|a| a.set(false));

    let allocs = ALLOCS.load(Relaxed);
    assert_eq!(
        allocs, 0,
        "steady-state fast-forward performed {allocs} heap allocations"
    );
    assert!(id >= 12 * 32, "waves did not run");
}
