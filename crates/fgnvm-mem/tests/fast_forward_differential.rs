//! Differential tests for the event-driven fast-forward core.
//!
//! The fast-forward path (`MemorySystem::next_event_at` + `skip_to`) claims
//! to be *bit-identical* to cycle stepping: same completions, same stats,
//! same samples, same command log, same protocol verdicts. These tests hold
//! it to that claim three ways:
//!
//! 1. a property test pushing random request streams through every system
//!    preset (including reliability-enabled ones) in both modes;
//! 2. a sweep over every checked-in `configs/*.cfg` file, parsed exactly as
//!    the `fgnvm_trace` binary would parse it;
//! 3. exhaustive unit checks that both bank FSMs' `next_ready_hint` is a
//!    sound lower bound — the contract the skip logic rests on.
//!
//! Every run executes with the observability layer enabled: the snapshot
//! includes the rendered metrics and Chrome-trace JSON documents, so span
//! decompositions, the S×C conflict heatmap, and the trace event stream
//! must also match byte for byte between fast-forwarded and stepped runs
//! (observer hooks only fire from stepped paths; `skip_to` fires none).

use proptest::prelude::*;

use fgnvm_bank::{Access, Bank, BaselineBank, FgnvmBank, Modes};
use fgnvm_mem::{CommandRecord, MemorySystem, ProtocolChecker, Sample, SystemStats};
use fgnvm_types::address::TileCoord;
use fgnvm_types::config::{SchedulerKind, SystemConfig};
use fgnvm_types::geometry::Geometry;
use fgnvm_types::request::{Completion, Op};
use fgnvm_types::time::Cycle;
use fgnvm_types::{PhysAddr, TimingConfig};

/// A compact random request: op, bank-ish region, row-ish index, line.
#[derive(Debug, Clone, Copy)]
struct Gen {
    is_write: bool,
    region: u64,
    row: u64,
    line: u64,
}

impl Gen {
    /// Maps the abstract coordinates onto a physical address that stays
    /// within a handful of rows/banks so conflicts actually happen.
    fn addr(&self) -> PhysAddr {
        // Default mapping: offset(6) | line(4) | bank(3) | row(15).
        PhysAddr::new((self.row << 13) | (self.region << 10) | (self.line << 6))
    }
}

fn gen_strategy() -> impl Strategy<Value = Gen> {
    (any::<bool>(), 0u64..8, 0u64..16, 0u64..16).prop_map(|(is_write, region, row, line)| Gen {
        is_write,
        region,
        row,
        line,
    })
}

/// Every preset the scheduler/bank matrix offers, plus reliability-enabled
/// variants so the differential covers retry and remap traffic too.
fn all_presets() -> Vec<(&'static str, SystemConfig)> {
    let mut presets = vec![
        ("baseline", SystemConfig::baseline()),
        ("fgnvm 4x4", SystemConfig::fgnvm(4, 4).unwrap()),
        ("fgnvm 8x2", SystemConfig::fgnvm(8, 2).unwrap()),
        ("fgnvm 8x8", SystemConfig::fgnvm(8, 8).unwrap()),
        (
            "multi-issue 8x2",
            SystemConfig::fgnvm_multi_issue(8, 2, 2).unwrap(),
        ),
        ("many-banks 128", SystemConfig::many_banks(128).unwrap()),
        ("dram", SystemConfig::dram()),
        (
            "pausing 8x8",
            SystemConfig::fgnvm_with_pausing(8, 8).unwrap(),
        ),
    ];
    let mut fcfs = SystemConfig::fgnvm(4, 4).unwrap();
    fcfs.scheduler = SchedulerKind::Fcfs;
    presets.push(("fcfs 4x4", fcfs));
    let mut frfcfs = SystemConfig::fgnvm(4, 4).unwrap();
    frfcfs.scheduler = SchedulerKind::Frfcfs;
    presets.push(("frfcfs 4x4", frfcfs));
    let mut cap = SystemConfig::fgnvm(4, 4).unwrap();
    cap.scheduler = SchedulerKind::FrfcfsCap;
    presets.push(("frfcfs-cap 4x4", cap));
    // Fault-injected variant mirroring configs/fgnvm_8x2_faulty.cfg: read
    // errors, write-verify retries, and row remaps all in play.
    let mut faulty = SystemConfig::fgnvm(8, 2).unwrap();
    faulty.reliability.fault_seed = 42;
    faulty.reliability.rber = 1e-3;
    faulty.reliability.write_fail_prob = 0.25;
    faulty.reliability.max_write_retries = 4;
    faulty.reliability.ecc_correctable_bits = 2;
    faulty.reliability.ecc_decode_penalty_cycles = 10;
    presets.push(("faulty 8x2", faulty));
    presets
}

/// Everything observable about one finished run.
#[derive(Debug, PartialEq)]
struct Snapshot {
    now: Cycle,
    completions: Vec<Completion>,
    stats: SystemStats,
    banks: fgnvm_bank::BankStats,
    samples: Vec<Sample>,
    commands: Vec<Vec<CommandRecord>>,
    protocol: Vec<String>,
    /// Rendered metrics document (registry + spans + heatmap).
    obs_metrics: String,
    /// Rendered Chrome trace-event document.
    obs_trace: String,
    /// Rendered stall-attribution document (per-class bucket totals).
    obs_attribution: String,
}

/// Feeds `reqs` (retrying on backpressure), drains, and captures every
/// observable output — with fast-forwarding on or off.
fn drive(config: &SystemConfig, reqs: &[Gen], fast_forward: bool) -> Snapshot {
    let mut mem = MemorySystem::new(*config).unwrap();
    mem.set_fast_forward(fast_forward);
    mem.enable_command_log(1 << 20);
    mem.enable_sampling(64);
    mem.enable_observer();
    let mut completions = Vec::new();
    for g in reqs {
        let op = if g.is_write { Op::Write } else { Op::Read };
        let mut guard = 0;
        loop {
            if mem.enqueue(op, g.addr()).is_some() {
                break;
            }
            mem.tick_into(&mut completions);
            guard += 1;
            assert!(guard < 100_000, "backpressure never relieved");
        }
    }
    completions.extend(mem.run_until_idle(10_000_000));
    let checker = ProtocolChecker::new(mem.config()).unwrap();
    let mut commands = Vec::new();
    let mut protocol = Vec::new();
    for channel in 0..mem.config().geometry.channels() {
        let log = mem.command_log(channel);
        commands.push(log.records().copied().collect());
        protocol.push(format!("{:?}", checker.check(log)));
    }
    let obs = mem.take_observer().expect("observer enabled");
    let mut reg = fgnvm_obs::Registry::new();
    mem.export_metrics(&mut reg);
    obs.export_metrics(&mut reg);
    Snapshot {
        now: mem.now(),
        completions,
        stats: mem.stats().clone(),
        banks: mem.bank_stats(),
        samples: mem.samples().to_vec(),
        commands,
        protocol,
        obs_metrics: obs.metrics_json(&reg),
        obs_trace: obs.trace_json(),
        obs_attribution: obs.attribution.to_json(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random streams through every preset: fast-forwarded and stepped runs
    /// must agree on every observable, bit for bit.
    #[test]
    fn fast_forward_is_bit_identical_on_every_preset(
        reqs in prop::collection::vec(gen_strategy(), 1..80),
    ) {
        for (name, config) in all_presets() {
            let fast = drive(&config, &reqs, true);
            let stepped = drive(&config, &reqs, false);
            prop_assert_eq!(fast.now, stepped.now, "{}: final cycle diverged", name);
            prop_assert_eq!(
                &fast.completions, &stepped.completions,
                "{}: completions diverged", name
            );
            prop_assert_eq!(&fast.stats, &stepped.stats, "{}: stats diverged", name);
            prop_assert_eq!(&fast.banks, &stepped.banks, "{}: bank stats diverged", name);
            prop_assert_eq!(&fast.samples, &stepped.samples, "{}: samples diverged", name);
            prop_assert_eq!(&fast.commands, &stepped.commands, "{}: command log diverged", name);
            prop_assert_eq!(&fast.protocol, &stepped.protocol, "{}: checker verdict diverged", name);
            prop_assert_eq!(
                &fast.obs_metrics,
                &stepped.obs_metrics,
                "{}: observability metrics diverged",
                name
            );
            prop_assert_eq!(
                &fast.obs_trace,
                &stepped.obs_trace,
                "{}: observability trace diverged",
                name
            );
            prop_assert_eq!(
                &fast.obs_attribution,
                &stepped.obs_attribution,
                "{}: stall attribution diverged",
                name
            );
        }
    }
}

/// Deterministic mixed read/write stream (the proptest generator's shape,
/// without the proptest dependency on run order).
fn lcg_stream(seed: u64, ops: usize) -> Vec<Gen> {
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..ops)
        .map(|_| Gen {
            is_write: next() % 3 == 0,
            region: next() % 8,
            row: next() % 16,
            line: next() % 16,
        })
        .collect()
}

/// Every checked-in parameter file — parsed exactly as `fgnvm_trace
/// replay --params` parses it — must be fast-forward clean, including the
/// fault-injected one.
#[test]
fn every_checked_in_config_is_fast_forward_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("configs/ directory present")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cfg"))
        .collect();
    paths.sort();
    assert!(
        paths.iter().any(|p| p.ends_with("fgnvm_8x2_faulty.cfg")),
        "the fault-injected config must be part of the sweep"
    );
    let reqs = lcg_stream(0xF09D_95A4, 160);
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap();
        let config = fgnvm_types::parse_system_config(&text)
            .unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        let fast = drive(&config, &reqs, true);
        let stepped = drive(&config, &reqs, false);
        // `Snapshot` equality covers the checker verdicts too: whatever the
        // checker concludes, it must conclude it identically in both modes.
        assert_eq!(
            fast,
            stepped,
            "{} diverged under fast-forward",
            path.display()
        );
        assert!(
            fast.commands.iter().any(|c| !c.is_empty()),
            "{}: nothing issued — the sweep exercised nothing",
            path.display()
        );
        assert!(
            fast.obs_trace.contains("\"cat\":\"cmd\""),
            "{}: observer recorded no command slices",
            path.display()
        );
    }
    assert!(
        paths.len() >= 6,
        "expected the full config set, saw {paths:?}"
    );
}

// ---------------------------------------------------------------------------
// Hint tightness: `next_ready_hint` must never point past an instant at
// which some access could issue. The fast-forward core turns the hint into
// skipped cycles, so an overshoot here silently drops real work.
// ---------------------------------------------------------------------------

fn access(geom: &Geometry, op: Op, row: u32, line: u32) -> Access {
    Access {
        op,
        row,
        line,
        coord: TileCoord {
            sag: geom.sag_of_row(row),
            cd_first: line % geom.cds(),
            cd_count: 1,
        },
    }
}

/// Brute-force check over `window` instants: for every `now`, no candidate
/// access may be issuable strictly before `next_ready_hint(now)`.
fn assert_hint_is_lower_bound(bank: &dyn Bank, candidates: &[Access], window: u64) {
    for now_raw in 0..window {
        let now = Cycle::new(now_raw);
        let hint = bank.next_ready_hint(now);
        assert!(hint >= now, "hint {hint} regressed behind now {now}");
        for t_raw in now_raw..hint.raw().min(window) {
            let t = Cycle::new(t_raw);
            for a in candidates {
                assert!(
                    bank.plan(a, t).is_err(),
                    "hint({now}) = {hint} overshot: {a:?} already issuable at {t}"
                );
            }
        }
    }
}

/// First instant `>= now` at which some candidate plans successfully.
fn first_issuable(bank: &dyn Bank, candidates: &[Access], now: Cycle, limit: u64) -> Cycle {
    for t_raw in now.raw()..limit {
        let t = Cycle::new(t_raw);
        if candidates.iter().any(|a| bank.plan(a, t).is_ok()) {
            return t;
        }
    }
    panic!("no candidate became issuable before cycle {limit}");
}

#[test]
fn baseline_hint_is_a_tight_lower_bound() {
    let geom = Geometry::builder().sags(1).cds(1).build().unwrap();
    let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
    let mut bank = BaselineBank::new(&geom, timing);
    let candidates = [
        access(&geom, Op::Read, 3, 0),  // same row as the commits below
        access(&geom, Op::Write, 3, 2), // same row, write path
        access(&geom, Op::Read, 9, 1),  // row switch
    ];
    // Exercise the FSM: a read opens row 3, then a write dirties it.
    for a in [
        access(&geom, Op::Read, 3, 0),
        access(&geom, Op::Write, 3, 1),
    ] {
        let at = first_issuable(&bank, &[a], bank.next_ready_hint(Cycle::ZERO), 5_000);
        let plan = bank.plan(&a, at).unwrap();
        bank.commit(&a, &plan, at, plan.earliest_data);
    }
    assert_hint_is_lower_bound(&bank, &candidates, 1_500);
    // The baseline hint mirrors `plan`'s gates exactly, so with candidates
    // covering both the column path and the row-switch path it is not just
    // a lower bound but *the* next issuable instant.
    for now_raw in [0u64, 1, 50, 500, 1_000] {
        let now = Cycle::new(now_raw);
        assert_eq!(
            bank.next_ready_hint(now),
            first_issuable(&bank, &candidates, now, 5_000),
            "baseline hint not tight at {now}"
        );
    }
}

#[test]
fn fgnvm_hint_is_a_sound_lower_bound() {
    let geom = Geometry::builder().sags(4).cds(4).build().unwrap();
    let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
    // Shared column path: `next_col` gates every access, so the hint must
    // both advance past it and never overshoot it.
    let mut bank = FgnvmBank::new(&geom, timing, Modes::all(), true).unwrap();
    let rows_per_sag = geom.rows_per_bank() / geom.sags();
    let candidates: Vec<Access> = (0..4u32)
        .flat_map(|sag| {
            let row = sag * rows_per_sag;
            [
                access(&geom, Op::Read, row, sag),
                access(&geom, Op::Write, row + 1, (sag + 1) % geom.cds()),
            ]
        })
        .collect();
    // Exercise: a write (long program, locks its SAG + CD) and a read in a
    // different tile, each committed at its earliest legal instant.
    for a in [
        access(&geom, Op::Write, 0, 0),
        access(&geom, Op::Read, rows_per_sag, 1),
    ] {
        let at = first_issuable(&bank, &[a], Cycle::ZERO, 5_000);
        let plan = bank.plan(&a, at).unwrap();
        bank.commit(&a, &plan, at, plan.earliest_data);
    }
    // The hint makes progress (the skip loop would otherwise degenerate to
    // single-stepping) ...
    assert!(bank.next_ready_hint(Cycle::ZERO) > Cycle::ZERO);
    // ... but never past a legal issue instant.
    assert_hint_is_lower_bound(&bank, &candidates, 1_500);
}

#[test]
fn fgnvm_hint_is_sound_with_serializing_modes() {
    // With multi-activation off the bank serializes everything through
    // `serial_until` — the hint's unconditional gate. A write makes that
    // window long; the hint must track it exactly, never past it.
    let geom = Geometry::builder().sags(4).cds(4).build().unwrap();
    let timing = TimingConfig::paper_pcm().to_cycles().unwrap();
    let mut bank = FgnvmBank::new(&geom, timing, Modes::none(), false).unwrap();
    let rows_per_sag = geom.rows_per_bank() / geom.sags();
    let candidates: Vec<Access> = (0..4u32)
        .map(|sag| access(&geom, Op::Read, sag * rows_per_sag, sag))
        .collect();
    let w = access(&geom, Op::Write, 0, 0);
    let plan = bank.plan(&w, Cycle::ZERO).unwrap();
    bank.commit(&w, &plan, Cycle::ZERO, plan.earliest_data);
    assert!(bank.next_ready_hint(Cycle::ZERO) > Cycle::ZERO);
    assert_hint_is_lower_bound(&bank, &candidates, 1_500);
}

// ---------------------------------------------------------------------------
// Calendar differential: the memoized `next_event_at` (per-channel NextAt
// cache + issue-bound memo) must return *exactly* what a fresh linear scan
// of every event heap and queued-request gate returns, at every instant of
// a real run. An early memo silently replays events; a late one drops
// issue opportunities. Both scans run on live systems mid-drain, so every
// memo invalidation edge (enqueue, retire, issue, skip) is crossed.
// ---------------------------------------------------------------------------

/// Drives `reqs` through a fast-forwarded run, asserting at every loop
/// step — after enqueues, after skips, after due ticks — that the
/// memoized scan and the reference linear scan agree exactly.
fn drive_checking_calendar(name: &str, config: &SystemConfig, reqs: &[Gen]) {
    let mut mem = MemorySystem::new(*config).unwrap();
    mem.set_fast_forward(true);
    let mut completions = Vec::new();
    let check = |mem: &MemorySystem, whence: &str| {
        // Linear first: it must not observe anything the memoized call
        // publishes.
        let linear = mem.next_event_at_linear();
        let memoized = mem.next_event_at();
        assert_eq!(
            memoized,
            linear,
            "{name}: calendar scan diverged from linear reference {whence} at cycle {}",
            mem.now().raw()
        );
    };
    for g in reqs {
        let op = if g.is_write { Op::Write } else { Op::Read };
        let mut guard = 0;
        loop {
            if mem.enqueue(op, g.addr()).is_some() {
                break;
            }
            mem.tick_into(&mut completions);
            guard += 1;
            assert!(guard < 100_000, "backpressure never relieved");
        }
        check(&mem, "after enqueue");
    }
    let mut guard = 0;
    while !mem.is_idle() {
        // One event hop at a time: `tick_to` skips the dead range (if any)
        // and steps the event instant, crossing every memo edge.
        let target = match mem.next_event_at() {
            Some(at) if at > mem.now() => at + fgnvm_types::time::CycleCount::new(1),
            _ => mem.now() + fgnvm_types::time::CycleCount::new(1),
        };
        mem.tick_to(target, &mut completions);
        check(&mem, "after hop");
        guard += 1;
        assert!(guard < 1_000_000, "{name}: drain failed to converge");
    }
    assert_eq!(
        mem.next_event_at(),
        None,
        "{name}: idle system still reports an event"
    );
}

#[test]
fn calendar_scan_matches_linear_reference_on_every_preset() {
    let reqs = lcg_stream(0xCA1E_17DA, 120);
    for (name, config) in all_presets() {
        drive_checking_calendar(name, &config, &reqs);
    }
}

#[test]
fn calendar_scan_matches_linear_reference_on_every_checked_in_config() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("configs/ directory present")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cfg"))
        .collect();
    paths.sort();
    let reqs = lcg_stream(0x5CA2_CA1E, 120);
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap();
        let config = fgnvm_types::parse_system_config(&text)
            .unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        drive_checking_calendar(&path.display().to_string(), &config, &reqs);
    }
    assert!(paths.len() >= 6, "expected the full config set");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random streams: the calendar memo must track the linear reference
    /// through arbitrary interleavings of enqueue, skip, and tick.
    #[test]
    fn calendar_scan_matches_linear_reference_on_random_streams(
        reqs in prop::collection::vec(gen_strategy(), 1..60),
    ) {
        for (name, config) in [
            ("fgnvm 8x2", SystemConfig::fgnvm(8, 2).unwrap()),
            ("baseline", SystemConfig::baseline()),
            ("pausing 8x8", SystemConfig::fgnvm_with_pausing(8, 8).unwrap()),
        ] {
            drive_checking_calendar(name, &config, &reqs);
        }
    }
}
