//! Property-based tests for the memory system.
//!
//! Random request streams are pushed through every system preset; we check
//! liveness (everything drains), completion accounting (each accepted
//! request completes exactly once), latency sanity, and the headline energy
//! invariant of the paper — partial activation never senses *more* than the
//! baseline for the same request stream.

use std::collections::HashSet;

use proptest::prelude::*;

use fgnvm_mem::MemorySystem;
use fgnvm_types::config::{SchedulerKind, SystemConfig};
use fgnvm_types::request::Op;
use fgnvm_types::PhysAddr;

/// A compact random request: op, bank-ish region, row-ish index, line.
#[derive(Debug, Clone, Copy)]
struct Gen {
    is_write: bool,
    region: u64,
    row: u64,
    line: u64,
}

impl Gen {
    /// Maps the abstract coordinates onto a physical address that stays
    /// within a handful of rows/banks so conflicts actually happen.
    fn addr(&self) -> PhysAddr {
        // Default mapping: offset(6) | line(4) | bank(3) | row(15).
        PhysAddr::new((self.row << 13) | (self.region << 10) | (self.line << 6))
    }
}

fn gen_strategy() -> impl Strategy<Value = Gen> {
    (any::<bool>(), 0u64..8, 0u64..16, 0u64..16).prop_map(|(is_write, region, row, line)| Gen {
        is_write,
        region,
        row,
        line,
    })
}

fn all_presets() -> Vec<SystemConfig> {
    let mut presets = vec![
        SystemConfig::baseline(),
        SystemConfig::fgnvm(4, 4).unwrap(),
        SystemConfig::fgnvm(8, 2).unwrap(),
        SystemConfig::fgnvm(8, 8).unwrap(),
        SystemConfig::fgnvm(8, 32).unwrap(),
        SystemConfig::fgnvm_multi_issue(8, 2, 2).unwrap(),
        SystemConfig::many_banks(128).unwrap(),
    ];
    let mut fcfs = SystemConfig::fgnvm(4, 4).unwrap();
    fcfs.scheduler = SchedulerKind::Fcfs;
    presets.push(fcfs);
    let mut frfcfs = SystemConfig::fgnvm(4, 4).unwrap();
    frfcfs.scheduler = SchedulerKind::Frfcfs;
    presets.push(frfcfs);
    let mut cap = SystemConfig::fgnvm(4, 4).unwrap();
    cap.scheduler = SchedulerKind::FrfcfsCap;
    presets.push(cap);
    presets.push(SystemConfig::dram());
    presets.push(SystemConfig::fgnvm_with_pausing(8, 8).unwrap());
    presets
}

/// Feeds requests (retrying on backpressure) and drains; returns accepted
/// request count and completions.
fn run(mem: &mut MemorySystem, reqs: &[Gen]) -> (u64, Vec<fgnvm_types::request::Completion>) {
    let mut accepted = 0u64;
    let mut completions = Vec::new();
    for g in reqs {
        let op = if g.is_write { Op::Write } else { Op::Read };
        let mut guard = 0;
        loop {
            if mem.enqueue(op, g.addr()).is_some() {
                accepted += 1;
                break;
            }
            mem.tick_into(&mut completions);
            guard += 1;
            assert!(guard < 100_000, "backpressure never relieved");
        }
    }
    completions.extend(mem.run_until_idle(10_000_000));
    (accepted, completions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every accepted request completes exactly once, on every preset.
    #[test]
    fn conservation_of_requests(reqs in prop::collection::vec(gen_strategy(), 1..120)) {
        for config in all_presets() {
            let mut mem = MemorySystem::new(config).unwrap();
            let (accepted, completions) = run(&mut mem, &reqs);
            prop_assert_eq!(completions.len() as u64, accepted);
            let ids: HashSet<u64> = completions.iter().map(|c| c.id.raw()).collect();
            prop_assert_eq!(ids.len() as u64, accepted, "duplicate completion ids");
        }
    }

    /// Read latency is at least the unavoidable column latency (unless the
    /// read was forwarded from the write queue) and completions never
    /// precede arrivals.
    #[test]
    fn latency_sanity(reqs in prop::collection::vec(gen_strategy(), 1..120)) {
        let mut mem = MemorySystem::new(SystemConfig::fgnvm(4, 4).unwrap()).unwrap();
        let (_, completions) = run(&mut mem, &reqs);
        let forwarded = mem.stats().forwarded_reads;
        let mut fast_reads = 0;
        for c in &completions {
            prop_assert!(c.finished >= c.arrival);
            if c.op.is_read() && c.latency().raw() < 42 {
                // tCAS(38) + tBURST(4): only forwarding can beat this.
                fast_reads += 1;
            }
        }
        prop_assert!(fast_reads <= forwarded);
    }

    /// Partial activation never senses more bits than the baseline for the
    /// same request stream (the foundation of Fig. 5).
    #[test]
    fn fgnvm_senses_no_more_than_baseline(
        reqs in prop::collection::vec(gen_strategy(), 1..120),
        cds in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let mut base = MemorySystem::new(SystemConfig::baseline()).unwrap();
        let mut fg = MemorySystem::new(SystemConfig::fgnvm(8, cds).unwrap()).unwrap();
        run(&mut base, &reqs);
        run(&mut fg, &reqs);
        prop_assert!(
            fg.bank_stats().sensed_bits <= base.bank_stats().sensed_bits,
            "fgnvm sensed {} > baseline {}",
            fg.bank_stats().sensed_bits,
            base.bank_stats().sensed_bits
        );
        // Write traffic is conserved: every accepted write is either driven
        // into the array or merged into a queued write. (Exact array-write
        // counts can differ between configs because drain timing changes
        // which duplicate writes coalesce.)
        prop_assert_eq!(
            fg.bank_stats().writes + fg.stats().merged_writes,
            base.bank_stats().writes + base.stats().merged_writes
        );
    }

    /// The Multi-Issue variant is never slower than the plain FgNVM design
    /// for the same stream.
    #[test]
    fn multi_issue_never_slower(reqs in prop::collection::vec(gen_strategy(), 1..80)) {
        let mut plain = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        let mut multi =
            MemorySystem::new(SystemConfig::fgnvm_multi_issue(8, 2, 4).unwrap()).unwrap();
        run(&mut plain, &reqs);
        run(&mut multi, &reqs);
        prop_assert!(multi.now() <= plain.now());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Start-Gap wear leveling is functionally invisible: peek/poke data
    /// survives arbitrary interleaved timed traffic and gap rotations.
    #[test]
    fn start_gap_preserves_functional_data(
        reqs in prop::collection::vec(gen_strategy(), 1..80),
        interval in 1u32..8,
    ) {
        let mut mem = MemorySystem::new(SystemConfig::fgnvm(4, 4).unwrap()).unwrap();
        mem.enable_start_gap(interval).unwrap();
        // Stamp a recognizable value at a fixed logical address.
        mem.poke(PhysAddr::new(0x7c0), &[0x5a; 64]);
        run(&mut mem, &reqs);
        let mut buf = [0u8; 64];
        mem.peek(PhysAddr::new(0x7c0), &mut buf);
        prop_assert_eq!(buf, [0x5a; 64]);
    }

    /// Write pausing changes timing but never loses requests.
    #[test]
    fn pausing_conserves_requests(reqs in prop::collection::vec(gen_strategy(), 1..100)) {
        let mut plain = MemorySystem::new(SystemConfig::fgnvm(8, 2).unwrap()).unwrap();
        let mut paused = MemorySystem::new(SystemConfig::fgnvm_with_pausing(8, 2).unwrap()).unwrap();
        let (accepted_a, completions_a) = run(&mut plain, &reqs);
        let (accepted_b, completions_b) = run(&mut paused, &reqs);
        prop_assert_eq!(accepted_a, accepted_b);
        prop_assert_eq!(completions_a.len(), completions_b.len());
        // Timing moves, so hit/eviction patterns may differ slightly, but
        // the sensing work stays in the same ballpark.
        let (a, b) = (plain.bank_stats().sensed_bits, paused.bank_stats().sensed_bits);
        if a > 0 {
            let ratio = b as f64 / a as f64;
            prop_assert!((0.5..=2.0).contains(&ratio), "sensed bits diverged: {a} vs {b}");
        }
    }
}
