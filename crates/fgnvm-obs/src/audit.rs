//! Scheduler decision-audit layer: per-issue decision records and the
//! measured parallelism-opportunity ceiling.
//!
//! Every time the controller commits a command it can (when auditing is
//! enabled) probe the *rest* of its request queues against the live bank
//! state and report the full decision context as one [`IssueAudit`]
//! record: how many candidates were on the table, which gate blocked each
//! rejected one, how many were ready, and — the headline number — how
//! many additional *legal rook-compatible* commands could have been
//! co-issued alongside the chosen one that same cycle. The paper's 2D
//! bank-subdivision claim is exactly that this number is large under
//! FRFCFS; the [`AuditLog`] aggregates it into a per-decision issuable
//! -parallelism histogram, per-gate block-attribution counters, a missed
//! -pair SAG×CD heatmap overlay, and a measured opportunity ceiling that
//! sits beside the Amdahl-style [`what_if`](crate::what_if) bounds.
//!
//! Determinism contract: records are keyed to actual command issues.
//! Issues happen at identical cycles with identical queue and bank state
//! under cycle stepping and event-driven fast-forward (the elision path
//! skips only provably-dead cycles), so the audit stream is bit-identical
//! across stepping modes by construction — and trivially, the measured
//! opportunity is zero whenever the queues hold nothing but the chosen
//! command.

use crate::json;

/// Number of distinct blocking gates ([`BlockGate::ALL`]).
pub const GATES: usize = 5;

/// Histogram bins for per-decision co-issuable counts; the last bin
/// absorbs everything ≥ `HIST_BINS - 1`.
pub const HIST_BINS: usize = 9;

/// The gate that blocked a rejected issue candidate. Mirrors the bank
/// model's `BlockReason` without depending on it: the controller maps
/// each rejection into this taxonomy at probe time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockGate {
    /// The whole bank (or a conflicting tile span) is busy.
    BankBusy,
    /// The target subarray group is occupied.
    SagBusy,
    /// A needed column division is occupied.
    CdBusy,
    /// The shared column path is serialized (Multi-Issue width exhausted).
    ColumnPath,
    /// The target row is write-locked.
    RowLocked,
}

impl BlockGate {
    /// Every gate, in counter-index order.
    pub const ALL: [BlockGate; GATES] = [
        BlockGate::BankBusy,
        BlockGate::SagBusy,
        BlockGate::CdBusy,
        BlockGate::ColumnPath,
        BlockGate::RowLocked,
    ];

    /// Stable display label (JSON keys, ASCII rows, trace instants).
    pub fn label(self) -> &'static str {
        match self {
            BlockGate::BankBusy => "bank-busy",
            BlockGate::SagBusy => "sag-busy",
            BlockGate::CdBusy => "cd-busy",
            BlockGate::ColumnPath => "column-path",
            BlockGate::RowLocked => "row-locked",
        }
    }
}

/// One scheduler decision: the command that issued, the candidate field
/// it was chosen from, and the co-issue opportunity left behind.
#[derive(Debug, Clone, Copy)]
pub struct IssueAudit<'a> {
    /// Channel the decision was made on.
    pub channel: u32,
    /// Bank the chosen command targets.
    pub bank: u32,
    /// Cycle the command issued.
    pub at: u64,
    /// True when the chosen command is a read.
    pub is_read: bool,
    /// True when the channel was in write-drain mode (the "why" of a
    /// write pick under FRFCFS-with-drain).
    pub draining: bool,
    /// Chosen command's subarray group.
    pub sag: u32,
    /// Chosen command's first column division.
    pub cd: u32,
    /// Queue entries considered at decision time, across both queues,
    /// including the chosen one.
    pub considered: u32,
    /// Rejected candidates per blocking gate, indexed by [`BlockGate`].
    pub blocked: [u32; GATES],
    /// Non-chosen candidates whose bank plan was clear this cycle.
    pub ready_peers: u32,
    /// Ready peers that are also rook-compatible with the chosen command
    /// (and each other): the measured co-issue opportunity this cycle.
    pub co_issuable: u32,
    /// `(sag, cd)` of each counted co-issuable peer — the missed pairs
    /// the SAG×CD overlay accumulates. Length equals `co_issuable`.
    pub missed: &'a [(u32, u32)],
}

/// Aggregated audit state: everything the surfacing layers (viz, JSON,
/// Prometheus, `what_if` side-by-side) read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditLog {
    sags: u32,
    cds: u32,
    /// Decision records folded (== commands issued while auditing).
    pub issues: u64,
    /// Issued reads.
    pub issues_read: u64,
    /// Issued writes.
    pub issues_write: u64,
    /// Sum of `considered` over all records.
    pub considered_total: u64,
    /// Sum of `ready_peers` over all records.
    pub ready_total: u64,
    /// Sum of `co_issuable` over all records: the total measured co-issue
    /// opportunity FRFCFS left on the table.
    pub opportunity_total: u64,
    /// Rejected candidates per gate, summed over all records.
    pub blocked: [u64; GATES],
    /// Per-decision issuable-parallelism histogram: bin `k` counts
    /// decisions with `min(co_issuable, HIST_BINS-1) == k`.
    pub parallelism_hist: [u64; HIST_BINS],
    /// Decisions made with an otherwise-empty queue (`considered == 1`).
    pub solo_decisions: u64,
    /// Conservation violations: records claiming co-issue opportunity
    /// with no other candidate on the table. Must stay zero.
    pub empty_queue_opportunity: u64,
    /// SAG×CD grid (row-major, `sags × cds`) of missed co-issue pairs.
    missed: Vec<u64>,
}

impl AuditLog {
    /// An empty log for banks subdivided into `sags` × `cds` tiles.
    pub fn new(sags: u32, cds: u32) -> Self {
        let sags = sags.max(1);
        let cds = cds.max(1);
        AuditLog {
            sags,
            cds,
            issues: 0,
            issues_read: 0,
            issues_write: 0,
            considered_total: 0,
            ready_total: 0,
            opportunity_total: 0,
            blocked: [0; GATES],
            parallelism_hist: [0; HIST_BINS],
            solo_decisions: 0,
            empty_queue_opportunity: 0,
            missed: vec![0; sags as usize * cds as usize],
        }
    }

    /// The `(sags, cds)` grid dimensions.
    pub fn dims(&self) -> (u32, u32) {
        (self.sags, self.cds)
    }

    /// Missed-pair count for one tile.
    pub fn missed_cell(&self, sag: u32, cd: u32) -> u64 {
        self.missed[(sag % self.sags) as usize * self.cds as usize + (cd % self.cds) as usize]
    }

    /// The full missed-pair grid, row-major by SAG.
    pub fn missed_cells(&self) -> &[u64] {
        &self.missed
    }

    /// Folds one decision record.
    pub fn record(&mut self, rec: &IssueAudit<'_>) {
        self.issues += 1;
        if rec.is_read {
            self.issues_read += 1;
        } else {
            self.issues_write += 1;
        }
        self.considered_total += u64::from(rec.considered);
        self.ready_total += u64::from(rec.ready_peers);
        self.opportunity_total += u64::from(rec.co_issuable);
        for (acc, b) in self.blocked.iter_mut().zip(rec.blocked.iter()) {
            *acc += u64::from(*b);
        }
        let bin = (rec.co_issuable as usize).min(HIST_BINS - 1);
        self.parallelism_hist[bin] += 1;
        if rec.considered <= 1 {
            self.solo_decisions += 1;
            if rec.co_issuable > 0 {
                self.empty_queue_opportunity += 1;
            }
        }
        for (sag, cd) in rec.missed {
            let idx = (sag % self.sags) as usize * self.cds as usize + (cd % self.cds) as usize;
            self.missed[idx] += 1;
        }
    }

    /// The gate with the most rejected candidates in one record, if any
    /// candidate was rejected at all (trace instants name it).
    pub fn dominant_gate(rec: &IssueAudit<'_>) -> Option<BlockGate> {
        let (idx, max) = rec
            .blocked
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (**c, GATES - i))?;
        if *max == 0 {
            None
        } else {
            Some(BlockGate::ALL[idx])
        }
    }

    /// Measured opportunity ceiling on issue throughput: how many times
    /// more commands could have issued had every measured co-issue slot
    /// been taken. 1.0 when nothing issued (or nothing was missed).
    pub fn opportunity_ceiling(&self) -> f64 {
        if self.issues == 0 {
            1.0
        } else {
            (self.issues + self.opportunity_total) as f64 / self.issues as f64
        }
    }

    /// Realized issue rate in commands per cycle over `cycles` (0 → 0.0).
    pub fn realized_issue_rate(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.issues as f64 / cycles as f64
        }
    }

    /// Serializes the full aggregate as one JSON object.
    pub fn to_json(&self) -> String {
        let blocked: Vec<String> = BlockGate::ALL
            .iter()
            .map(|g| format!("{}:{}", json::quote(g.label()), self.blocked[*g as usize]))
            .collect();
        let hist: Vec<String> = self.parallelism_hist.iter().map(u64::to_string).collect();
        let missed: Vec<String> = (0..self.sags)
            .map(|s| {
                let row: Vec<String> = (0..self.cds)
                    .map(|c| self.missed_cell(s, c).to_string())
                    .collect();
                format!("[{}]", row.join(","))
            })
            .collect();
        format!(
            "{{\"sags\":{},\"cds\":{},\"issues\":{},\"issues_read\":{},\
             \"issues_write\":{},\"considered\":{},\"ready\":{},\
             \"opportunity\":{},\"opportunity_ceiling\":{},\
             \"solo_decisions\":{},\"blocked\":{{{}}},\
             \"parallelism_hist\":[{}],\"missed\":[{}]}}",
            self.sags,
            self.cds,
            self.issues,
            self.issues_read,
            self.issues_write,
            self.considered_total,
            self.ready_total,
            self.opportunity_total,
            json::number(self.opportunity_ceiling()),
            self.solo_decisions,
            blocked.join(","),
            hist.join(","),
            missed.join(",")
        )
    }

    /// Serialize the full log (grid dimensions included, so a restore
    /// needs no caller input) into a checkpoint.
    pub fn save_state(&self, w: &mut fgnvm_types::SnapshotWriter) {
        w.tag("audit");
        w.u32(self.sags);
        w.u32(self.cds);
        w.u64(self.issues);
        w.u64(self.issues_read);
        w.u64(self.issues_write);
        w.u64(self.considered_total);
        w.u64(self.ready_total);
        w.u64(self.opportunity_total);
        for c in &self.blocked {
            w.u64(*c);
        }
        for c in &self.parallelism_hist {
            w.u64(*c);
        }
        w.u64(self.solo_decisions);
        w.u64(self.empty_queue_opportunity);
        for c in &self.missed {
            w.u64(*c);
        }
    }

    /// Restore a log written by [`AuditLog::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](fgnvm_types::SnapshotError) on a
    /// truncated or mistagged stream.
    pub fn load_state(
        r: &mut fgnvm_types::SnapshotReader<'_>,
    ) -> Result<AuditLog, fgnvm_types::SnapshotError> {
        r.tag("audit")?;
        let sags = r.u32()?;
        let cds = r.u32()?;
        let mut log = AuditLog::new(sags, cds);
        log.issues = r.u64()?;
        log.issues_read = r.u64()?;
        log.issues_write = r.u64()?;
        log.considered_total = r.u64()?;
        log.ready_total = r.u64()?;
        log.opportunity_total = r.u64()?;
        for c in &mut log.blocked {
            *c = r.u64()?;
        }
        for c in &mut log.parallelism_hist {
            *c = r.u64()?;
        }
        log.solo_decisions = r.u64()?;
        log.empty_queue_opportunity = r.u64()?;
        for c in &mut log.missed {
            *c = r.u64()?;
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec<'a>(co: u32, considered: u32, missed: &'a [(u32, u32)]) -> IssueAudit<'a> {
        IssueAudit {
            channel: 0,
            bank: 0,
            at: 100,
            is_read: true,
            draining: false,
            sag: 0,
            cd: 0,
            considered,
            blocked: [1, 0, 2, 0, 0],
            ready_peers: co,
            co_issuable: co,
            missed,
        }
    }

    #[test]
    fn records_fold_into_every_aggregate() {
        let mut log = AuditLog::new(4, 2);
        log.record(&rec(2, 6, &[(1, 0), (2, 1)]));
        log.record(&rec(0, 4, &[]));
        assert_eq!(log.issues, 2);
        assert_eq!(log.issues_read, 2);
        assert_eq!(log.opportunity_total, 2);
        assert_eq!(log.considered_total, 10);
        assert_eq!(log.blocked, [2, 0, 4, 0, 0]);
        assert_eq!(log.parallelism_hist[2], 1);
        assert_eq!(log.parallelism_hist[0], 1);
        assert_eq!(log.missed_cell(1, 0), 1);
        assert_eq!(log.missed_cell(2, 1), 1);
        assert_eq!(log.missed_cells().iter().sum::<u64>(), 2);
        assert!((log.opportunity_ceiling() - 2.0).abs() < 1e-12);
        assert!((log.realized_issue_rate(200) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn solo_decision_with_opportunity_is_a_violation() {
        let mut log = AuditLog::new(2, 2);
        log.record(&rec(0, 1, &[]));
        assert_eq!(log.solo_decisions, 1);
        assert_eq!(log.empty_queue_opportunity, 0);
        log.record(&rec(1, 1, &[(0, 0)]));
        assert_eq!(log.empty_queue_opportunity, 1);
    }

    #[test]
    fn histogram_clamps_to_the_last_bin() {
        let mut log = AuditLog::new(2, 2);
        let missed: Vec<(u32, u32)> = (0..20).map(|i| (i % 2, i % 2)).collect();
        log.record(&rec(20, 30, &missed));
        assert_eq!(log.parallelism_hist[HIST_BINS - 1], 1);
        assert_eq!(log.opportunity_total, 20);
    }

    #[test]
    fn dominant_gate_prefers_the_biggest_count() {
        let mut r = rec(0, 4, &[]);
        assert_eq!(AuditLog::dominant_gate(&r), Some(BlockGate::CdBusy));
        r.blocked = [0; GATES];
        assert_eq!(AuditLog::dominant_gate(&r), None);
        r.blocked = [3, 3, 0, 0, 0];
        assert_eq!(AuditLog::dominant_gate(&r), Some(BlockGate::BankBusy));
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let mut log = AuditLog::new(8, 2);
        log.record(&rec(3, 9, &[(1, 0), (3, 1), (5, 0)]));
        log.record(&rec(0, 2, &[]));
        let mut w = fgnvm_types::SnapshotWriter::new();
        log.save_state(&mut w);
        let bytes = w.finish();
        let mut r = fgnvm_types::SnapshotReader::new(&bytes).expect("readable");
        let restored = AuditLog::load_state(&mut r).expect("decodes");
        assert_eq!(restored, log);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut log = AuditLog::new(2, 2);
        log.record(&rec(1, 3, &[(1, 1)]));
        let doc = log.to_json();
        assert!(doc.starts_with("{\"sags\":2,\"cds\":2,\"issues\":1,"));
        assert!(doc.contains("\"blocked\":{\"bank-busy\":1,"));
        assert!(doc.contains("\"parallelism_hist\":[0,1,0,0,0,0,0,0,0]"));
        assert!(doc.contains("\"missed\":[[0,0],[0,1]]"));
        assert!(doc.contains("\"opportunity_ceiling\":2"));
    }
}
